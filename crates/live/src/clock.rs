//! The broker's bit-clock: bus time, and how it maps to wall time.
//!
//! Every protocol timestamp in the live runtime — slot ready instants,
//! LSTs, promotion times, wire completions, trace records — is *bus
//! time*: integer nanoseconds since the broker started, exactly like
//! the simulator's [`rtec_sim::Time`]. The pace mode only decides how
//! fast bus time is allowed to advance relative to the host's clock:
//!
//! * [`Pace::Virtual`] — bus time jumps instantly to the next event.
//!   Runs are as fast as the host allows and fully deterministic (the
//!   determinism tests and benchmarks use this).
//! * [`Pace::Wall`] — bus time tracks wall time divided by `speedup`
//!   (1 = real time). The broker sleeps between events; event
//!   *timestamps* are still the exact bus-time instants, so traces are
//!   identical to a virtual-pace run of the same cluster.

use rtec_can::bits::BitTiming;
use rtec_can::Frame;
use rtec_sim::{Duration, Time};
use std::time::Instant;

/// How bus time advances relative to the host clock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pace {
    /// Accelerated virtual time: never sleep, jump to the next event.
    Virtual,
    /// Track wall time, sped up by the given factor (1 = real time).
    Wall {
        /// Bus nanoseconds per wall nanosecond (minimum 1).
        speedup: u32,
    },
}

/// The broker's clock: current bus time plus the pacing policy.
#[derive(Debug)]
pub struct BitClock {
    timing: BitTiming,
    pace: Pace,
    now: Time,
    epoch: Instant,
}

impl BitClock {
    /// A clock at bus time zero, started now.
    pub fn new(timing: BitTiming, pace: Pace) -> Self {
        BitClock {
            timing,
            pace,
            now: Time::ZERO,
            epoch: Instant::now(),
        }
    }

    /// Current bus time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The bit timing frames are paced with.
    pub fn timing(&self) -> BitTiming {
        self.timing
    }

    /// Time one frame occupies the wire (exact bit count incl. stuffing).
    pub fn frame_duration(&self, frame: &Frame) -> Duration {
        self.timing.frame_duration(frame)
    }

    /// Advance bus time to `target` (no-op if already past). Under wall
    /// pacing this sleeps until the corresponding wall instant; under
    /// virtual pacing it returns immediately.
    pub fn advance_to(&mut self, target: Time) {
        if target <= self.now {
            return;
        }
        if let Pace::Wall { speedup } = self.pace {
            let speedup = u64::from(speedup.max(1));
            let wall_ns = target.as_ns() / speedup;
            let deadline = self.epoch + std::time::Duration::from_nanos(wall_ns);
            let now_wall = Instant::now();
            if deadline > now_wall {
                crate::sync::thread::sleep(deadline - now_wall);
            }
        }
        self.now = target;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_pace_jumps_without_sleeping() {
        let mut c = BitClock::new(BitTiming::MBIT_1, Pace::Virtual);
        let wall = Instant::now();
        c.advance_to(Time::from_secs(3600));
        assert!(wall.elapsed() < std::time::Duration::from_millis(100));
        assert_eq!(c.now(), Time::from_secs(3600));
        // Moving backwards is a no-op.
        c.advance_to(Time::from_secs(1));
        assert_eq!(c.now(), Time::from_secs(3600));
    }

    #[test]
    fn wall_pace_sleeps_towards_target() {
        let mut c = BitClock::new(BitTiming::MBIT_1, Pace::Wall { speedup: 1000 });
        let wall = Instant::now();
        // 20 ms of bus time at 1000x → ~20 µs of wall time.
        c.advance_to(Time::from_ms(20));
        assert_eq!(c.now(), Time::from_ms(20));
        assert!(wall.elapsed() < std::time::Duration::from_secs(1));
    }

    #[test]
    fn frame_duration_delegates_to_bit_timing() {
        use rtec_can::CanId;
        let c = BitClock::new(BitTiming::MBIT_1, Pace::Virtual);
        let f = Frame::new(CanId::new(1, 2, 3), &[0; 8]);
        assert_eq!(c.frame_duration(&f), BitTiming::MBIT_1.frame_duration(&f));
    }
}
