//! Cluster assembly: static binding, calendar admission, thread
//! spawning, and run orchestration.
//!
//! [`Cluster`] is the crate's front door. Declare nodes with their
//! publications/subscriptions and a [`Behavior`] each, then call
//! [`Cluster::run_for`] (in-process loopback transport) or
//! [`Cluster::run_for_udp`] (one datagram socket per endpoint). The
//! builder performs the steps the simulator's network setup does:
//!
//! * **static binding** — subjects are assigned etags in declaration
//!   order starting at the first dynamic tag (the live runtime has no
//!   bind protocol; see `DESIGN.md` for the divergence list),
//! * **admission** — HRT publications are planned into a slot calendar
//!   via [`rtec_analysis::admission`]; an infeasible request set fails
//!   the build, never the run,
//! * **spawning** — one thread per node plus the broker on the calling
//!   thread, all sharing a [`SharedTraceSink`] so the conformance
//!   auditor can replay the merged trace.

use crate::broker::{Broker, BrokerConfig, BrokerStats, FaultPlan};
use crate::clock::Pace;
use crate::node::{Behavior, DeliveryRecord, LiveNode, NodeConfig, NodeStats, SharedConfig};
use crate::sync::{Arc, Mutex};
use crate::transport::{loopback, NodeTransport};
use crate::udp::{UdpBroker, UdpNode};
use crate::LiveError;
use rtec_analysis::admission::{CalendarPlan, SlotRequest};
use rtec_analysis::edf::PrioritySlotConfig;
use rtec_can::bits::BitTiming;
use rtec_can::id::TXNODE_MAX;
use rtec_can::NodeId;
use rtec_core::binding::ETAG_FIRST_DYNAMIC;
use rtec_core::channel::{ChannelClass, ChannelSpec};
use rtec_core::event::Subject;
use rtec_sim::{Duration, SharedTraceSink, Time, TraceEvent};
use std::collections::HashMap;

/// Cluster-wide knobs. `Default` matches the paper's bus: 1 Mbit/s,
/// 10 ms rounds, 40 µs inter-slot gap, virtual pacing, no faults.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Bit timing of the shared wire.
    pub timing: BitTiming,
    /// How bus time maps to wall time.
    pub pace: Pace,
    /// HRT calendar round length `R`.
    pub round: Duration,
    /// Inter-slot gap `ΔG_min` (paper: 40 µs).
    pub gap: Duration,
    /// Bus-time instant of round 0's start (gives nodes room to start
    /// up before the first slot).
    pub calendar_start: Time,
    /// Deadline → priority quantization for SRT channels.
    pub prio_cfg: PrioritySlotConfig,
    /// Fault injection plan for the bus.
    pub fault: FaultPlan,
    /// Per-channel SRT queue bound.
    pub srt_queue_cap: usize,
    /// Per-channel NRT queue bound (in frames).
    pub nrt_queue_cap: usize,
    /// Record structured trace events (needed for auditing).
    pub trace: bool,
    /// Bound the trace ring to this many records (`None` = unbounded).
    /// When the ring overflows, the oldest records are evicted and the
    /// eviction count surfaces as [`LiveReport::trace_dropped`].
    pub trace_capacity: Option<usize>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            timing: BitTiming::MBIT_1,
            pace: Pace::Virtual,
            round: Duration::from_ms(10),
            gap: Duration::from_us(40),
            calendar_start: Time::from_ms(1),
            prio_cfg: PrioritySlotConfig::paper_default(),
            fault: FaultPlan::default(),
            srt_queue_cap: 16,
            nrt_queue_cap: 64,
            trace: true,
            trace_capacity: None,
        }
    }
}

struct NodeDef {
    publishes: Vec<(Subject, ChannelSpec)>,
    subscribes: Vec<(Subject, ChannelSpec)>,
    behavior: Box<dyn Behavior>,
}

/// Builder for a live cluster.
pub struct Cluster {
    cfg: ClusterConfig,
    nodes: Vec<NodeDef>,
}

/// Everything a finished run yields.
pub struct LiveReport {
    /// Per-node counters, indexed by node id.
    pub stats: Vec<NodeStats>,
    /// Broker counters.
    pub broker: BrokerStats,
    /// All deliveries in bus order.
    pub log: Vec<DeliveryRecord>,
    /// The merged structured trace (empty when tracing was off).
    pub trace: Vec<TraceEvent>,
    /// Trace records evicted from a bounded ring (0 = complete trace;
    /// audits are only sound when nothing was dropped).
    pub trace_dropped: u64,
    /// The admitted HRT calendar.
    pub calendar: Arc<CalendarPlan>,
    /// Bus-time instant of round 0's start.
    pub calendar_start: Time,
    /// Timeliness class of each bound etag.
    pub channels: HashMap<u16, ChannelClass>,
    /// Declared period of each periodic HRT etag.
    pub hrt_periods: HashMap<u16, Duration>,
}

impl Cluster {
    /// Start a cluster description.
    pub fn new(cfg: ClusterConfig) -> Self {
        Cluster {
            cfg,
            nodes: Vec::new(),
        }
    }

    /// Add a node running `behavior`; returns its node id.
    pub fn add_node(&mut self, behavior: Box<dyn Behavior>) -> u8 {
        let id = self.nodes.len() as u8;
        self.nodes.push(NodeDef {
            publishes: Vec::new(),
            subscribes: Vec::new(),
            behavior,
        });
        id
    }

    /// Declare that `node` publishes `subject` with the given channel
    /// attributes.
    pub fn publish(&mut self, node: u8, subject: Subject, spec: ChannelSpec) {
        self.nodes[node as usize].publishes.push((subject, spec));
    }

    /// Declare that `node` subscribes to `subject`. The spec mirrors
    /// the publisher's (binding is static).
    pub fn subscribe(&mut self, node: u8, subject: Subject, spec: ChannelSpec) {
        self.nodes[node as usize].subscribes.push((subject, spec));
    }

    /// Run the cluster over the in-process loopback transport for
    /// `run` of bus time.
    pub fn run_for(self, run: Duration) -> Result<LiveReport, LiveError> {
        let n = self.nodes.len();
        let (broker_t, node_ts) = loopback(n);
        let node_ts: Vec<Option<Box<dyn NodeTransport>>> = node_ts
            .into_iter()
            .map(|t| Some(Box::new(t) as Box<dyn NodeTransport>))
            .collect();
        self.run_with(broker_t, NodeEndpoints::Ready(node_ts), run)
    }

    /// Like [`Cluster::run_for`], but pass every node's loopback
    /// endpoint through `wrap` before its thread starts. Tests use
    /// this to interpose jitter- or fault-injecting transports without
    /// touching the protocol (e.g. the lock-step determinism
    /// regression, which perturbs reply arrival timing and asserts
    /// delivery logs stay byte-identical).
    pub fn run_for_wrapped(
        self,
        run: Duration,
        wrap: &mut dyn FnMut(u8, Box<dyn NodeTransport>) -> Box<dyn NodeTransport>,
    ) -> Result<LiveReport, LiveError> {
        let n = self.nodes.len();
        let (broker_t, node_ts) = loopback(n);
        let node_ts: Vec<Option<Box<dyn NodeTransport>>> = node_ts
            .into_iter()
            .enumerate()
            .map(|(id, t)| Some(wrap(id as u8, Box::new(t) as Box<dyn NodeTransport>)))
            .collect();
        self.run_with(broker_t, NodeEndpoints::Ready(node_ts), run)
    }

    /// Run the cluster over UDP: one datagram socket per node plus one
    /// for the broker, all on localhost.
    pub fn run_for_udp(self, run: Duration) -> Result<LiveReport, LiveError> {
        let n = self.nodes.len();
        let broker_t = UdpBroker::bind(n).map_err(LiveError::Transport)?;
        let addr = broker_t.local_addr().map_err(LiveError::Transport)?;
        self.run_with(broker_t, NodeEndpoints::Udp(addr), run)
    }

    fn run_with<B>(
        self,
        broker_transport: B,
        endpoints: NodeEndpoints,
        run: Duration,
    ) -> Result<LiveReport, LiveError>
    where
        B: crate::transport::BrokerTransport + 'static,
    {
        let cfg = self.cfg;
        if self.nodes.len() > TXNODE_MAX as usize + 1 {
            return Err(LiveError::Config(format!(
                "{} nodes exceed the CAN TxNode field ({})",
                self.nodes.len(),
                TXNODE_MAX as usize + 1
            )));
        }

        // Static binding: subjects get etags in declaration order.
        let mut etags: HashMap<u64, u16> = HashMap::new();
        let mut channels: HashMap<u16, ChannelClass> = HashMap::new();
        let mut hrt_periods: HashMap<u16, Duration> = HashMap::new();
        let mut next_etag = ETAG_FIRST_DYNAMIC;
        let mut requests: Vec<SlotRequest> = Vec::new();
        for (node, def) in self.nodes.iter().enumerate() {
            for (subject, spec) in def.publishes.iter().chain(def.subscribes.iter()) {
                let etag = *etags.entry(subject.uid()).or_insert_with(|| {
                    let e = next_etag;
                    next_etag = next_etag.wrapping_add(1);
                    e
                });
                channels.insert(etag, spec.class());
            }
            for (subject, spec) in &def.publishes {
                if let ChannelSpec::Hrt(h) = spec {
                    let etag = etags[&subject.uid()];
                    requests.push(SlotRequest {
                        etag,
                        publisher: NodeId(node as u8),
                        dlc: h.dlc,
                        omission_degree: h.omission_degree,
                        period: h.period,
                    });
                    if !h.sporadic {
                        hrt_periods.insert(etag, h.period);
                    }
                }
            }
        }
        if usize::from(next_etag) < usize::from(ETAG_FIRST_DYNAMIC) + etags.len() {
            return Err(LiveError::Config("etag space exhausted".into()));
        }

        let calendar = Arc::new(CalendarPlan::plan(
            cfg.round, &requests, cfg.timing, cfg.gap,
        )?);
        let sink = match (cfg.trace, cfg.trace_capacity) {
            (false, _) => SharedTraceSink::disabled(),
            (true, None) => SharedTraceSink::enabled(),
            (true, Some(cap)) => SharedTraceSink::enabled_with_capacity(cap),
        };
        let shared = SharedConfig {
            calendar: Arc::clone(&calendar),
            calendar_start: cfg.calendar_start,
            prio_cfg: cfg.prio_cfg,
            etags: Arc::new(etags),
            log: Arc::new(Mutex::new(Vec::new())),
            sink: sink.clone(),
        };

        // Spawn the node threads; the broker runs on this thread.
        let mut endpoints = endpoints;
        let mut handles = Vec::with_capacity(self.nodes.len());
        for (id, def) in self.nodes.into_iter().enumerate() {
            let node_cfg = NodeConfig {
                node: id as u8,
                publishes: def.publishes,
                subscribes: def.subscribes,
                srt_queue_cap: cfg.srt_queue_cap,
                nrt_queue_cap: cfg.nrt_queue_cap,
            };
            let shared = shared.clone();
            let endpoint = endpoints.take(id as u8);
            let handle = crate::sync::thread::Builder::new()
                .name(format!("rtec-node-{id}"))
                .spawn(move || -> Result<NodeStats, LiveError> {
                    let transport = endpoint.connect()?;
                    LiveNode::new(node_cfg, shared, transport, def.behavior)?.run()
                })
                .map_err(|e| LiveError::Config(format!("spawn failed: {e}")))?;
            handles.push(handle);
        }

        let broker = Broker::new(
            BrokerConfig {
                timing: cfg.timing,
                pace: cfg.pace,
                fault: cfg.fault.clone(),
            },
            broker_transport,
            sink.clone(),
        );
        let broker_result = broker.run(Time::ZERO + run);

        let mut stats = Vec::with_capacity(handles.len());
        let mut first_node_err = None;
        for (id, handle) in handles.into_iter().enumerate() {
            match handle.join() {
                Ok(Ok(s)) => stats.push(s),
                Ok(Err(e)) => {
                    first_node_err.get_or_insert(e);
                    stats.push(NodeStats {
                        node: id as u8,
                        ..NodeStats::default()
                    });
                }
                Err(_) => {
                    first_node_err.get_or_insert(LiveError::NodeFailed(id as u8));
                    stats.push(NodeStats {
                        node: id as u8,
                        ..NodeStats::default()
                    });
                }
            }
        }
        let broker_stats = broker_result?;
        if let Some(e) = first_node_err {
            return Err(e);
        }
        // Batched completion turns let node threads append to the
        // shared log and trace ring concurrently, so the raw append
        // order is schedule-dependent. Canonicalize: the log sorts
        // into bus order ((wire_ns, node) is unique — the wire
        // serializes frames and a node delivers a frame once), and the
        // trace sorts stably by (time, source) — same-key events all
        // come from one emitter, so its own order survives.
        let mut log = shared.log.lock().unwrap_or_else(|e| e.into_inner()).clone();
        log.sort_by_key(|r| (r.wire_ns, r.node));
        let mut trace = sink.events();
        trace.sort_by(|x, y| (x.time, &x.source).cmp(&(y.time, &y.source)));
        Ok(LiveReport {
            stats,
            broker: broker_stats,
            log,
            trace,
            trace_dropped: sink.dropped(),
            calendar,
            calendar_start: cfg.calendar_start,
            channels,
            hrt_periods,
        })
    }
}

/// Where each node thread gets its transport endpoint from: loopback
/// endpoints are built up front; UDP endpoints rendezvous from inside
/// the node thread (`connect` blocks until the broker answers).
enum NodeEndpoints {
    Ready(Vec<Option<Box<dyn NodeTransport>>>),
    Udp(std::net::SocketAddr),
}

impl NodeEndpoints {
    fn take(&mut self, node: u8) -> NodeEndpoint {
        match self {
            NodeEndpoints::Ready(v) => {
                NodeEndpoint::Ready(v[node as usize].take().expect("endpoint taken once"))
            }
            NodeEndpoints::Udp(addr) => NodeEndpoint::Udp(*addr, node),
        }
    }
}

enum NodeEndpoint {
    Ready(Box<dyn NodeTransport>),
    Udp(std::net::SocketAddr, u8),
}

impl NodeEndpoint {
    fn connect(self) -> Result<Box<dyn NodeTransport>, LiveError> {
        match self {
            NodeEndpoint::Ready(t) => Ok(t),
            NodeEndpoint::Udp(addr, node) => Ok(Box::new(
                UdpNode::connect(addr, node).map_err(LiveError::Transport)?,
            )),
        }
    }
}
