//! Cluster assembly: static binding, calendar admission, thread
//! spawning, and run orchestration.
//!
//! [`Cluster`] is the crate's front door. Declare nodes with their
//! publications/subscriptions and a [`Behavior`] each, then call
//! [`Cluster::run_for`] (in-process loopback transport) or
//! [`Cluster::run_for_udp`] (one datagram socket per endpoint). The
//! builder performs the steps the simulator's network setup does:
//!
//! * **static binding** — subjects are assigned etags in declaration
//!   order starting at the first dynamic tag (the live runtime has no
//!   bind protocol; see `DESIGN.md` for the divergence list),
//! * **admission** — HRT publications are planned into a slot calendar
//!   via [`rtec_analysis::admission`]; an infeasible request set fails
//!   the build, never the run,
//! * **spawning** — one thread per node plus the broker on the calling
//!   thread, all sharing a [`SharedTraceSink`] so the conformance
//!   auditor can replay the merged trace.

use crate::broker::{
    Broker, BrokerConfig, BrokerStats, FaultPlan, NodeSupervisor, SupEvent, SupKind,
};
use crate::chaos::{ChaosCtl, ChaosPlan, ChaosReport};
use crate::clock::Pace;
use crate::node::{Behavior, DeliveryRecord, LiveNode, NodeConfig, NodeStats, SharedConfig};
use crate::sync::{thread::JoinHandle, Arc, Mutex};
use crate::transport::{loopback, NodeTransport};
use crate::udp::{UdpBroker, UdpNode};
use crate::LiveError;
use rtec_analysis::admission::{CalendarPlan, SlotRequest};
use rtec_analysis::edf::PrioritySlotConfig;
use rtec_can::bits::BitTiming;
use rtec_can::id::TXNODE_MAX;
use rtec_can::NodeId;
use rtec_core::binding::ETAG_FIRST_DYNAMIC;
use rtec_core::channel::{ChannelClass, ChannelSpec};
use rtec_core::event::Subject;
use rtec_sim::{Duration, Rng, SharedTraceSink, Time, TraceEvent};
use std::collections::HashMap;

/// Cluster-wide knobs. `Default` matches the paper's bus: 1 Mbit/s,
/// 10 ms rounds, 40 µs inter-slot gap, virtual pacing, no faults.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Bit timing of the shared wire.
    pub timing: BitTiming,
    /// How bus time maps to wall time.
    pub pace: Pace,
    /// HRT calendar round length `R`.
    pub round: Duration,
    /// Inter-slot gap `ΔG_min` (paper: 40 µs).
    pub gap: Duration,
    /// Bus-time instant of round 0's start (gives nodes room to start
    /// up before the first slot).
    pub calendar_start: Time,
    /// Deadline → priority quantization for SRT channels.
    pub prio_cfg: PrioritySlotConfig,
    /// Fault injection plan for the bus.
    pub fault: FaultPlan,
    /// Per-channel SRT queue bound.
    pub srt_queue_cap: usize,
    /// Per-channel NRT queue bound (in frames).
    pub nrt_queue_cap: usize,
    /// Record structured trace events (needed for auditing).
    pub trace: bool,
    /// Bound the trace ring to this many records (`None` = unbounded).
    /// When the ring overflows, the oldest records are evicted and the
    /// eviction count surfaces as [`LiveReport::trace_dropped`].
    pub trace_capacity: Option<usize>,
    /// Pre-supervision behavior: any node fault aborts the run with a
    /// terminal error instead of quarantining/restarting the node.
    pub strict: bool,
    /// Heartbeat probe interval (bus time); `None` disables probing.
    pub heartbeat: Option<Duration>,
    /// How many supervised restarts a node gets before it is declared
    /// off (the bus-off analogue). Only nodes added via
    /// [`Cluster::add_node_with`] can be restarted at all.
    pub max_restarts: u32,
    /// Base restart backoff in bus time; doubles per consecutive
    /// restart of the same node, plus a seeded jitter of up to one
    /// base interval.
    pub restart_backoff: Duration,
    /// Seed for the restart jitter stream (part of what makes two
    /// same-seed chaos runs byte-identical).
    pub restart_seed: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            timing: BitTiming::MBIT_1,
            pace: Pace::Virtual,
            round: Duration::from_ms(10),
            gap: Duration::from_us(40),
            calendar_start: Time::from_ms(1),
            prio_cfg: PrioritySlotConfig::paper_default(),
            fault: FaultPlan::default(),
            srt_queue_cap: 16,
            nrt_queue_cap: 64,
            trace: true,
            trace_capacity: None,
            strict: false,
            heartbeat: Some(Duration::from_ms(50)),
            max_restarts: 4,
            restart_backoff: Duration::from_ms(2),
            restart_seed: 0x5EED,
        }
    }
}

/// Where a node's application logic comes from: a one-shot behavior
/// (not restartable — a crash quarantines the node for good) or a
/// factory the supervisor can mint a fresh behavior from per
/// incarnation.
enum BehaviorSource {
    Once(Option<Box<dyn Behavior>>),
    Factory(Box<dyn FnMut() -> Box<dyn Behavior> + Send>),
}

impl BehaviorSource {
    fn take(&mut self) -> Option<Box<dyn Behavior>> {
        match self {
            BehaviorSource::Once(b) => b.take(),
            BehaviorSource::Factory(f) => Some(f()),
        }
    }

    fn can_respawn(&self) -> bool {
        matches!(self, BehaviorSource::Factory(_))
    }
}

struct NodeDef {
    publishes: Vec<(Subject, ChannelSpec)>,
    subscribes: Vec<(Subject, ChannelSpec)>,
    behavior: BehaviorSource,
}

/// Builder for a live cluster.
pub struct Cluster {
    cfg: ClusterConfig,
    nodes: Vec<NodeDef>,
    sink: Option<SharedTraceSink>,
}

/// Supervision outcome of a run: every health transition the broker
/// recorded, with summary counters.
#[derive(Clone, Debug, Default)]
pub struct SupervisionReport {
    /// All transitions in bus-time order.
    pub events: Vec<SupEvent>,
    /// Nodes declared down (counting repeats).
    pub downs: u64,
    /// Supervised restarts that completed their rejoin handshake.
    pub restarts: u64,
    /// Nodes that exhausted their restart budget (bus-off analogue).
    pub offs: u64,
}

impl SupervisionReport {
    fn from_events(events: Vec<SupEvent>) -> Self {
        let count = |k: SupKind| events.iter().filter(|e| e.kind == k).count() as u64;
        SupervisionReport {
            downs: count(SupKind::Down),
            restarts: count(SupKind::Up),
            offs: count(SupKind::Off),
            events,
        }
    }

    /// Down→Up recovery latencies in bus ns, one per completed restart
    /// (pairing each node's `Up` with its most recent `Down`).
    pub fn recovery_times_ns(&self) -> Vec<u64> {
        let mut pending: HashMap<u8, u64> = HashMap::new();
        let mut out = Vec::new();
        for e in &self.events {
            match e.kind {
                SupKind::Down => {
                    pending.entry(e.node).or_insert(e.at_ns);
                }
                SupKind::Up => {
                    if let Some(down_at) = pending.remove(&e.node) {
                        out.push(e.at_ns.saturating_sub(down_at));
                    }
                }
                _ => {}
            }
        }
        out
    }
}

/// Everything a finished run yields.
pub struct LiveReport {
    /// Per-node counters, indexed by node id. A restarted node's
    /// counters span all its incarnations (carried across via the crash
    /// snapshot).
    pub stats: Vec<NodeStats>,
    /// Broker counters.
    pub broker: BrokerStats,
    /// Supervision outcome: health transitions, restarts, quarantines.
    pub supervision: SupervisionReport,
    /// All deliveries in bus order.
    pub log: Vec<DeliveryRecord>,
    /// The merged structured trace (empty when tracing was off).
    pub trace: Vec<TraceEvent>,
    /// Trace records evicted from a bounded ring (0 = complete trace;
    /// audits are only sound when nothing was dropped).
    pub trace_dropped: u64,
    /// The admitted HRT calendar.
    pub calendar: Arc<CalendarPlan>,
    /// Bus-time instant of round 0's start.
    pub calendar_start: Time,
    /// Timeliness class of each bound etag.
    pub channels: HashMap<u16, ChannelClass>,
    /// Declared period of each periodic HRT etag.
    pub hrt_periods: HashMap<u16, Duration>,
}

impl Cluster {
    /// Start a cluster description.
    pub fn new(cfg: ClusterConfig) -> Self {
        Cluster {
            cfg,
            nodes: Vec::new(),
            sink: None,
        }
    }

    /// Route this cluster's structured trace into an externally owned
    /// sink instead of building a private one from
    /// [`ClusterConfig::trace`]/`trace_capacity`.
    ///
    /// Off-bus layers (the gateway's fanout workers) hand the same sink
    /// to their own emitters, so one merged, time-sorted trace covers
    /// the bus *and* everything behind it and a single T1–T8 audit pass
    /// sees the whole system. The sink decides enabled/disabled and
    /// capacity; the config's trace flags are ignored when this is set.
    pub fn use_sink(&mut self, sink: SharedTraceSink) {
        self.sink = Some(sink);
    }

    /// Add a node running `behavior`; returns its node id. A node added
    /// this way cannot be restarted after a crash (the supervisor
    /// quarantines it for good); use [`Cluster::add_node_with`] to make
    /// it restartable.
    pub fn add_node(&mut self, behavior: Box<dyn Behavior>) -> u8 {
        let id = self.nodes.len() as u8;
        self.nodes.push(NodeDef {
            publishes: Vec::new(),
            subscribes: Vec::new(),
            behavior: BehaviorSource::Once(Some(behavior)),
        });
        id
    }

    /// Add a node whose behavior is minted from `factory`, once per
    /// incarnation — the supervisor can restart such a node after a
    /// crash (up to [`ClusterConfig::max_restarts`] times), resuming the
    /// dead incarnation's SRT/NRT queues and counters from its crash
    /// snapshot.
    pub fn add_node_with(&mut self, factory: Box<dyn FnMut() -> Box<dyn Behavior> + Send>) -> u8 {
        let id = self.nodes.len() as u8;
        self.nodes.push(NodeDef {
            publishes: Vec::new(),
            subscribes: Vec::new(),
            behavior: BehaviorSource::Factory(factory),
        });
        id
    }

    /// Declare that `node` publishes `subject` with the given channel
    /// attributes.
    pub fn publish(&mut self, node: u8, subject: Subject, spec: ChannelSpec) {
        self.nodes[node as usize].publishes.push((subject, spec));
    }

    /// Declare that `node` subscribes to `subject`. The spec mirrors
    /// the publisher's (binding is static).
    pub fn subscribe(&mut self, node: u8, subject: Subject, spec: ChannelSpec) {
        self.nodes[node as usize].subscribes.push((subject, spec));
    }

    /// Run the cluster over the in-process loopback transport for
    /// `run` of bus time.
    pub fn run_for(self, run: Duration) -> Result<LiveReport, LiveError> {
        let n = self.nodes.len();
        let (broker_t, node_ts) = loopback(n);
        self.run_with(broker_t, NodeEndpoints::ready(node_ts), run, None)
    }

    /// Like [`Cluster::run_for`], but pass every node's loopback
    /// endpoint through `wrap` before its thread starts — including
    /// restarted incarnations, whose fresh endpoints go through the
    /// same closure. Tests use this to interpose jitter- or
    /// fault-injecting transports without touching the protocol (e.g.
    /// the lock-step determinism regression, which perturbs reply
    /// arrival timing and asserts delivery logs stay byte-identical).
    pub fn run_for_wrapped(
        self,
        run: Duration,
        wrap: &mut WrapFn,
    ) -> Result<LiveReport, LiveError> {
        let n = self.nodes.len();
        let (broker_t, node_ts) = loopback(n);
        self.run_with(broker_t, NodeEndpoints::ready(node_ts), run, Some(wrap))
    }

    /// Run the cluster over the loopback transport under a seeded
    /// chaos plan: node kills (with supervised restart), datagram
    /// drop/duplication/delay, and a one-off broker stall. Returns the
    /// usual report plus the chaos bookkeeping.
    pub fn run_for_chaos(
        self,
        run: Duration,
        plan: ChaosPlan,
    ) -> Result<(LiveReport, ChaosReport), LiveError> {
        let n = self.nodes.len();
        let ctl = ChaosCtl::new(plan, n);
        let (broker_t, node_ts) = loopback(n);
        let broker_t = crate::chaos::ChaosBroker::new(broker_t, ctl.clone());
        let node_ctl = ctl.clone();
        let mut wrap = move |id: u8, t: Box<dyn NodeTransport>| -> Box<dyn NodeTransport> {
            Box::new(crate::chaos::ChaosNode::new(t, node_ctl.clone(), id))
        };
        let report = self.run_with(
            broker_t,
            NodeEndpoints::ready(node_ts),
            run,
            Some(&mut wrap),
        )?;
        Ok((report, ctl.report()))
    }

    /// Run the cluster over UDP: one datagram socket per node plus one
    /// for the broker, all on localhost.
    pub fn run_for_udp(self, run: Duration) -> Result<LiveReport, LiveError> {
        let n = self.nodes.len();
        let broker_t = UdpBroker::bind(n).map_err(LiveError::Transport)?;
        let addr = broker_t.local_addr().map_err(LiveError::Transport)?;
        self.run_with(broker_t, NodeEndpoints::Udp(addr), run, None)
    }

    fn run_with<B>(
        self,
        broker_transport: B,
        endpoints: NodeEndpoints,
        run: Duration,
        wrap: Option<&mut WrapFn>,
    ) -> Result<LiveReport, LiveError>
    where
        B: crate::transport::BrokerTransport + 'static,
    {
        let cfg = self.cfg;
        if self.nodes.len() > TXNODE_MAX as usize + 1 {
            return Err(LiveError::Config(format!(
                "{} nodes exceed the CAN TxNode field ({})",
                self.nodes.len(),
                TXNODE_MAX as usize + 1
            )));
        }

        // Static binding: subjects get etags in declaration order.
        let mut etags: HashMap<u64, u16> = HashMap::new();
        let mut channels: HashMap<u16, ChannelClass> = HashMap::new();
        let mut hrt_periods: HashMap<u16, Duration> = HashMap::new();
        let mut next_etag = ETAG_FIRST_DYNAMIC;
        let mut requests: Vec<SlotRequest> = Vec::new();
        for (node, def) in self.nodes.iter().enumerate() {
            for (subject, spec) in def.publishes.iter().chain(def.subscribes.iter()) {
                let etag = *etags.entry(subject.uid()).or_insert_with(|| {
                    let e = next_etag;
                    next_etag = next_etag.wrapping_add(1);
                    e
                });
                channels.insert(etag, spec.class());
            }
            for (subject, spec) in &def.publishes {
                if let ChannelSpec::Hrt(h) = spec {
                    let etag = etags[&subject.uid()];
                    requests.push(SlotRequest {
                        etag,
                        publisher: NodeId(node as u8),
                        dlc: h.dlc,
                        omission_degree: h.omission_degree,
                        period: h.period,
                    });
                    if !h.sporadic {
                        hrt_periods.insert(etag, h.period);
                    }
                }
            }
        }
        if usize::from(next_etag) < usize::from(ETAG_FIRST_DYNAMIC) + etags.len() {
            return Err(LiveError::Config("etag space exhausted".into()));
        }

        let calendar = Arc::new(CalendarPlan::plan(
            cfg.round, &requests, cfg.timing, cfg.gap,
        )?);
        let sink = match (self.sink, cfg.trace, cfg.trace_capacity) {
            (Some(shared), _, _) => shared,
            (None, false, _) => SharedTraceSink::disabled(),
            (None, true, None) => SharedTraceSink::enabled(),
            (None, true, Some(cap)) => SharedTraceSink::enabled_with_capacity(cap),
        };
        let shared = SharedConfig {
            calendar: Arc::clone(&calendar),
            calendar_start: cfg.calendar_start,
            prio_cfg: cfg.prio_cfg,
            etags: Arc::new(etags),
            log: Arc::new(Mutex::new(Vec::new())),
            sink: sink.clone(),
            snapshots: Arc::new(Mutex::new(HashMap::new())),
        };

        // Hand the node definitions to the supervisor, which owns all
        // spawning — the initial threads here and any restarted
        // incarnations the broker asks for mid-run.
        let n = self.nodes.len();
        let mut cfgs = Vec::with_capacity(n);
        let mut sources = Vec::with_capacity(n);
        for (id, def) in self.nodes.into_iter().enumerate() {
            cfgs.push(NodeConfig {
                node: id as u8,
                incarnation: 0,
                publishes: def.publishes,
                subscribes: def.subscribes,
                srt_queue_cap: cfg.srt_queue_cap,
                nrt_queue_cap: cfg.nrt_queue_cap,
            });
            sources.push(def.behavior);
        }
        let udp_addr = match &endpoints {
            NodeEndpoints::Udp(addr) => Some(*addr),
            NodeEndpoints::Ready(_) => None,
        };
        let mut supervisor = Supervisor {
            cfgs,
            sources,
            shared: shared.clone(),
            udp_addr,
            handles: (0..n).map(|_| None).collect(),
            wrap,
            max_restarts: cfg.max_restarts,
            backoff_ns: cfg.restart_backoff.as_ns().max(1),
            rng: Rng::seed_from_u64(cfg.restart_seed),
            restarts: vec![0; n],
        };
        let mut endpoints = endpoints;
        for id in 0..n as u8 {
            supervisor.spawn_node(id, 0, endpoints.take(id))?;
        }

        let mut broker = Broker::new(
            BrokerConfig {
                timing: cfg.timing,
                pace: cfg.pace,
                fault: cfg.fault.clone(),
                strict: cfg.strict,
                heartbeat: cfg.heartbeat,
                ..BrokerConfig::default()
            },
            broker_transport,
            sink.clone(),
        );
        let broker_result = broker.run_supervised(Time::ZERO + run, Some(&mut supervisor));
        let supervision = SupervisionReport::from_events(broker.take_sup_log());

        let mut stats = Vec::with_capacity(n);
        let mut first_node_err = None;
        for (id, handle) in supervisor.handles.into_iter().enumerate() {
            match handle.map(|h| h.join()) {
                Some(Ok(Ok(s))) => stats.push(s),
                Some(Ok(Err(e))) => {
                    // The last incarnation crashed (quarantined, off, or
                    // chaos-killed at shutdown). Its counters survive in
                    // the crash snapshot; the error itself is terminal
                    // only in strict mode — supervised runs report it
                    // through the supervision log instead.
                    if cfg.strict {
                        first_node_err.get_or_insert(e);
                    }
                    let snap = shared
                        .snapshots
                        .lock()
                        .unwrap_or_else(|p| p.into_inner())
                        .remove(&(id as u8));
                    stats.push(snap.map(|s| s.stats).unwrap_or(NodeStats {
                        node: id as u8,
                        ..NodeStats::default()
                    }));
                }
                Some(Err(_)) => {
                    // A panic is a bug, never an injected fault.
                    first_node_err.get_or_insert(LiveError::NodeFailed(id as u8));
                    stats.push(NodeStats {
                        node: id as u8,
                        ..NodeStats::default()
                    });
                }
                None => stats.push(NodeStats {
                    node: id as u8,
                    ..NodeStats::default()
                }),
            }
        }
        let broker_stats = broker_result?;
        if let Some(e) = first_node_err {
            return Err(e);
        }
        // Batched completion turns let node threads append to the
        // shared log and trace ring concurrently, so the raw append
        // order is schedule-dependent. Canonicalize: the log sorts
        // into bus order ((wire_ns, node) is unique — the wire
        // serializes frames and a node delivers a frame once), and the
        // trace sorts stably by (time, source) — same-key events all
        // come from one emitter, so its own order survives.
        let mut log = shared.log.lock().unwrap_or_else(|e| e.into_inner()).clone();
        log.sort_by_key(|r| (r.wire_ns, r.node));
        let mut trace = sink.events();
        trace.sort_by(|x, y| (x.time, &x.source).cmp(&(y.time, &y.source)));
        Ok(LiveReport {
            stats,
            broker: broker_stats,
            supervision,
            log,
            trace,
            trace_dropped: sink.dropped(),
            calendar,
            calendar_start: cfg.calendar_start,
            channels,
            hrt_periods,
        })
    }
}

/// The endpoint-wrapping hook threaded through a run (see
/// [`Cluster::run_for_wrapped`]). Called once per spawned incarnation.
pub type WrapFn = dyn FnMut(u8, Box<dyn NodeTransport>) -> Box<dyn NodeTransport>;

/// Owns the node threads for one run: spawns the initial incarnations
/// and, as the broker's [`NodeSupervisor`], decides restart backoff and
/// respawns crashed nodes with a bumped incarnation.
struct Supervisor<'a> {
    cfgs: Vec<NodeConfig>,
    sources: Vec<BehaviorSource>,
    shared: SharedConfig,
    udp_addr: Option<std::net::SocketAddr>,
    handles: Vec<Option<JoinHandle<Result<NodeStats, LiveError>>>>,
    wrap: Option<&'a mut WrapFn>,
    max_restarts: u32,
    backoff_ns: u64,
    rng: Rng,
    /// Restarts consumed per node.
    restarts: Vec<u32>,
}

impl Supervisor<'_> {
    fn spawn_node(
        &mut self,
        node: u8,
        incarnation: u32,
        endpoint: NodeEndpoint,
    ) -> Result<(), LiveError> {
        let Some(behavior) = self.sources[node as usize].take() else {
            return Err(LiveError::RestartUnsupported { node });
        };
        let endpoint = match (endpoint, self.wrap.as_mut()) {
            (NodeEndpoint::Ready(t), Some(w)) => NodeEndpoint::Ready(w(node, t)),
            (e, _) => e,
        };
        let mut node_cfg = self.cfgs[node as usize].clone();
        node_cfg.incarnation = incarnation;
        let shared = self.shared.clone();
        let handle = crate::sync::thread::Builder::new()
            .name(format!("rtec-node-{node}"))
            .spawn(move || -> Result<NodeStats, LiveError> {
                let transport = endpoint.connect()?;
                LiveNode::new(node_cfg, shared, transport, behavior)?.run()
            })
            .map_err(|e| LiveError::Config(format!("spawn failed: {e}")))?;
        self.handles[node as usize] = Some(handle);
        Ok(())
    }
}

impl NodeSupervisor for Supervisor<'_> {
    fn on_down(
        &mut self,
        node: u8,
        _incarnation: u32,
        _at_ns: u64,
        _reason: &'static str,
    ) -> Option<u64> {
        let n = node as usize;
        if !self.sources[n].can_respawn() || self.restarts[n] >= self.max_restarts {
            return None;
        }
        self.restarts[n] += 1;
        // Bounded exponential backoff in bus time, plus up to one base
        // interval of seeded jitter so same-instant restarts spread out
        // — deterministic across same-seed runs.
        let shift = (self.restarts[n] - 1).min(16);
        let backoff = self.backoff_ns << shift;
        Some(backoff + self.rng.gen_range_u64(self.backoff_ns))
    }

    fn respawn(
        &mut self,
        node: u8,
        incarnation: u32,
        _at_ns: u64,
        link: Option<Box<dyn NodeTransport>>,
    ) -> Result<(), LiveError> {
        // Reap the dead incarnation first; its exit error (transport
        // severed, chaos kill) is expected, not propagated.
        if let Some(h) = self.handles[node as usize].take() {
            let _ = h.join();
        }
        let endpoint = match link {
            Some(t) => NodeEndpoint::Ready(t),
            None => {
                let addr = self
                    .udp_addr
                    .ok_or(LiveError::RestartUnsupported { node })?;
                NodeEndpoint::Udp(addr, node, incarnation)
            }
        };
        self.spawn_node(node, incarnation, endpoint)
    }
}

/// Where each node thread gets its transport endpoint from: loopback
/// endpoints are built up front; UDP endpoints rendezvous from inside
/// the node thread (`connect` blocks until the broker answers).
enum NodeEndpoints {
    Ready(Vec<Option<Box<dyn NodeTransport>>>),
    Udp(std::net::SocketAddr),
}

impl NodeEndpoints {
    fn ready<T: NodeTransport + 'static>(endpoints: Vec<T>) -> Self {
        NodeEndpoints::Ready(
            endpoints
                .into_iter()
                .map(|t| Some(Box::new(t) as Box<dyn NodeTransport>))
                .collect(),
        )
    }

    fn take(&mut self, node: u8) -> NodeEndpoint {
        match self {
            NodeEndpoints::Ready(v) => {
                NodeEndpoint::Ready(v[node as usize].take().expect("endpoint taken once"))
            }
            NodeEndpoints::Udp(addr) => NodeEndpoint::Udp(*addr, node, 0),
        }
    }
}

enum NodeEndpoint {
    Ready(Box<dyn NodeTransport>),
    Udp(std::net::SocketAddr, u8, u32),
}

impl NodeEndpoint {
    fn connect(self) -> Result<Box<dyn NodeTransport>, LiveError> {
        match self {
            NodeEndpoint::Ready(t) => Ok(t),
            NodeEndpoint::Udp(addr, node, incarnation) => Ok(Box::new(
                UdpNode::connect(addr, node, incarnation).map_err(LiveError::Transport)?,
            )),
        }
    }
}
