//! Transport abstraction between nodes and the bus broker.
//!
//! The broker and the nodes only ever talk through these two traits, so
//! the same runtime runs over an in-process loopback (deterministic,
//! used by the tests and benchmarks) or over real sockets
//! ([`crate::udp`]). The protocol is strictly request/response-shaped
//! from the broker's point of view — the broker always knows which node
//! it is waiting on — so the broker-side trait only needs a *targeted*
//! receive, never a select over all nodes.

use crate::sync::mpsc;
use crate::wire::{ToBroker, ToNode, WireError};
use std::time::Duration;

/// A transport operation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// No message arrived within the allowed wait.
    Timeout,
    /// The peer is gone (channel closed, socket shut down).
    Disconnected,
    /// A datagram arrived but did not decode as a protocol message.
    Malformed(WireError),
    /// An I/O error from the underlying socket.
    Io(String),
}

impl core::fmt::Display for TransportError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TransportError::Timeout => write!(f, "transport timeout"),
            TransportError::Disconnected => write!(f, "peer disconnected"),
            TransportError::Malformed(e) => write!(f, "malformed datagram: {e}"),
            TransportError::Io(e) => write!(f, "transport i/o error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<WireError> for TransportError {
    fn from(e: WireError) -> Self {
        TransportError::Malformed(e)
    }
}

/// A node's endpoint of the transport.
pub trait NodeTransport: Send {
    /// Send a message to the broker.
    fn send(&mut self, msg: ToBroker) -> Result<(), TransportError>;
    /// Wait up to `timeout` for the next message from the broker.
    fn recv(&mut self, timeout: Duration) -> Result<ToNode, TransportError>;
}

/// How a restarted node re-attaches to the broker's transport, the
/// result of [`BrokerTransport::relink`].
pub enum Relink {
    /// The transport minted a fresh node endpoint (loopback); the
    /// supervisor hands it to the new node thread directly.
    Link(Box<dyn NodeTransport>),
    /// The node side must dial back in itself (UDP: the restarted node
    /// opens a new socket and re-runs the `Hello` handshake); the
    /// broker must call [`BrokerTransport::rendezvous_node`] before
    /// sending it anything.
    Reconnect,
}

/// The broker's endpoint of the transport, addressing nodes by index.
pub trait BrokerTransport: Send {
    /// Number of node endpoints this transport serves.
    fn node_count(&self) -> usize;
    /// Block until every node endpoint is reachable (e.g. the UDP
    /// transport has learned all source addresses from `Hello`
    /// datagrams). Transports that are connected by construction — the
    /// loopback — return immediately.
    fn rendezvous(&mut self, _timeout: Duration) -> Result<(), TransportError> {
        Ok(())
    }
    /// Send a message to node `node`.
    fn send(&mut self, node: u8, msg: ToNode) -> Result<(), TransportError>;
    /// Wait up to `timeout` for the next message *from node `node`*.
    fn recv_from(&mut self, node: u8, timeout: Duration) -> Result<ToBroker, TransportError>;
    /// Sever the link to node `node`: drop the broker-side endpoint so
    /// a quarantined or crashed peer observes a disconnect instead of
    /// blocking on a full channel forever. Idempotent; a no-op for
    /// transports without per-node teardown.
    fn unlink(&mut self, _node: u8) {}
    /// Replace the link to node `node` ahead of a supervised restart,
    /// discarding any queued messages from the dead incarnation.
    /// Transports that do not support restart return an error.
    fn relink(&mut self, _node: u8) -> Result<Relink, TransportError> {
        Err(TransportError::Disconnected)
    }
    /// Block until a relinked node has dialed back in (see
    /// [`Relink::Reconnect`]). Immediate for transports whose
    /// [`relink`](BrokerTransport::relink) already returned a live link.
    fn rendezvous_node(&mut self, _node: u8, _timeout: Duration) -> Result<(), TransportError> {
        Ok(())
    }
}

/// Node endpoint of the in-process loopback transport.
pub struct LoopbackNode {
    tx: mpsc::SyncSender<ToBroker>,
    rx: mpsc::Receiver<ToNode>,
}

/// Broker endpoint of the in-process loopback transport. A severed
/// (`unlink`ed) slot holds `None` and reports `Disconnected`.
pub struct LoopbackBroker {
    links: Vec<Option<(mpsc::SyncSender<ToNode>, mpsc::Receiver<ToBroker>)>>,
}

/// Build a loopback transport for `nodes` node endpoints.
///
/// Messages pass through bounded in-process channels as values — no
/// encoding, no loss, FIFO per direction — which makes loopback runs
/// bit-for-bit deterministic under [`crate::clock::Pace::Virtual`].
/// The lock-step turn protocol keeps at most a handful of messages in
/// flight per link, so the [`mpsc::DEFAULT_DEPTH`] bound is slack; it
/// turns a protocol bug into backpressure instead of unbounded growth.
pub fn loopback(nodes: usize) -> (LoopbackBroker, Vec<LoopbackNode>) {
    let mut links = Vec::with_capacity(nodes);
    let mut endpoints = Vec::with_capacity(nodes);
    for _ in 0..nodes {
        let (link, endpoint) = loopback_pair();
        links.push(Some(link));
        endpoints.push(endpoint);
    }
    (LoopbackBroker { links }, endpoints)
}

/// One broker-side link plus its matching node endpoint.
fn loopback_pair() -> (
    (mpsc::SyncSender<ToNode>, mpsc::Receiver<ToBroker>),
    LoopbackNode,
) {
    let (to_node, from_broker) = mpsc::bounded(mpsc::DEFAULT_DEPTH);
    let (to_broker, from_node) = mpsc::bounded(mpsc::DEFAULT_DEPTH);
    (
        (to_node, from_node),
        LoopbackNode {
            tx: to_broker,
            rx: from_broker,
        },
    )
}

impl NodeTransport for LoopbackNode {
    fn send(&mut self, msg: ToBroker) -> Result<(), TransportError> {
        self.tx.send(msg).map_err(|_| TransportError::Disconnected)
    }

    fn recv(&mut self, timeout: Duration) -> Result<ToNode, TransportError> {
        match self.rx.recv_timeout(timeout) {
            Ok(msg) => Ok(msg),
            Err(mpsc::RecvTimeoutError::Timeout) => Err(TransportError::Timeout),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(TransportError::Disconnected),
        }
    }
}

impl BrokerTransport for LoopbackBroker {
    fn node_count(&self) -> usize {
        self.links.len()
    }

    fn send(&mut self, node: u8, msg: ToNode) -> Result<(), TransportError> {
        let (tx, _) = self
            .links
            .get(node as usize)
            .and_then(|l| l.as_ref())
            .ok_or(TransportError::Disconnected)?;
        tx.send(msg).map_err(|_| TransportError::Disconnected)
    }

    fn recv_from(&mut self, node: u8, timeout: Duration) -> Result<ToBroker, TransportError> {
        let (_, rx) = self
            .links
            .get(node as usize)
            .and_then(|l| l.as_ref())
            .ok_or(TransportError::Disconnected)?;
        match rx.recv_timeout(timeout) {
            Ok(msg) => Ok(msg),
            Err(mpsc::RecvTimeoutError::Timeout) => Err(TransportError::Timeout),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(TransportError::Disconnected),
        }
    }

    fn unlink(&mut self, node: u8) {
        if let Some(slot) = self.links.get_mut(node as usize) {
            *slot = None;
        }
    }

    fn relink(&mut self, node: u8) -> Result<Relink, TransportError> {
        let slot = self
            .links
            .get_mut(node as usize)
            .ok_or(TransportError::Disconnected)?;
        let (link, endpoint) = loopback_pair();
        *slot = Some(link);
        Ok(Relink::Link(Box::new(endpoint)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_round_trips_messages() {
        let (mut broker, mut nodes) = loopback(2);
        nodes[1]
            .send(ToBroker::Hello {
                node: 1,
                incarnation: 0,
            })
            .unwrap();
        assert_eq!(
            broker.recv_from(1, Duration::from_secs(1)).unwrap(),
            ToBroker::Hello {
                node: 1,
                incarnation: 0
            }
        );
        broker
            .send(
                1,
                ToNode::Welcome {
                    now_ns: 7,
                    incarnation: 0,
                },
            )
            .unwrap();
        assert_eq!(
            nodes[1].recv(Duration::from_secs(1)).unwrap(),
            ToNode::Welcome {
                now_ns: 7,
                incarnation: 0
            }
        );
        // The other node's mailbox is independent.
        assert_eq!(
            broker.recv_from(0, Duration::from_millis(10)),
            Err(TransportError::Timeout)
        );
    }

    /// `unlink` severs the pair (the node side sees a disconnect) and
    /// `relink` mints a fresh endpoint that works, discarding anything
    /// the dead incarnation had queued.
    #[test]
    fn unlink_then_relink_replaces_the_pair() {
        let (mut broker, mut nodes) = loopback(1);
        nodes[0].send(ToBroker::Idle).unwrap(); // stale message
        broker.unlink(0);
        assert_eq!(
            nodes[0].recv(Duration::from_millis(10)),
            Err(TransportError::Disconnected)
        );
        assert_eq!(
            broker.recv_from(0, Duration::from_millis(10)),
            Err(TransportError::Disconnected)
        );
        let Ok(Relink::Link(mut fresh)) = broker.relink(0) else {
            panic!("loopback relink must mint a link");
        };
        fresh.send(ToBroker::Done { node: 0 }).unwrap();
        // The stale pre-unlink message is gone; the fresh one arrives.
        assert_eq!(
            broker.recv_from(0, Duration::from_secs(1)).unwrap(),
            ToBroker::Done { node: 0 }
        );
        broker.send(0, ToNode::Shutdown).unwrap();
        assert_eq!(
            fresh.recv(Duration::from_secs(1)).unwrap(),
            ToNode::Shutdown
        );
    }

    #[test]
    fn dropped_peer_reports_disconnected() {
        let (mut broker, nodes) = loopback(1);
        drop(nodes);
        assert_eq!(
            broker.recv_from(0, Duration::from_millis(10)),
            Err(TransportError::Disconnected)
        );
        assert_eq!(
            broker.send(0, ToNode::Shutdown),
            Err(TransportError::Disconnected)
        );
    }
}
