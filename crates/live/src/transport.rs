//! Transport abstraction between nodes and the bus broker.
//!
//! The broker and the nodes only ever talk through these two traits, so
//! the same runtime runs over an in-process loopback (deterministic,
//! used by the tests and benchmarks) or over real sockets
//! ([`crate::udp`]). The protocol is strictly request/response-shaped
//! from the broker's point of view — the broker always knows which node
//! it is waiting on — so the broker-side trait only needs a *targeted*
//! receive, never a select over all nodes.

use crate::sync::mpsc;
use crate::wire::{ToBroker, ToNode, WireError};
use std::time::Duration;

/// A transport operation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// No message arrived within the allowed wait.
    Timeout,
    /// The peer is gone (channel closed, socket shut down).
    Disconnected,
    /// A datagram arrived but did not decode as a protocol message.
    Malformed(WireError),
    /// An I/O error from the underlying socket.
    Io(String),
}

impl core::fmt::Display for TransportError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TransportError::Timeout => write!(f, "transport timeout"),
            TransportError::Disconnected => write!(f, "peer disconnected"),
            TransportError::Malformed(e) => write!(f, "malformed datagram: {e}"),
            TransportError::Io(e) => write!(f, "transport i/o error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<WireError> for TransportError {
    fn from(e: WireError) -> Self {
        TransportError::Malformed(e)
    }
}

/// A node's endpoint of the transport.
pub trait NodeTransport: Send {
    /// Send a message to the broker.
    fn send(&mut self, msg: ToBroker) -> Result<(), TransportError>;
    /// Wait up to `timeout` for the next message from the broker.
    fn recv(&mut self, timeout: Duration) -> Result<ToNode, TransportError>;
}

/// The broker's endpoint of the transport, addressing nodes by index.
pub trait BrokerTransport: Send {
    /// Number of node endpoints this transport serves.
    fn node_count(&self) -> usize;
    /// Block until every node endpoint is reachable (e.g. the UDP
    /// transport has learned all source addresses from `Hello`
    /// datagrams). Transports that are connected by construction — the
    /// loopback — return immediately.
    fn rendezvous(&mut self, _timeout: Duration) -> Result<(), TransportError> {
        Ok(())
    }
    /// Send a message to node `node`.
    fn send(&mut self, node: u8, msg: ToNode) -> Result<(), TransportError>;
    /// Wait up to `timeout` for the next message *from node `node`*.
    fn recv_from(&mut self, node: u8, timeout: Duration) -> Result<ToBroker, TransportError>;
}

/// Node endpoint of the in-process loopback transport.
pub struct LoopbackNode {
    tx: mpsc::SyncSender<ToBroker>,
    rx: mpsc::Receiver<ToNode>,
}

/// Broker endpoint of the in-process loopback transport.
pub struct LoopbackBroker {
    links: Vec<(mpsc::SyncSender<ToNode>, mpsc::Receiver<ToBroker>)>,
}

/// Build a loopback transport for `nodes` node endpoints.
///
/// Messages pass through bounded in-process channels as values — no
/// encoding, no loss, FIFO per direction — which makes loopback runs
/// bit-for-bit deterministic under [`crate::clock::Pace::Virtual`].
/// The lock-step turn protocol keeps at most a handful of messages in
/// flight per link, so the [`mpsc::DEFAULT_DEPTH`] bound is slack; it
/// turns a protocol bug into backpressure instead of unbounded growth.
pub fn loopback(nodes: usize) -> (LoopbackBroker, Vec<LoopbackNode>) {
    let mut links = Vec::with_capacity(nodes);
    let mut endpoints = Vec::with_capacity(nodes);
    for _ in 0..nodes {
        let (to_node, from_broker) = mpsc::bounded(mpsc::DEFAULT_DEPTH);
        let (to_broker, from_node) = mpsc::bounded(mpsc::DEFAULT_DEPTH);
        links.push((to_node, from_node));
        endpoints.push(LoopbackNode {
            tx: to_broker,
            rx: from_broker,
        });
    }
    (LoopbackBroker { links }, endpoints)
}

impl NodeTransport for LoopbackNode {
    fn send(&mut self, msg: ToBroker) -> Result<(), TransportError> {
        self.tx.send(msg).map_err(|_| TransportError::Disconnected)
    }

    fn recv(&mut self, timeout: Duration) -> Result<ToNode, TransportError> {
        match self.rx.recv_timeout(timeout) {
            Ok(msg) => Ok(msg),
            Err(mpsc::RecvTimeoutError::Timeout) => Err(TransportError::Timeout),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(TransportError::Disconnected),
        }
    }
}

impl BrokerTransport for LoopbackBroker {
    fn node_count(&self) -> usize {
        self.links.len()
    }

    fn send(&mut self, node: u8, msg: ToNode) -> Result<(), TransportError> {
        let (tx, _) = self
            .links
            .get(node as usize)
            .ok_or(TransportError::Disconnected)?;
        tx.send(msg).map_err(|_| TransportError::Disconnected)
    }

    fn recv_from(&mut self, node: u8, timeout: Duration) -> Result<ToBroker, TransportError> {
        let (_, rx) = self
            .links
            .get(node as usize)
            .ok_or(TransportError::Disconnected)?;
        match rx.recv_timeout(timeout) {
            Ok(msg) => Ok(msg),
            Err(mpsc::RecvTimeoutError::Timeout) => Err(TransportError::Timeout),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(TransportError::Disconnected),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_round_trips_messages() {
        let (mut broker, mut nodes) = loopback(2);
        nodes[1].send(ToBroker::Hello { node: 1 }).unwrap();
        assert_eq!(
            broker.recv_from(1, Duration::from_secs(1)).unwrap(),
            ToBroker::Hello { node: 1 }
        );
        broker.send(1, ToNode::Welcome { now_ns: 7 }).unwrap();
        assert_eq!(
            nodes[1].recv(Duration::from_secs(1)).unwrap(),
            ToNode::Welcome { now_ns: 7 }
        );
        // The other node's mailbox is independent.
        assert_eq!(
            broker.recv_from(0, Duration::from_millis(10)),
            Err(TransportError::Timeout)
        );
    }

    #[test]
    fn dropped_peer_reports_disconnected() {
        let (mut broker, nodes) = loopback(1);
        drop(nodes);
        assert_eq!(
            broker.recv_from(0, Duration::from_millis(10)),
            Err(TransportError::Disconnected)
        );
        assert_eq!(
            broker.send(0, ToNode::Shutdown),
            Err(TransportError::Disconnected)
        );
    }
}
