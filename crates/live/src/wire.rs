//! The broker ⇄ node message protocol and its versioned wire codec.
//!
//! Both transports speak the same messages; the loopback transport
//! passes them through channels as values, the UDP transport encodes
//! each message as one datagram using this codec. CAN frames embedded
//! in messages reuse the frame codec from `rtec_can::codec` (version
//! byte, big-endian 29-bit identifier, DLC, payload), so the live wire
//! format and any future tooling that captures raw frames agree on the
//! frame encoding.
//!
//! Layout of every datagram:
//!
//! ```text
//! bytes 0..2   magic "RL"
//! byte  2      protocol version (currently 1)
//! byte  3      message kind
//! bytes 4..    kind-specific body; embedded frames sit at the tail so
//!              the frame codec's exact-length check still applies
//! ```
//!
//! Decoding never panics; malformed buffers map to [`WireError`].

use rtec_can::codec::{self, CodecError};
use rtec_can::Frame;

/// Magic prefix of every live-protocol datagram.
pub const MAGIC: [u8; 2] = *b"RL";
/// Current protocol version (byte 2 of every datagram).
pub const WIRE_VERSION: u8 = 1;

/// Messages a node sends to the broker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ToBroker {
    /// Transport handshake: announce this node to the broker.
    Hello {
        /// The sender's node id.
        node: u8,
        /// Restart generation of this node (0 for the first launch).
        /// Lets the broker tell a rejoin handshake from a replayed or
        /// straggling duplicate of an earlier one.
        incarnation: u32,
    },
    /// Queue a frame for transmission.
    Submit {
        /// Node-local request handle (scoped per node).
        handle: u32,
        /// Opaque middleware tag echoed back on completion.
        tag: u64,
        /// The frame to transmit.
        frame: Frame,
    },
    /// Request cancellation of a pending transmission.
    Abort {
        /// Handle from the original submit.
        handle: u32,
    },
    /// Rewrite a pending frame's identifier (SRT promotion).
    UpdateId {
        /// Handle from the original submit.
        handle: u32,
        /// New raw 29-bit identifier.
        raw_id: u32,
    },
    /// Arm a one-shot timer at absolute bus time `at_ns`.
    TimerReq {
        /// Absolute bus time of the timer.
        at_ns: u64,
        /// Opaque token echoed back when it fires.
        token: u64,
    },
    /// Liveness reply to a broker [`ToNode::Ping`].
    Pong {
        /// The sender's node id.
        node: u8,
        /// The node's current incarnation.
        incarnation: u32,
        /// Nonce echoed from the ping.
        nonce: u64,
    },
    /// The node finished reacting to the broker's last message.
    Idle,
    /// The node processed `Shutdown` and is about to exit.
    Done {
        /// The sender's node id.
        node: u8,
    },
}

/// Messages the broker sends to a node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ToNode {
    /// Handshake reply: the run starts at the given bus time.
    Welcome {
        /// Current bus time.
        now_ns: u64,
        /// Incarnation this welcome addresses; a node ignores welcomes
        /// for any incarnation other than its own (stale replays).
        incarnation: u32,
    },
    /// A frame completed on the wire and this node receives it.
    Deliver {
        /// Wire-completion bus time of the frame.
        completed_ns: u64,
        /// The received frame.
        frame: Frame,
    },
    /// A transmission submitted by this node completed.
    TxDone {
        /// Handle from the submit.
        handle: u32,
        /// Tag from the submit.
        tag: u64,
        /// Whether all addressed receivers took the frame (the
        /// broadcast-with-ack bit HRT redundancy skipping needs).
        all_received: bool,
        /// Wire-completion bus time.
        completed_ns: u64,
    },
    /// Reply to an `Abort` request.
    AbortResult {
        /// Handle from the abort request.
        handle: u32,
        /// Tag of the affected submit.
        tag: u64,
        /// `true` if the frame was removed before reaching the wire;
        /// `false` means it is (or was) on the wire and will complete.
        aborted: bool,
    },
    /// Liveness probe for a node the broker has not heard from within
    /// the heartbeat interval; the node answers [`ToBroker::Pong`].
    Ping {
        /// Nonce to echo back (the probe's bus time).
        nonce: u64,
    },
    /// A timer armed with `TimerReq` fired.
    Timer {
        /// Token from the request.
        token: u64,
        /// Bus time of the firing.
        now_ns: u64,
    },
    /// End of run: finish up and reply with `Done`.
    Shutdown,
}

/// A datagram failed to decode as a live-protocol message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than the fixed header needs.
    Truncated(usize),
    /// First two bytes are not [`MAGIC`].
    BadMagic,
    /// Version byte is not [`WIRE_VERSION`].
    BadVersion(u8),
    /// Unknown message kind.
    BadKind(u8),
    /// Body length disagrees with the kind's layout.
    BadLength {
        /// Kind whose body was malformed.
        kind: u8,
        /// Bytes present after the header.
        got: usize,
    },
    /// An embedded CAN frame failed to decode.
    Frame(CodecError),
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::Truncated(n) => write!(f, "datagram truncated: {n} bytes"),
            WireError::BadMagic => write!(f, "bad magic (not a live-protocol datagram)"),
            WireError::BadVersion(v) => {
                write!(f, "unknown protocol version {v} (expected {WIRE_VERSION})")
            }
            WireError::BadKind(k) => write!(f, "unknown message kind {k}"),
            WireError::BadLength { kind, got } => {
                write!(f, "kind {kind}: body of {got} bytes has the wrong length")
            }
            WireError::Frame(e) => write!(f, "embedded frame: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<CodecError> for WireError {
    fn from(e: CodecError) -> Self {
        WireError::Frame(e)
    }
}

// Message kind bytes. ToBroker and ToNode share one numbering space so
// a misrouted datagram fails loudly instead of aliasing.
const K_HELLO: u8 = 1;
const K_SUBMIT: u8 = 2;
const K_ABORT: u8 = 3;
const K_UPDATE_ID: u8 = 4;
const K_TIMER_REQ: u8 = 5;
const K_IDLE: u8 = 6;
const K_DONE: u8 = 7;
const K_PONG: u8 = 8;
const K_WELCOME: u8 = 16;
const K_DELIVER: u8 = 17;
const K_TX_DONE: u8 = 18;
const K_ABORT_RESULT: u8 = 19;
const K_TIMER: u8 = 20;
const K_SHUTDOWN: u8 = 21;
const K_PING: u8 = 22;

fn header(kind: u8, out: &mut Vec<u8>) {
    out.extend_from_slice(&MAGIC);
    out.push(WIRE_VERSION);
    out.push(kind);
}

/// Encode a node → broker message as one datagram.
pub fn encode_to_broker(msg: &ToBroker) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    match msg {
        ToBroker::Hello { node, incarnation } => {
            header(K_HELLO, &mut out);
            out.push(*node);
            out.extend_from_slice(&incarnation.to_le_bytes());
        }
        ToBroker::Submit { handle, tag, frame } => {
            header(K_SUBMIT, &mut out);
            out.extend_from_slice(&handle.to_le_bytes());
            out.extend_from_slice(&tag.to_le_bytes());
            codec::encode_into(frame, &mut out);
        }
        ToBroker::Abort { handle } => {
            header(K_ABORT, &mut out);
            out.extend_from_slice(&handle.to_le_bytes());
        }
        ToBroker::UpdateId { handle, raw_id } => {
            header(K_UPDATE_ID, &mut out);
            out.extend_from_slice(&handle.to_le_bytes());
            out.extend_from_slice(&raw_id.to_le_bytes());
        }
        ToBroker::TimerReq { at_ns, token } => {
            header(K_TIMER_REQ, &mut out);
            out.extend_from_slice(&at_ns.to_le_bytes());
            out.extend_from_slice(&token.to_le_bytes());
        }
        ToBroker::Pong {
            node,
            incarnation,
            nonce,
        } => {
            header(K_PONG, &mut out);
            out.push(*node);
            out.extend_from_slice(&incarnation.to_le_bytes());
            out.extend_from_slice(&nonce.to_le_bytes());
        }
        ToBroker::Idle => header(K_IDLE, &mut out),
        ToBroker::Done { node } => {
            header(K_DONE, &mut out);
            out.push(*node);
        }
    }
    out
}

/// Encode a broker → node message as one datagram.
pub fn encode_to_node(msg: &ToNode) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    match msg {
        ToNode::Welcome {
            now_ns,
            incarnation,
        } => {
            header(K_WELCOME, &mut out);
            out.extend_from_slice(&now_ns.to_le_bytes());
            out.extend_from_slice(&incarnation.to_le_bytes());
        }
        ToNode::Deliver {
            completed_ns,
            frame,
        } => {
            header(K_DELIVER, &mut out);
            out.extend_from_slice(&completed_ns.to_le_bytes());
            codec::encode_into(frame, &mut out);
        }
        ToNode::TxDone {
            handle,
            tag,
            all_received,
            completed_ns,
        } => {
            header(K_TX_DONE, &mut out);
            out.extend_from_slice(&handle.to_le_bytes());
            out.extend_from_slice(&tag.to_le_bytes());
            out.push(u8::from(*all_received));
            out.extend_from_slice(&completed_ns.to_le_bytes());
        }
        ToNode::AbortResult {
            handle,
            tag,
            aborted,
        } => {
            header(K_ABORT_RESULT, &mut out);
            out.extend_from_slice(&handle.to_le_bytes());
            out.extend_from_slice(&tag.to_le_bytes());
            out.push(u8::from(*aborted));
        }
        ToNode::Timer { token, now_ns } => {
            header(K_TIMER, &mut out);
            out.extend_from_slice(&token.to_le_bytes());
            out.extend_from_slice(&now_ns.to_le_bytes());
        }
        ToNode::Ping { nonce } => {
            header(K_PING, &mut out);
            out.extend_from_slice(&nonce.to_le_bytes());
        }
        ToNode::Shutdown => header(K_SHUTDOWN, &mut out),
    }
    out
}

fn check_header(buf: &[u8]) -> Result<(u8, &[u8]), WireError> {
    if buf.len() < 4 {
        return Err(WireError::Truncated(buf.len()));
    }
    if buf[..2] != MAGIC {
        return Err(WireError::BadMagic);
    }
    if buf[2] != WIRE_VERSION {
        return Err(WireError::BadVersion(buf[2]));
    }
    Ok((buf[3], &buf[4..]))
}

fn le_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}
fn le_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

/// Decode a node → broker datagram. Never panics.
pub fn decode_to_broker(buf: &[u8]) -> Result<ToBroker, WireError> {
    let (kind, body) = check_header(buf)?;
    let bad = |got: usize| WireError::BadLength { kind, got };
    match kind {
        // Version-tolerant: the original format carried only the node
        // id; such a hello is incarnation 0 by definition.
        K_HELLO => match body {
            [node] => Ok(ToBroker::Hello {
                node: *node,
                incarnation: 0,
            }),
            [node, rest @ ..] if rest.len() == 4 => Ok(ToBroker::Hello {
                node: *node,
                incarnation: le_u32(rest),
            }),
            _ => Err(bad(body.len())),
        },
        K_SUBMIT => {
            if body.len() < 12 {
                return Err(bad(body.len()));
            }
            Ok(ToBroker::Submit {
                handle: le_u32(&body[0..4]),
                tag: le_u64(&body[4..12]),
                frame: codec::decode(&body[12..])?,
            })
        }
        K_ABORT => match body.len() {
            4 => Ok(ToBroker::Abort {
                handle: le_u32(body),
            }),
            n => Err(bad(n)),
        },
        K_UPDATE_ID => match body.len() {
            8 => Ok(ToBroker::UpdateId {
                handle: le_u32(&body[0..4]),
                raw_id: le_u32(&body[4..8]),
            }),
            n => Err(bad(n)),
        },
        K_TIMER_REQ => match body.len() {
            16 => Ok(ToBroker::TimerReq {
                at_ns: le_u64(&body[0..8]),
                token: le_u64(&body[8..16]),
            }),
            n => Err(bad(n)),
        },
        K_IDLE => match body.len() {
            0 => Ok(ToBroker::Idle),
            n => Err(bad(n)),
        },
        K_DONE => match body {
            [node] => Ok(ToBroker::Done { node: *node }),
            _ => Err(bad(body.len())),
        },
        K_PONG => match body.len() {
            13 => Ok(ToBroker::Pong {
                node: body[0],
                incarnation: le_u32(&body[1..5]),
                nonce: le_u64(&body[5..13]),
            }),
            n => Err(bad(n)),
        },
        k => Err(WireError::BadKind(k)),
    }
}

/// Decode a broker → node datagram. Never panics.
pub fn decode_to_node(buf: &[u8]) -> Result<ToNode, WireError> {
    let (kind, body) = check_header(buf)?;
    let bad = |got: usize| WireError::BadLength { kind, got };
    match kind {
        // Version-tolerant: an 8-byte body is the original format with
        // no incarnation field (incarnation 0).
        K_WELCOME => match body.len() {
            8 => Ok(ToNode::Welcome {
                now_ns: le_u64(body),
                incarnation: 0,
            }),
            12 => Ok(ToNode::Welcome {
                now_ns: le_u64(&body[0..8]),
                incarnation: le_u32(&body[8..12]),
            }),
            n => Err(bad(n)),
        },
        K_DELIVER => {
            if body.len() < 8 {
                return Err(bad(body.len()));
            }
            Ok(ToNode::Deliver {
                completed_ns: le_u64(&body[0..8]),
                frame: codec::decode(&body[8..])?,
            })
        }
        K_TX_DONE => match body.len() {
            21 => Ok(ToNode::TxDone {
                handle: le_u32(&body[0..4]),
                tag: le_u64(&body[4..12]),
                all_received: body[12] != 0,
                completed_ns: le_u64(&body[13..21]),
            }),
            n => Err(bad(n)),
        },
        K_ABORT_RESULT => match body.len() {
            13 => Ok(ToNode::AbortResult {
                handle: le_u32(&body[0..4]),
                tag: le_u64(&body[4..12]),
                aborted: body[12] != 0,
            }),
            n => Err(bad(n)),
        },
        K_TIMER => match body.len() {
            16 => Ok(ToNode::Timer {
                token: le_u64(&body[0..8]),
                now_ns: le_u64(&body[8..16]),
            }),
            n => Err(bad(n)),
        },
        K_SHUTDOWN => match body.len() {
            0 => Ok(ToNode::Shutdown),
            n => Err(bad(n)),
        },
        K_PING => match body.len() {
            8 => Ok(ToNode::Ping {
                nonce: le_u64(body),
            }),
            n => Err(bad(n)),
        },
        k => Err(WireError::BadKind(k)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtec_can::CanId;

    #[test]
    fn to_broker_round_trip() {
        let frame = Frame::new(CanId::new(0, 3, 77), &[1, 2, 3]);
        let msgs = [
            ToBroker::Hello {
                node: 5,
                incarnation: 3,
            },
            ToBroker::Pong {
                node: 5,
                incarnation: 3,
                nonce: 0x0123_4567_89AB_CDEF,
            },
            ToBroker::Submit {
                handle: 9,
                tag: 0xDEAD_BEEF_0042,
                frame,
            },
            ToBroker::Abort { handle: 3 },
            ToBroker::UpdateId {
                handle: 3,
                raw_id: 0x1FFF_FFFF,
            },
            ToBroker::TimerReq {
                at_ns: u64::MAX,
                token: 7,
            },
            ToBroker::Idle,
            ToBroker::Done { node: 0 },
        ];
        for msg in msgs {
            let bytes = encode_to_broker(&msg);
            assert_eq!(decode_to_broker(&bytes), Ok(msg));
        }
    }

    #[test]
    fn to_node_round_trip() {
        let frame = Frame::new(CanId::new(255, 127, 0x3FFF), &[0; 8]);
        let msgs = [
            ToNode::Welcome {
                now_ns: 0,
                incarnation: 2,
            },
            ToNode::Ping { nonce: 99 },
            ToNode::Deliver {
                completed_ns: 123,
                frame,
            },
            ToNode::TxDone {
                handle: 1,
                tag: 2,
                all_received: true,
                completed_ns: 3,
            },
            ToNode::AbortResult {
                handle: 1,
                tag: 2,
                aborted: false,
            },
            ToNode::Timer {
                token: 0xFFFF_FFFF_FFFF_FFFF,
                now_ns: 1,
            },
            ToNode::Shutdown,
        ];
        for msg in msgs {
            let bytes = encode_to_node(&msg);
            assert_eq!(decode_to_node(&bytes), Ok(msg));
        }
    }

    #[test]
    fn direction_mixups_are_rejected() {
        let b = encode_to_broker(&ToBroker::Idle);
        assert_eq!(decode_to_node(&b), Err(WireError::BadKind(K_IDLE)));
        let n = encode_to_node(&ToNode::Shutdown);
        assert_eq!(decode_to_broker(&n), Err(WireError::BadKind(K_SHUTDOWN)));
    }

    #[test]
    fn malformed_headers_are_rejected() {
        assert_eq!(decode_to_broker(&[]), Err(WireError::Truncated(0)));
        assert_eq!(decode_to_broker(b"XY\x01\x06"), Err(WireError::BadMagic));
        assert_eq!(
            decode_to_broker(b"RL\x09\x06"),
            Err(WireError::BadVersion(9))
        );
        assert_eq!(
            decode_to_broker(b"RL\x01\xFF"),
            Err(WireError::BadKind(255))
        );
        assert!(matches!(
            decode_to_broker(b"RL\x01\x06\x00"),
            Err(WireError::BadLength { .. })
        ));
    }

    /// Datagrams in the pre-incarnation format (1-byte Hello body,
    /// 8-byte Welcome body) still decode, as incarnation 0.
    #[test]
    fn legacy_handshake_bodies_still_parse() {
        let mut hello = Vec::new();
        header(K_HELLO, &mut hello);
        hello.push(7);
        assert_eq!(
            decode_to_broker(&hello),
            Ok(ToBroker::Hello {
                node: 7,
                incarnation: 0
            })
        );
        let mut welcome = Vec::new();
        header(K_WELCOME, &mut welcome);
        welcome.extend_from_slice(&42u64.to_le_bytes());
        assert_eq!(
            decode_to_node(&welcome),
            Ok(ToNode::Welcome {
                now_ns: 42,
                incarnation: 0
            })
        );
    }

    /// The new kinds reject every malformed body length.
    #[test]
    fn heartbeat_bodies_are_length_checked() {
        for len in [0usize, 7, 9, 16] {
            let mut ping = Vec::new();
            header(K_PING, &mut ping);
            ping.resize(4 + len, 0);
            assert!(matches!(
                decode_to_node(&ping),
                Err(WireError::BadLength { kind: K_PING, .. })
            ));
        }
        for len in [0usize, 1, 12, 14] {
            let mut pong = Vec::new();
            header(K_PONG, &mut pong);
            pong.resize(4 + len, 0);
            assert!(matches!(
                decode_to_broker(&pong),
                Err(WireError::BadLength { kind: K_PONG, .. })
            ));
        }
    }
}
