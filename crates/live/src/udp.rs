//! UDP transport: one datagram socket per node plus one for the broker.
//!
//! Every protocol message is exactly one datagram in the
//! [`crate::wire`] encoding. Nodes rendezvous with the broker by
//! sending `Hello` with exponential backoff until `Welcome` comes back;
//! the broker learns each node's address from the source of its first
//! `Hello`. The broker keeps the last `Welcome` it sent per node and
//! replays it on a duplicate `Hello`, so a lost `Welcome` only costs
//! one backoff round instead of deadlocking the handshake.
//!
//! The steady-state protocol is strictly lock-step (the broker talks to
//! one node at a time and every broker message is answered), so a
//! single broker socket suffices: datagrams from nodes other than the
//! one currently being drained can only be stragglers from the
//! handshake, and the demultiplexer parks per-node messages in queues.
//! This transport is built for localhost clusters — steady-state
//! datagram loss is surfaced as a [`TransportError::Timeout`] rather
//! than recovered, which keeps the broker deterministic.

use crate::transport::{BrokerTransport, NodeTransport, TransportError};
use crate::wire::{self, ToBroker, ToNode};
use std::collections::VecDeque;
use std::net::{SocketAddr, UdpSocket};
use std::time::{Duration, Instant};

const MAX_DATAGRAM: usize = 2048;

/// Initial backoff between `Hello` retransmissions.
const HELLO_BACKOFF_FIRST: Duration = Duration::from_millis(20);
/// Number of `Hello` attempts before giving up (backoff doubles each
/// time: 20 ms, 40 ms, … ≈ 2.5 s in total).
const HELLO_ATTEMPTS: u32 = 7;

fn io_err(e: std::io::Error) -> TransportError {
    TransportError::Io(e.to_string())
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Node endpoint of the UDP transport.
pub struct UdpNode {
    sock: UdpSocket,
    node: u8,
    /// The `Welcome` consumed during the rendezvous, replayed to the
    /// node runtime on its first `recv`.
    pending: Option<ToNode>,
}

impl UdpNode {
    /// Bind an ephemeral localhost socket and rendezvous with the
    /// broker at `broker`: send `Hello{node}` with exponential backoff
    /// until `Welcome` arrives. The `Welcome` is buffered and returned
    /// by the first [`NodeTransport::recv`] call.
    pub fn connect(broker: SocketAddr, node: u8) -> Result<Self, TransportError> {
        let sock = UdpSocket::bind(("127.0.0.1", 0)).map_err(io_err)?;
        sock.connect(broker).map_err(io_err)?;
        let hello = wire::encode_to_broker(&ToBroker::Hello { node });
        let mut backoff = HELLO_BACKOFF_FIRST;
        let mut buf = [0u8; MAX_DATAGRAM];
        for _ in 0..HELLO_ATTEMPTS {
            sock.send(&hello).map_err(io_err)?;
            sock.set_read_timeout(Some(backoff)).map_err(io_err)?;
            match sock.recv(&mut buf) {
                Ok(n) => {
                    let msg = wire::decode_to_node(&buf[..n])?;
                    if matches!(msg, ToNode::Welcome { .. }) {
                        return Ok(UdpNode {
                            sock,
                            node,
                            pending: Some(msg),
                        });
                    }
                    // Anything else before Welcome is a protocol error.
                    return Err(TransportError::Malformed(wire::WireError::BadKind(0)));
                }
                Err(e) if is_timeout(&e) => backoff *= 2,
                Err(e) => return Err(io_err(e)),
            }
        }
        Err(TransportError::Timeout)
    }

    /// The node id this endpoint rendezvoused as.
    pub fn node(&self) -> u8 {
        self.node
    }
}

impl NodeTransport for UdpNode {
    fn send(&mut self, msg: ToBroker) -> Result<(), TransportError> {
        self.sock
            .send(&wire::encode_to_broker(&msg))
            .map_err(io_err)
            .map(|_| ())
    }

    fn recv(&mut self, timeout: Duration) -> Result<ToNode, TransportError> {
        if let Some(msg) = self.pending.take() {
            return Ok(msg);
        }
        let deadline = Instant::now() + timeout;
        let mut buf = [0u8; MAX_DATAGRAM];
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Err(TransportError::Timeout);
            }
            self.sock
                .set_read_timeout(Some((deadline - now).max(Duration::from_millis(1))))
                .map_err(io_err)?;
            match self.sock.recv(&mut buf) {
                // The broker replays `Welcome` when it sees a duplicate
                // `Hello`; the handshake already consumed the real one,
                // so any further `Welcome` is a replay artifact — drop
                // it rather than restart the runtime.
                Ok(n) => match wire::decode_to_node(&buf[..n])? {
                    ToNode::Welcome { .. } => continue,
                    msg => return Ok(msg),
                },
                Err(e) if is_timeout(&e) => return Err(TransportError::Timeout),
                Err(e) => return Err(io_err(e)),
            }
        }
    }
}

/// Broker endpoint of the UDP transport.
pub struct UdpBroker {
    sock: UdpSocket,
    /// Source address of each node, learned from its first `Hello`.
    addrs: Vec<Option<SocketAddr>>,
    /// Per-node messages received while waiting on a different node.
    queues: Vec<VecDeque<ToBroker>>,
    /// Last `Welcome` sent to each node, replayed on duplicate `Hello`.
    welcomes: Vec<Option<Vec<u8>>>,
}

impl UdpBroker {
    /// Bind the broker's localhost socket, serving `nodes` endpoints.
    pub fn bind(nodes: usize) -> Result<Self, TransportError> {
        let sock = UdpSocket::bind(("127.0.0.1", 0)).map_err(io_err)?;
        Ok(UdpBroker {
            sock,
            addrs: vec![None; nodes],
            queues: (0..nodes).map(|_| VecDeque::new()).collect(),
            welcomes: vec![None; nodes],
        })
    }

    /// The address nodes should [`UdpNode::connect`] to.
    pub fn local_addr(&self) -> Result<SocketAddr, TransportError> {
        self.sock.local_addr().map_err(io_err)
    }

    /// Receive one datagram and park it in the sender's queue.
    fn pump(&mut self, timeout: Duration) -> Result<(), TransportError> {
        self.sock
            .set_read_timeout(Some(timeout.max(Duration::from_millis(1))))
            .map_err(io_err)?;
        let mut buf = [0u8; MAX_DATAGRAM];
        let (n, from) = match self.sock.recv_from(&mut buf) {
            Ok(ok) => ok,
            Err(e) if is_timeout(&e) => return Err(TransportError::Timeout),
            Err(e) => return Err(io_err(e)),
        };
        let msg = wire::decode_to_broker(&buf[..n])?;
        if let ToBroker::Hello { node } = msg {
            let idx = node as usize;
            if idx >= self.addrs.len() {
                return Ok(()); // unknown node id: drop
            }
            match self.addrs[idx] {
                // Hellos are consumed by the transport (the runtime
                // protocol starts at Welcome), so they are not queued.
                None => self.addrs[idx] = Some(from),
                Some(_) => {
                    // Duplicate Hello: our Welcome was lost — replay it.
                    if let Some(w) = &self.welcomes[idx] {
                        self.sock.send_to(w, from).map_err(io_err)?;
                    }
                }
            }
            return Ok(());
        }
        // Steady-state messages are identified by source address.
        if let Some(idx) = self.addrs.iter().position(|a| *a == Some(from)) {
            self.queues[idx].push_back(msg);
        }
        Ok(())
    }
}

impl BrokerTransport for UdpBroker {
    fn node_count(&self) -> usize {
        self.addrs.len()
    }

    fn rendezvous(&mut self, timeout: Duration) -> Result<(), TransportError> {
        let deadline = Instant::now() + timeout;
        while self.addrs.iter().any(Option::is_none) {
            let now = Instant::now();
            if now >= deadline {
                return Err(TransportError::Timeout);
            }
            match self.pump(deadline - now) {
                Ok(()) | Err(TransportError::Timeout) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    fn send(&mut self, node: u8, msg: ToNode) -> Result<(), TransportError> {
        let idx = node as usize;
        let addr = self
            .addrs
            .get(idx)
            .copied()
            .flatten()
            .ok_or(TransportError::Disconnected)?;
        let bytes = wire::encode_to_node(&msg);
        if matches!(msg, ToNode::Welcome { .. }) {
            self.welcomes[idx] = Some(bytes.clone());
        }
        self.sock.send_to(&bytes, addr).map_err(io_err).map(|_| ())
    }

    fn recv_from(&mut self, node: u8, timeout: Duration) -> Result<ToBroker, TransportError> {
        let idx = node as usize;
        if idx >= self.queues.len() {
            return Err(TransportError::Disconnected);
        }
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(msg) = self.queues[idx].pop_front() {
                return Ok(msg);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(TransportError::Timeout);
            }
            self.pump(deadline - now)?;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn rendezvous_and_round_trip() {
        let mut broker = UdpBroker::bind(2).unwrap();
        let addr = broker.local_addr().unwrap();
        let handles: Vec<_> = (0..2u8)
            .map(|n| thread::spawn(move || UdpNode::connect(addr, n).unwrap()))
            .collect();
        // Learn both addresses (order of Hello arrival is arbitrary).
        broker.rendezvous(Duration::from_secs(5)).unwrap();
        for n in 0..2u8 {
            broker
                .send(
                    n,
                    ToNode::Welcome {
                        now_ns: u64::from(n),
                    },
                )
                .unwrap();
        }
        let mut nodes: Vec<UdpNode> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for (i, node) in nodes.iter_mut().enumerate() {
            assert_eq!(
                node.recv(Duration::from_secs(5)).unwrap(),
                ToNode::Welcome { now_ns: i as u64 }
            );
        }
        // Steady state: node 1 submits, broker sees it addressed correctly.
        nodes[1].send(ToBroker::Idle).unwrap();
        assert_eq!(
            broker.recv_from(1, Duration::from_secs(5)).unwrap(),
            ToBroker::Idle
        );
    }

    #[test]
    fn connect_times_out_without_broker() {
        // A bound-but-silent socket: Hello goes nowhere useful.
        let silent = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
        let addr = silent.local_addr().unwrap();
        let start = Instant::now();
        let res = UdpNode::connect(addr, 0);
        assert_eq!(res.err(), Some(TransportError::Timeout));
        assert!(start.elapsed() >= HELLO_BACKOFF_FIRST);
    }
}
