//! UDP transport: one datagram socket per node plus one for the broker.
//!
//! Every protocol message is exactly one datagram in the
//! [`crate::wire`] encoding. Nodes rendezvous with the broker by
//! sending `Hello` with exponential backoff until `Welcome` comes back;
//! the broker learns each node's address from the source of its first
//! `Hello`. The broker keeps the last `Welcome` it sent per node and
//! replays it on a duplicate `Hello`, so a lost `Welcome` only costs
//! one backoff round instead of deadlocking the handshake.
//!
//! The steady-state protocol is strictly lock-step (the broker talks to
//! one node at a time and every broker message is answered), so a
//! single broker socket suffices: datagrams from nodes other than the
//! one currently being drained can only be stragglers from the
//! handshake, and the demultiplexer parks per-node messages in queues.
//! This transport is built for localhost clusters — steady-state
//! datagram loss is surfaced as a [`TransportError::Timeout`] rather
//! than recovered, which keeps the broker deterministic.

use crate::sync::thread;
use crate::transport::{BrokerTransport, NodeTransport, Relink, TransportError};
use crate::wire::{self, ToBroker, ToNode};
use rtec_sim::Rng;
use std::collections::VecDeque;
use std::net::{SocketAddr, UdpSocket};
use std::time::{Duration, Instant};

const MAX_DATAGRAM: usize = 2048;

/// Initial backoff between `Hello` retransmissions.
const HELLO_BACKOFF_FIRST: Duration = Duration::from_millis(20);
/// Number of `Hello` attempts before giving up (backoff doubles each
/// time: 20 ms, 40 ms, … ≈ 2.5 s in total).
const HELLO_ATTEMPTS: u32 = 7;

/// Datagram send attempts before a transient kernel error (buffer
/// exhaustion, interrupt) is surfaced as [`TransportError::Io`] — the
/// error-passive trigger of the broker's fault confinement.
const SEND_ATTEMPTS: u32 = 4;
/// Base backoff between send retries; doubles per attempt, plus up to
/// one base interval of seeded jitter so two peers retrying the same
/// congested instant do not stay in lock-step.
const SEND_BACKOFF_FIRST: Duration = Duration::from_micros(200);

fn io_err(e: std::io::Error) -> TransportError {
    TransportError::Io(e.to_string())
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Whether a send error is worth retrying: the datagram never left
/// (interrupted syscall, full socket buffer), so a short backoff can
/// succeed. Anything else (unreachable peer, closed socket) is final.
fn is_transient(e: &std::io::Error) -> bool {
    is_timeout(e) || matches!(e.kind(), std::io::ErrorKind::Interrupted)
}

/// Send one datagram with bounded retry: exponential backoff from
/// [`SEND_BACKOFF_FIRST`] with seeded jitter, [`SEND_ATTEMPTS`] tries.
fn send_with_retry(
    rng: &mut Rng,
    mut attempt: impl FnMut() -> std::io::Result<usize>,
) -> Result<(), TransportError> {
    let mut backoff = SEND_BACKOFF_FIRST;
    let mut last = None;
    for i in 0..SEND_ATTEMPTS {
        match attempt() {
            Ok(_) => return Ok(()),
            Err(e) if is_transient(&e) => {
                last = Some(e);
                if i + 1 < SEND_ATTEMPTS {
                    let jitter_ns = rng.gen_range_u64(backoff.as_nanos().max(1) as u64);
                    thread::sleep(backoff + Duration::from_nanos(jitter_ns));
                    backoff *= 2;
                }
            }
            Err(e) => return Err(io_err(e)),
        }
    }
    Err(io_err(last.expect("retries imply a transient error")))
}

/// Node endpoint of the UDP transport.
pub struct UdpNode {
    sock: UdpSocket,
    node: u8,
    /// The `Welcome` consumed during the rendezvous, replayed to the
    /// node runtime on its first `recv`.
    pending: Option<ToNode>,
    retry_rng: Rng,
}

impl UdpNode {
    /// Bind an ephemeral localhost socket and rendezvous with the
    /// broker at `broker`: send `Hello{node, incarnation}` with
    /// exponential backoff until `Welcome` arrives. The `Welcome` is
    /// buffered and returned by the first [`NodeTransport::recv`] call.
    /// A restarted incarnation (`incarnation > 0`) dials back in with
    /// the same handshake; the broker tells the rejoin apart from a
    /// stale replay by the incarnation counter.
    pub fn connect(broker: SocketAddr, node: u8, incarnation: u32) -> Result<Self, TransportError> {
        let sock = UdpSocket::bind(("127.0.0.1", 0)).map_err(io_err)?;
        sock.connect(broker).map_err(io_err)?;
        let hello = wire::encode_to_broker(&ToBroker::Hello { node, incarnation });
        let mut backoff = HELLO_BACKOFF_FIRST;
        let mut buf = [0u8; MAX_DATAGRAM];
        for _ in 0..HELLO_ATTEMPTS {
            sock.send(&hello).map_err(io_err)?;
            sock.set_read_timeout(Some(backoff)).map_err(io_err)?;
            match sock.recv(&mut buf) {
                Ok(n) => {
                    let msg = wire::decode_to_node(&buf[..n])?;
                    if matches!(msg, ToNode::Welcome { .. }) {
                        return Ok(UdpNode {
                            sock,
                            node,
                            pending: Some(msg),
                            retry_rng: Rng::seed_from_u64(
                                0x0DD_BA11 ^ (u64::from(node) << 32) ^ u64::from(incarnation),
                            ),
                        });
                    }
                    // Anything else before Welcome is a protocol error.
                    return Err(TransportError::Malformed(wire::WireError::BadKind(0)));
                }
                Err(e) if is_timeout(&e) => backoff *= 2,
                Err(e) => return Err(io_err(e)),
            }
        }
        Err(TransportError::Timeout)
    }

    /// The node id this endpoint rendezvoused as.
    pub fn node(&self) -> u8 {
        self.node
    }
}

impl NodeTransport for UdpNode {
    fn send(&mut self, msg: ToBroker) -> Result<(), TransportError> {
        let bytes = wire::encode_to_broker(&msg);
        let (sock, rng) = (&self.sock, &mut self.retry_rng);
        send_with_retry(rng, || sock.send(&bytes))
    }

    fn recv(&mut self, timeout: Duration) -> Result<ToNode, TransportError> {
        if let Some(msg) = self.pending.take() {
            return Ok(msg);
        }
        let deadline = Instant::now() + timeout;
        let mut buf = [0u8; MAX_DATAGRAM];
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Err(TransportError::Timeout);
            }
            self.sock
                .set_read_timeout(Some((deadline - now).max(Duration::from_millis(1))))
                .map_err(io_err)?;
            match self.sock.recv(&mut buf) {
                // The broker replays `Welcome` when it sees a duplicate
                // `Hello`; the handshake already consumed the real one,
                // so any further `Welcome` is a replay artifact — drop
                // it rather than restart the runtime.
                Ok(n) => match wire::decode_to_node(&buf[..n])? {
                    ToNode::Welcome { .. } => continue,
                    msg => return Ok(msg),
                },
                Err(e) if is_timeout(&e) => return Err(TransportError::Timeout),
                Err(e) => return Err(io_err(e)),
            }
        }
    }
}

/// Broker endpoint of the UDP transport.
pub struct UdpBroker {
    sock: UdpSocket,
    /// Source address of each node, learned from its first `Hello`.
    addrs: Vec<Option<SocketAddr>>,
    /// Per-node messages received while waiting on a different node.
    queues: Vec<VecDeque<ToBroker>>,
    /// Last `Welcome` sent to each node, replayed on duplicate `Hello`.
    welcomes: Vec<Option<Vec<u8>>>,
    retry_rng: Rng,
}

impl UdpBroker {
    /// Bind the broker's localhost socket, serving `nodes` endpoints.
    pub fn bind(nodes: usize) -> Result<Self, TransportError> {
        let sock = UdpSocket::bind(("127.0.0.1", 0)).map_err(io_err)?;
        Ok(UdpBroker {
            sock,
            addrs: vec![None; nodes],
            queues: (0..nodes).map(|_| VecDeque::new()).collect(),
            welcomes: vec![None; nodes],
            retry_rng: Rng::seed_from_u64(0xB0_B11C),
        })
    }

    /// The address nodes should [`UdpNode::connect`] to.
    pub fn local_addr(&self) -> Result<SocketAddr, TransportError> {
        self.sock.local_addr().map_err(io_err)
    }

    /// Receive one datagram and park it in the sender's queue.
    fn pump(&mut self, timeout: Duration) -> Result<(), TransportError> {
        self.sock
            .set_read_timeout(Some(timeout.max(Duration::from_millis(1))))
            .map_err(io_err)?;
        let mut buf = [0u8; MAX_DATAGRAM];
        let (n, from) = match self.sock.recv_from(&mut buf) {
            Ok(ok) => ok,
            Err(e) if is_timeout(&e) => return Err(TransportError::Timeout),
            Err(e) => return Err(io_err(e)),
        };
        let msg = wire::decode_to_broker(&buf[..n])?;
        if let ToBroker::Hello { node, .. } = msg {
            let idx = node as usize;
            if idx >= self.addrs.len() {
                return Ok(()); // unknown node id: drop
            }
            match self.addrs[idx] {
                // Hellos are consumed by the transport (the runtime
                // protocol starts at Welcome), so they are not queued.
                // An empty slot — initial rendezvous or a relink
                // awaiting its restarted incarnation — learns the
                // address.
                None => self.addrs[idx] = Some(from),
                Some(a) if a == from => {
                    // Duplicate Hello: our Welcome was lost — replay it.
                    if let Some(w) = &self.welcomes[idx] {
                        self.sock.send_to(w, from).map_err(io_err)?;
                    }
                }
                // A Hello from a *different* address while the slot is
                // taken is a stale replay from a dead incarnation's
                // socket; the broker's incarnation check handles the
                // protocol-level classification, the transport just
                // refuses to rebind the slot.
                Some(_) => {}
            }
            return Ok(());
        }
        // Steady-state messages are identified by source address.
        if let Some(idx) = self.addrs.iter().position(|a| *a == Some(from)) {
            self.queues[idx].push_back(msg);
        }
        Ok(())
    }
}

impl BrokerTransport for UdpBroker {
    fn node_count(&self) -> usize {
        self.addrs.len()
    }

    fn rendezvous(&mut self, timeout: Duration) -> Result<(), TransportError> {
        let deadline = Instant::now() + timeout;
        while self.addrs.iter().any(Option::is_none) {
            let now = Instant::now();
            if now >= deadline {
                return Err(TransportError::Timeout);
            }
            match self.pump(deadline - now) {
                Ok(()) | Err(TransportError::Timeout) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    fn send(&mut self, node: u8, msg: ToNode) -> Result<(), TransportError> {
        let idx = node as usize;
        let addr = self
            .addrs
            .get(idx)
            .copied()
            .flatten()
            .ok_or(TransportError::Disconnected)?;
        let bytes = wire::encode_to_node(&msg);
        if matches!(msg, ToNode::Welcome { .. }) {
            self.welcomes[idx] = Some(bytes.clone());
        }
        let (sock, rng) = (&self.sock, &mut self.retry_rng);
        send_with_retry(rng, || sock.send_to(&bytes, addr))
    }

    fn recv_from(&mut self, node: u8, timeout: Duration) -> Result<ToBroker, TransportError> {
        let idx = node as usize;
        if idx >= self.queues.len() {
            return Err(TransportError::Disconnected);
        }
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(msg) = self.queues[idx].pop_front() {
                return Ok(msg);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(TransportError::Timeout);
            }
            self.pump(deadline - now)?;
        }
    }

    fn unlink(&mut self, node: u8) {
        let idx = node as usize;
        if idx >= self.addrs.len() {
            return;
        }
        // Forget the dead incarnation entirely: its address (so stale
        // datagrams from that socket no longer demultiplex), its queued
        // messages, and its replayable Welcome.
        self.addrs[idx] = None;
        self.queues[idx].clear();
        self.welcomes[idx] = None;
    }

    fn relink(&mut self, node: u8) -> Result<Relink, TransportError> {
        if node as usize >= self.addrs.len() {
            return Err(TransportError::Disconnected);
        }
        self.unlink(node);
        // UDP cannot mint a node endpoint — the restarted node opens
        // its own socket and dials back in with `Hello`.
        Ok(Relink::Reconnect)
    }

    fn rendezvous_node(&mut self, node: u8, timeout: Duration) -> Result<(), TransportError> {
        let idx = node as usize;
        if idx >= self.addrs.len() {
            return Err(TransportError::Disconnected);
        }
        let deadline = Instant::now() + timeout;
        while self.addrs[idx].is_none() {
            let now = Instant::now();
            if now >= deadline {
                return Err(TransportError::Timeout);
            }
            match self.pump(deadline - now) {
                Ok(()) | Err(TransportError::Timeout) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn rendezvous_and_round_trip() {
        let mut broker = UdpBroker::bind(2).unwrap();
        let addr = broker.local_addr().unwrap();
        let handles: Vec<_> = (0..2u8)
            .map(|n| thread::spawn(move || UdpNode::connect(addr, n, 0).unwrap()))
            .collect();
        // Learn both addresses (order of Hello arrival is arbitrary).
        broker.rendezvous(Duration::from_secs(5)).unwrap();
        for n in 0..2u8 {
            broker
                .send(
                    n,
                    ToNode::Welcome {
                        now_ns: u64::from(n),
                        incarnation: 0,
                    },
                )
                .unwrap();
        }
        let mut nodes: Vec<UdpNode> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for (i, node) in nodes.iter_mut().enumerate() {
            assert_eq!(
                node.recv(Duration::from_secs(5)).unwrap(),
                ToNode::Welcome {
                    now_ns: i as u64,
                    incarnation: 0
                }
            );
        }
        // Steady state: node 1 submits, broker sees it addressed correctly.
        nodes[1].send(ToBroker::Idle).unwrap();
        assert_eq!(
            broker.recv_from(1, Duration::from_secs(5)).unwrap(),
            ToBroker::Idle
        );
    }

    #[test]
    fn connect_times_out_without_broker() {
        // A bound-but-silent socket: Hello goes nowhere useful.
        let silent = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
        let addr = silent.local_addr().unwrap();
        let start = Instant::now();
        let res = UdpNode::connect(addr, 0, 0);
        assert_eq!(res.err(), Some(TransportError::Timeout));
        assert!(start.elapsed() >= HELLO_BACKOFF_FIRST);
    }

    /// A crashed node's slot can be relinked: the broker forgets the
    /// old incarnation (address, queue, Welcome) and a fresh socket
    /// dials back in under a bumped incarnation while the dead
    /// incarnation's straggler datagrams are ignored.
    #[test]
    fn relink_rejoins_a_restarted_incarnation() {
        let mut broker = UdpBroker::bind(1).unwrap();
        let addr = broker.local_addr().unwrap();
        let h = thread::spawn(move || UdpNode::connect(addr, 0, 0).unwrap());
        broker.rendezvous(Duration::from_secs(5)).unwrap();
        broker
            .send(
                0,
                ToNode::Welcome {
                    now_ns: 1,
                    incarnation: 0,
                },
            )
            .unwrap();
        let mut old = h.join().unwrap();
        assert!(matches!(
            old.recv(Duration::from_secs(5)).unwrap(),
            ToNode::Welcome { incarnation: 0, .. }
        ));
        old.send(ToBroker::Idle).unwrap(); // will be discarded by relink

        // Crash: the broker quarantines the node, then restarts it.
        assert!(matches!(broker.relink(0), Ok(Relink::Reconnect)));
        assert_eq!(
            broker.send(0, ToNode::Shutdown),
            Err(TransportError::Disconnected),
            "an unlinked slot must not be reachable"
        );
        let h = thread::spawn(move || UdpNode::connect(addr, 0, 1).unwrap());
        broker.rendezvous_node(0, Duration::from_secs(5)).unwrap();
        broker
            .send(
                0,
                ToNode::Welcome {
                    now_ns: 2,
                    incarnation: 1,
                },
            )
            .unwrap();
        let mut fresh = h.join().unwrap();
        assert_eq!(
            fresh.recv(Duration::from_secs(5)).unwrap(),
            ToNode::Welcome {
                now_ns: 2,
                incarnation: 1
            }
        );
        // The old incarnation's pre-crash Idle was dropped with its
        // queue; the fresh incarnation's traffic flows normally.
        fresh
            .send(ToBroker::Hello {
                node: 0,
                incarnation: 1,
            })
            .unwrap();
        fresh.send(ToBroker::Done { node: 0 }).unwrap();
        assert_eq!(
            broker.recv_from(0, Duration::from_secs(5)).unwrap(),
            ToBroker::Done { node: 0 }
        );
    }
}
