//! The bus broker: one thread reproducing CAN semantics for a cluster
//! of node threads.
//!
//! The broker owns bus time. It keeps every node's submitted frames,
//! resolves bitwise-priority arbitration whenever the wire goes idle
//! (lowest raw 29-bit identifier wins, exactly like the simulator's
//! [`rtec_can::bus`]), paces the winning transmission with the
//! [`BitClock`], and broadcasts completions to every other node — the
//! sender learns `all_received`, which is what lets HRT publishers skip
//! redundant retransmissions (§3.2 of the paper).
//!
//! # Lock-step protocol
//!
//! After sending a message the broker reads that node's replies until
//! the node says `Idle`; replies that themselves require an answer
//! (`Abort` → `AbortResult`) bump the outstanding count. Nodes are
//! purely reactive, so this makes the whole cluster's interleaving —
//! as far as broker state is concerned — a deterministic function of
//! the event timeline, even over real sockets and under wall pacing.
//!
//! Within one bus instant the order is fixed: wire completions are
//! processed before timers, timers in arming order, and deliveries
//! fan out in increasing node order with the sender's `TxDone` last.
//!
//! Completion turns are **batched**: all of a frame's `Deliver`
//! messages plus the sender's `TxDone` are sent before any node's
//! replies are drained, so the nodes process the completion
//! concurrently instead of one serialized round-trip per receiver.
//! Draining still follows the fixed order above, so every broker-side
//! state change lands exactly as in the fully serial protocol; only
//! side effects on *shared* observers (the delivery log, the trace
//! ring) may interleave, which the cluster runner canonicalizes by a
//! deterministic sort (see `cluster.rs`).

use crate::clock::{BitClock, Pace};
use crate::transport::BrokerTransport;
use crate::wire::{ToBroker, ToNode};
use crate::LiveError;
use rtec_can::bits::{exact_frame_bits, BitTiming, ERROR_FRAME_BITS};
use rtec_can::fault::{FaultDecision, FaultInjector, FaultModel};
use rtec_can::{CanId, Frame, NodeId};
use rtec_sim::{Rng, SharedTraceSink, SourceId, Time};
use std::collections::BTreeMap;

/// How long the broker waits on a node reply before declaring the node
/// dead. Generous: node threads only block on their own transport.
const RECV_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(60);

/// Upper bound on the replies one node may produce within a single
/// turn of the lock-step protocol before the broker declares a
/// [`LiveError::ProtocolStall`]. A healthy turn is a handful of
/// messages (requests plus one `Idle`); a node that babbles past this
/// budget — or never returns to `Idle` because its thread wedged
/// mid-turn — would otherwise hang the whole bus behind `RECV_TIMEOUT`
/// retries forever.
pub const MAX_TURN_REPLIES: usize = 4096;

/// Fault injection for the live bus, mirroring the simulator's models.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// The fault model; `None` runs a fault-free bus.
    pub model: Option<FaultModel>,
    /// Seed for the injector's random stream.
    pub seed: u64,
}

impl FaultPlan {
    fn injector(&self) -> FaultInjector {
        match &self.model {
            Some(m) => FaultInjector::new(m.clone(), Rng::seed_from_u64(self.seed)),
            None => FaultInjector::none(),
        }
    }
}

/// Broker configuration.
#[derive(Clone, Debug)]
pub struct BrokerConfig {
    /// Bit timing the wire is paced with.
    pub timing: BitTiming,
    /// How bus time maps to wall time.
    pub pace: Pace,
    /// Fault injection plan.
    pub fault: FaultPlan,
}

/// Counters the broker reports after a run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BrokerStats {
    /// Arbitration rounds resolved.
    pub arbitrations: u64,
    /// Frames that completed with every receiver reached.
    pub frames_ok: u64,
    /// Frames that completed but were missed by some receiver.
    pub frames_with_omission: u64,
    /// Transmission attempts destroyed by error frames.
    pub frames_corrupted: u64,
}

/// A frame a node has submitted and is waiting to see on the wire.
struct PendingFrame {
    handle: u32,
    tag: u64,
    frame: Frame,
    attempts: u32,
}

/// The transmission currently occupying the wire.
struct Inflight {
    node: u8,
    handle: u32,
    tag: u64,
    frame: Frame,
    attempts: u32,
    completes: Time,
    decision: FaultDecision,
}

/// The central bus thread.
pub struct Broker<T: BrokerTransport> {
    transport: T,
    clock: BitClock,
    sink: SharedTraceSink,
    src_bus: SourceId,
    injector: FaultInjector,
    pending: Vec<Vec<PendingFrame>>,
    timers: BTreeMap<(u64, u64), (u8, u64)>,
    timer_seq: u64,
    inflight: Option<Inflight>,
    stats: BrokerStats,
}

impl<T: BrokerTransport> Broker<T> {
    /// Build a broker over `transport`, tracing into `sink` under the
    /// source name `"bus"` (same as the simulator).
    pub fn new(config: BrokerConfig, transport: T, sink: SharedTraceSink) -> Self {
        let nodes = transport.node_count();
        let src_bus = sink.intern("bus");
        Broker {
            transport,
            clock: BitClock::new(config.timing, config.pace),
            sink,
            src_bus,
            injector: config.fault.injector(),
            pending: (0..nodes).map(|_| Vec::new()).collect(),
            timers: BTreeMap::new(),
            timer_seq: 0,
            inflight: None,
            stats: BrokerStats::default(),
        }
    }

    /// Run the bus until bus time `until`, then shut every node down.
    pub fn run(mut self, until: Time) -> Result<BrokerStats, LiveError> {
        let nodes = self.transport.node_count();
        self.transport
            .rendezvous(RECV_TIMEOUT)
            .map_err(LiveError::Transport)?;
        let now_ns = self.clock.now().as_ns();
        for node in 0..nodes {
            self.send_and_drain(node as u8, ToNode::Welcome { now_ns })?;
        }
        loop {
            // Fire everything already due before arbitrating: frames
            // submitted by one timer handler must contend against
            // frames submitted by other handlers at the same instant.
            if let Some(at) = self.next_event_time() {
                if at <= self.clock.now() {
                    self.process_next_event()?;
                    continue;
                }
            }
            if self.inflight.is_none() && self.pending.iter().any(|p| !p.is_empty()) {
                self.arbitrate()?;
                continue;
            }
            match self.next_event_time() {
                Some(at) if at <= until => {
                    self.clock.advance_to(at);
                    self.process_next_event()?;
                }
                _ => break,
            }
        }
        self.clock.advance_to(until);
        for node in 0..nodes {
            self.transport
                .send(node as u8, ToNode::Shutdown)
                .map_err(LiveError::Transport)?;
            // Late requests arriving during shutdown are dropped —
            // bounded by the same turn budget as a live turn, so a
            // node that never acknowledges the shutdown surfaces as a
            // typed stall instead of wedging the broker.
            let mut replies = 0usize;
            while !matches!(
                self.transport
                    .recv_from(node as u8, RECV_TIMEOUT)
                    .map_err(LiveError::Transport)?,
                ToBroker::Done { .. }
            ) {
                replies += 1;
                if replies >= MAX_TURN_REPLIES {
                    return Err(LiveError::ProtocolStall {
                        node: node as u8,
                        replies,
                    });
                }
            }
        }
        Ok(self.stats)
    }

    /// The earliest upcoming event: the in-flight completion wins ties
    /// against timers.
    fn next_event_time(&self) -> Option<Time> {
        let completion = self.inflight.as_ref().map(|t| t.completes);
        let timer = self.timers.keys().next().map(|&(at, _)| Time::from_ns(at));
        match (completion, timer) {
            (Some(c), Some(t)) => Some(c.min(t)),
            (c, t) => c.or(t),
        }
    }

    fn process_next_event(&mut self) -> Result<(), LiveError> {
        let completion = self.inflight.as_ref().map(|t| t.completes);
        let timer = self.timers.keys().next().map(|&(at, _)| Time::from_ns(at));
        let take_completion = match (completion, timer) {
            (Some(c), Some(t)) => c <= t,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return Ok(()),
        };
        if take_completion {
            self.finish_transmission()
        } else {
            let (&key, &(node, token)) = self.timers.iter().next().expect("timer exists");
            self.timers.remove(&key);
            let now_ns = self.clock.now().as_ns();
            self.send_and_drain(node, ToNode::Timer { token, now_ns })
        }
    }

    /// Resolve arbitration among all pending frames at the current
    /// instant and start the winning transmission.
    fn arbitrate(&mut self) -> Result<(), LiveError> {
        let now = self.clock.now();
        // One candidate per node: its highest-priority pending frame.
        let mut candidates: Vec<(u32, u8)> = self
            .pending
            .iter()
            .enumerate()
            .filter_map(|(node, frames)| {
                frames
                    .iter()
                    .map(|p| p.frame.id.raw())
                    .min()
                    .map(|raw| (raw, node as u8))
            })
            .collect();
        debug_assert!(!candidates.is_empty());
        candidates.sort_unstable();
        let (winner_raw, winner_node) = candidates[0];
        self.stats.arbitrations += 1;
        if self.sink.is_enabled() {
            let mut fields: Vec<(&'static str, u64)> = candidates
                .iter()
                .map(|&(raw, node)| ("cand", (u64::from(node) << 32) | u64::from(raw)))
                .collect();
            fields.push(("win", u64::from(winner_raw)));
            self.sink.emit_fields(now, self.src_bus, "arb", &fields);
        }
        let frames = &mut self.pending[winner_node as usize];
        let idx = frames
            .iter()
            .position(|p| p.frame.id.raw() == winner_raw)
            .expect("winner frame pending");
        let mut won = frames.remove(idx);
        won.attempts += 1;

        let receivers: Vec<NodeId> = (0..self.pending.len() as u8)
            .filter(|&n| n != winner_node)
            .map(NodeId)
            .collect();
        let decision = self.injector.decide(now, &won.frame, &receivers);
        let full_bits = exact_frame_bits(&won.frame);
        let duration = match &decision {
            FaultDecision::Corrupt { fraction } => {
                let sent = ((f64::from(full_bits) * fraction).ceil() as u32).clamp(1, full_bits);
                self.clock.timing().duration_of(sent + ERROR_FRAME_BITS)
            }
            _ => self.clock.timing().duration_of(full_bits),
        };
        self.sink.emit_fields(
            now,
            self.src_bus,
            match decision {
                FaultDecision::Corrupt { .. } => "tx_start_corrupt",
                FaultDecision::Omit { .. } => "tx_start_omit",
                FaultDecision::Ok => "tx_start",
            },
            &[
                ("id", u64::from(winner_raw)),
                ("node", u64::from(winner_node)),
                ("attempt", u64::from(won.attempts)),
                ("tag", won.tag),
            ],
        );
        self.inflight = Some(Inflight {
            node: winner_node,
            handle: won.handle,
            tag: won.tag,
            frame: won.frame,
            attempts: won.attempts,
            completes: now + duration,
            decision,
        });
        Ok(())
    }

    fn finish_transmission(&mut self) -> Result<(), LiveError> {
        let tx = self.inflight.take().expect("completion without inflight");
        self.clock.advance_to(tx.completes);
        let now = self.clock.now();
        if let FaultDecision::Corrupt { .. } = tx.decision {
            // An error frame destroyed the attempt: nobody received it
            // and the controller re-enters arbitration automatically
            // (CAN's built-in retransmission — invisible to the node).
            self.stats.frames_corrupted += 1;
            self.sink.emit_fields(
                now,
                self.src_bus,
                "tx_error",
                &[
                    ("id", u64::from(tx.frame.id.raw())),
                    ("node", u64::from(tx.node)),
                    ("attempt", u64::from(tx.attempts)),
                    ("tag", tx.tag),
                ],
            );
            self.pending[tx.node as usize].push(PendingFrame {
                handle: tx.handle,
                tag: tx.tag,
                frame: tx.frame,
                attempts: tx.attempts,
            });
            return Ok(());
        }
        let victims: Vec<NodeId> = match &tx.decision {
            FaultDecision::Omit { victims } => victims.clone(),
            _ => Vec::new(),
        };
        let all_received = victims.is_empty();
        if all_received {
            self.stats.frames_ok += 1;
        } else {
            self.stats.frames_with_omission += 1;
        }
        self.sink.emit_fields(
            now,
            self.src_bus,
            "tx_end",
            &[
                ("id", u64::from(tx.frame.id.raw())),
                ("node", u64::from(tx.node)),
                ("attempt", u64::from(tx.attempts)),
                ("tag", tx.tag),
                ("all", u64::from(all_received)),
            ],
        );
        // Broadcast to every other node (minus omission victims), in
        // node order; the sender's TxDone goes last so its reaction
        // (e.g. an HRT retransmission) arbitrates after deliveries.
        //
        // The turn is batched: every message of this completion goes
        // out before any node's replies are drained, so all nodes
        // process their delivery concurrently instead of serializing
        // one lock-step round-trip per receiver (the 2→32-node
        // throughput cliff). Broker state stays deterministic because
        // the replies are still drained in the same fixed order —
        // receivers ascending, sender last — and each node's own
        // message stream is unchanged.
        let completed_ns = now.as_ns();
        let mut turn: Vec<u8> = Vec::new();
        for node in 0..self.pending.len() as u8 {
            if node == tx.node || victims.contains(&NodeId(node)) {
                continue;
            }
            self.transport
                .send(
                    node,
                    ToNode::Deliver {
                        completed_ns,
                        frame: tx.frame,
                    },
                )
                .map_err(LiveError::Transport)?;
            turn.push(node);
        }
        self.transport
            .send(
                tx.node,
                ToNode::TxDone {
                    handle: tx.handle,
                    tag: tx.tag,
                    all_received,
                    completed_ns,
                },
            )
            .map_err(LiveError::Transport)?;
        turn.push(tx.node);
        for node in turn {
            self.drain(node)?;
        }
        Ok(())
    }

    /// Send one message to `node` and pump its replies until it
    /// quiesces. Every message we send is answered by (requests...,
    /// `Idle`); requests that need a response (`Abort`) add one more
    /// expected `Idle`.
    fn send_and_drain(&mut self, node: u8, msg: ToNode) -> Result<(), LiveError> {
        self.transport
            .send(node, msg)
            .map_err(LiveError::Transport)?;
        self.drain(node)
    }

    /// Pump `node`'s replies for one previously sent message until it
    /// quiesces (see [`Broker::send_and_drain`]). Split out so a
    /// completion turn can broadcast all its messages before draining
    /// anyone.
    fn drain(&mut self, node: u8) -> Result<(), LiveError> {
        let mut outstanding = 1usize;
        let mut replies = 0usize;
        while outstanding > 0 {
            if replies >= MAX_TURN_REPLIES {
                return Err(LiveError::ProtocolStall { node, replies });
            }
            replies += 1;
            let reply = self
                .transport
                .recv_from(node, RECV_TIMEOUT)
                .map_err(LiveError::Transport)?;
            match reply {
                ToBroker::Idle => outstanding -= 1,
                ToBroker::Done { .. } => outstanding -= 1,
                ToBroker::Submit { handle, tag, frame } => {
                    self.pending[node as usize].push(PendingFrame {
                        handle,
                        tag,
                        frame,
                        attempts: 0,
                    });
                }
                ToBroker::TimerReq { at_ns, token } => {
                    self.timers.insert((at_ns, self.timer_seq), (node, token));
                    self.timer_seq += 1;
                }
                ToBroker::Abort { handle } => {
                    let (aborted, tag) = self.try_abort(node, handle);
                    self.transport
                        .send(
                            node,
                            ToNode::AbortResult {
                                handle,
                                tag,
                                aborted,
                            },
                        )
                        .map_err(LiveError::Transport)?;
                    outstanding += 1;
                }
                ToBroker::UpdateId { handle, raw_id } => {
                    // Too late once the frame is on the wire; silently
                    // keep the old identifier then (the node's promote
                    // timer raced the arbitration and lost).
                    if let Ok(id) = CanId::try_from_raw(raw_id) {
                        if let Some(p) = self.pending[node as usize]
                            .iter_mut()
                            .find(|p| p.handle == handle)
                        {
                            p.frame.id = id;
                        }
                    }
                }
                ToBroker::Hello { .. } => {} // handshake stragglers
            }
        }
        Ok(())
    }

    /// Abort `handle` if it has not reached the wire yet. Returns
    /// `(aborted, tag)`; an unknown or in-flight handle cannot be
    /// aborted (non-preemptive transmission).
    fn try_abort(&mut self, node: u8, handle: u32) -> (bool, u64) {
        if let Some(tx) = &self.inflight {
            if tx.node == node && tx.handle == handle {
                return (false, tx.tag);
            }
        }
        let frames = &mut self.pending[node as usize];
        if let Some(idx) = frames.iter().position(|p| p.handle == handle) {
            let p = frames.remove(idx);
            return (true, p.tag);
        }
        (false, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::TransportError;
    use rtec_sim::SharedTraceSink;

    fn test_broker<T: BrokerTransport>(transport: T) -> Broker<T> {
        Broker::new(
            BrokerConfig {
                timing: BitTiming::MBIT_1,
                pace: Pace::Virtual,
                fault: FaultPlan::default(),
            },
            transport,
            SharedTraceSink::disabled(),
        )
    }

    /// One node whose replies come from a closure over the last
    /// message the broker sent it.
    struct Scripted<F: FnMut(&Option<ToNode>) -> ToBroker + Send> {
        last: Option<ToNode>,
        reply: F,
    }

    impl<F: FnMut(&Option<ToNode>) -> ToBroker + Send> BrokerTransport for Scripted<F> {
        fn node_count(&self) -> usize {
            1
        }

        fn send(&mut self, _node: u8, msg: ToNode) -> Result<(), TransportError> {
            self.last = Some(msg);
            Ok(())
        }

        fn recv_from(
            &mut self,
            _node: u8,
            _timeout: std::time::Duration,
        ) -> Result<ToBroker, TransportError> {
            Ok((self.reply)(&self.last))
        }
    }

    #[test]
    fn babbling_node_trips_the_turn_budget() {
        // A node that keeps submitting and never quiesces with `Idle`
        // must surface as a typed stall, not an infinite drain loop.
        let mut handle = 0u32;
        let broker = test_broker(Scripted {
            last: None,
            reply: move |_| {
                handle += 1;
                ToBroker::Submit {
                    handle,
                    tag: 0,
                    frame: Frame::new(CanId::new(1, 2, 3), &[]),
                }
            },
        });
        assert_eq!(
            broker.run(Time::from_ms(1)),
            Err(LiveError::ProtocolStall {
                node: 0,
                replies: MAX_TURN_REPLIES,
            })
        );
    }

    #[test]
    fn node_that_never_acks_shutdown_trips_the_budget() {
        // Well-behaved while the bus runs, but never answers the final
        // `Shutdown` with `Done` (e.g. its thread wedged mid-turn).
        let broker = test_broker(Scripted {
            last: None,
            reply: |last| match last {
                Some(ToNode::Shutdown) => ToBroker::Hello { node: 0 },
                _ => ToBroker::Idle,
            },
        });
        assert_eq!(
            broker.run(Time::ZERO),
            Err(LiveError::ProtocolStall {
                node: 0,
                replies: MAX_TURN_REPLIES,
            })
        );
    }

    #[test]
    fn quiet_node_shuts_down_cleanly_within_budget() {
        let broker = test_broker(Scripted {
            last: None,
            reply: |last| match last {
                Some(ToNode::Shutdown) => ToBroker::Done { node: 0 },
                _ => ToBroker::Idle,
            },
        });
        assert_eq!(broker.run(Time::ZERO), Ok(BrokerStats::default()));
    }
}
