//! The bus broker: one thread reproducing CAN semantics for a cluster
//! of node threads.
//!
//! The broker owns bus time. It keeps every node's submitted frames,
//! resolves bitwise-priority arbitration whenever the wire goes idle
//! (lowest raw 29-bit identifier wins, exactly like the simulator's
//! [`rtec_can::bus`]), paces the winning transmission with the
//! [`BitClock`], and broadcasts completions to every other node — the
//! sender learns `all_received`, which is what lets HRT publishers skip
//! redundant retransmissions (§3.2 of the paper).
//!
//! # Lock-step protocol
//!
//! After sending a message the broker reads that node's replies until
//! the node says `Idle`; replies that themselves require an answer
//! (`Abort` → `AbortResult`) bump the outstanding count. Nodes are
//! purely reactive, so this makes the whole cluster's interleaving —
//! as far as broker state is concerned — a deterministic function of
//! the event timeline, even over real sockets and under wall pacing.
//!
//! Within one bus instant the order is fixed: wire completions are
//! processed before timers, timers in arming order, and deliveries
//! fan out in increasing node order with the sender's `TxDone` last.
//!
//! Completion turns are **batched**: all of a frame's `Deliver`
//! messages plus the sender's `TxDone` are sent before any node's
//! replies are drained, so the nodes process the completion
//! concurrently instead of one serialized round-trip per receiver.
//! Draining still follows the fixed order above, so every broker-side
//! state change lands exactly as in the fully serial protocol; only
//! side effects on *shared* observers (the delivery log, the trace
//! ring) may interleave, which the cluster runner canonicalizes by a
//! deterministic sort (see `cluster.rs`).
//!
//! # Fault tolerance
//!
//! Unless [`BrokerConfig::strict`] is set, a node fault is not
//! terminal. The broker keeps a per-node health state mirroring CAN
//! fault confinement (§3.5 of the paper): **active** (normal),
//! **passive** (reachable but flaky — its SRT/NRT submissions are shed
//! at admission and its HRT `TxDone` acks are forced to
//! `all_received = false`, so time redundancy always spends the extra
//! retransmissions), **down** (crashed, stalled, or babbling past the
//! turn budget — quarantined, its pending frames abandoned, a
//! supervised restart scheduled with exponential backoff in *bus*
//! time), and **off** (restart budget exhausted: the live analogue of
//! bus-off without auto-recovery). Restarts are delegated to a
//! [`NodeSupervisor`] — the cluster runner's implementation respawns
//! the node thread with a bumped incarnation and the broker re-runs
//! the Welcome handshake so the node can resync its state. Heartbeat
//! `Ping`s probe nodes the lock-step traffic has not touched within
//! [`BrokerConfig::heartbeat`], so a silent node cannot stay
//! undetected; all supervision timing is driven by the bus clock,
//! which keeps recovery schedules byte-identical across runs under
//! [`Pace::Virtual`].

use crate::clock::{BitClock, Pace};
use crate::transport::{BrokerTransport, NodeTransport, Relink, TransportError};
use crate::wire::{ToBroker, ToNode};
use crate::LiveError;
use rtec_can::bits::{exact_frame_bits, BitTiming, ERROR_FRAME_BITS};
use rtec_can::fault::{FaultDecision, FaultInjector, FaultModel};
use rtec_can::{CanId, Frame, NodeId, PRIO_HRT};
use rtec_sim::{Duration, Rng, SharedTraceSink, SourceId, Time};
use std::collections::BTreeMap;

/// How long the broker waits on a node reply before declaring the node
/// dead. Generous: node threads only block on their own transport.
const RECV_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(60);

/// Clean lock-step exchanges an error-passive node must complete
/// before it is promoted back to active.
const PASSIVE_CLEAN_EXCHANGES: u32 = 3;

/// Further send failures an error-passive node may accumulate before
/// it is declared down.
const PASSIVE_STRIKES: u32 = 4;

/// Upper bound on the replies one node may produce within a single
/// turn of the lock-step protocol before the broker declares a
/// [`LiveError::ProtocolStall`]. A healthy turn is a handful of
/// messages (requests plus one `Idle`); a node that babbles past this
/// budget — or never returns to `Idle` because its thread wedged
/// mid-turn — would otherwise hang the whole bus behind `RECV_TIMEOUT`
/// retries forever.
pub const MAX_TURN_REPLIES: usize = 4096;

/// Fault injection for the live bus, mirroring the simulator's models.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// The fault model; `None` runs a fault-free bus.
    pub model: Option<FaultModel>,
    /// Seed for the injector's random stream.
    pub seed: u64,
}

impl FaultPlan {
    fn injector(&self) -> FaultInjector {
        match &self.model {
            Some(m) => FaultInjector::new(m.clone(), Rng::seed_from_u64(self.seed)),
            None => FaultInjector::none(),
        }
    }
}

/// Broker configuration.
#[derive(Clone, Debug)]
pub struct BrokerConfig {
    /// Bit timing the wire is paced with.
    pub timing: BitTiming,
    /// How bus time maps to wall time.
    pub pace: Pace,
    /// Fault injection plan.
    pub fault: FaultPlan,
    /// Pre-supervision behavior: any node fault (stall, crash, turn
    /// budget breach) aborts the whole run with a terminal error
    /// instead of quarantining the node and carrying on.
    pub strict: bool,
    /// Probe a node with `Ping` when no lock-step exchange has touched
    /// it for this much bus time. `None` disables probing (a fully
    /// silent dead node is then only noticed at the next delivery,
    /// timer, or shutdown addressed to it).
    pub heartbeat: Option<Duration>,
    /// How long a single `recv` may block before the node counts as
    /// stalled. Wall time, since it guards against wedged threads.
    pub recv_timeout: std::time::Duration,
}

impl Default for BrokerConfig {
    fn default() -> Self {
        BrokerConfig {
            timing: BitTiming::MBIT_1,
            pace: Pace::Virtual,
            fault: FaultPlan::default(),
            strict: false,
            heartbeat: None,
            recv_timeout: RECV_TIMEOUT,
        }
    }
}

/// Counters the broker reports after a run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BrokerStats {
    /// Arbitration rounds resolved.
    pub arbitrations: u64,
    /// Frames that completed with every receiver reached.
    pub frames_ok: u64,
    /// Frames that completed but were missed by some receiver.
    pub frames_with_omission: u64,
    /// Transmission attempts destroyed by error frames.
    pub frames_corrupted: u64,
    /// Pending frames discarded because their node went down.
    pub frames_abandoned: u64,
    /// SRT/NRT submissions shed at admission from error-passive nodes.
    pub frames_shed: u64,
    /// Heartbeat probes sent.
    pub pings: u64,
    /// Stale `Hello` replays observed after the handshake (see the
    /// `hello_replay` trace record).
    pub hello_replays: u64,
    /// Nodes declared down (counting repeats).
    pub node_downs: u64,
    /// Supervised restarts completed.
    pub node_restarts: u64,
}

/// Per-node health, mirroring CAN fault confinement (§3.5).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Health {
    /// Normal operation.
    Active,
    /// Reachable but flaky: shed SRT/NRT, force HRT redundancy.
    Passive {
        /// Consecutive clean exchanges since entering passive.
        clean: u32,
        /// Send failures accumulated while passive.
        strikes: u32,
    },
    /// Quarantined; a restart may be scheduled.
    Down,
    /// Restart budget exhausted — never contacted again.
    Off,
}

impl Health {
    fn is_reachable(self) -> bool {
        matches!(self, Health::Active | Health::Passive { .. })
    }
}

/// What a supervision event was.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SupKind {
    /// The node was declared down (crash, stall, or quarantine).
    Down,
    /// The node entered the error-passive state.
    Passive,
    /// The node recovered from error-passive to active.
    Active,
    /// A restarted incarnation completed its rejoin handshake.
    Up,
    /// The node exhausted its restart budget.
    Off,
}

/// One entry of the supervision log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SupEvent {
    /// Bus time of the transition.
    pub at_ns: u64,
    /// The node.
    pub node: u8,
    /// The node's incarnation at the time (for `Up`: the new one).
    pub incarnation: u32,
    /// The transition.
    pub kind: SupKind,
    /// Short machine-stable reason (`"disconnect"`, `"timeout"`,
    /// `"babble"`, `"send"`, `"rejoin-failed"`, or `""`).
    pub reason: &'static str,
}

/// Restart delegate the broker calls when a supervised node goes down.
///
/// Implemented by the cluster runner (which owns the node threads and
/// behavior factories); the broker only decides *when* — all policy
/// about budgets and backoff lives behind [`NodeSupervisor::on_down`].
pub trait NodeSupervisor {
    /// `node` (running `incarnation`) was declared down at bus time
    /// `at_ns`. Return the bus-time backoff (ns) to wait before
    /// restarting it, or `None` to declare it off for good.
    fn on_down(
        &mut self,
        node: u8,
        incarnation: u32,
        at_ns: u64,
        reason: &'static str,
    ) -> Option<u64>;

    /// Start incarnation `incarnation` of `node`. `link` carries the
    /// fresh broker-side endpoint's node half when the transport mints
    /// one ([`Relink::Link`]); with `None` the node dials back in
    /// itself. Must reap the dead incarnation's thread (its exit error
    /// is expected, not propagated).
    fn respawn(
        &mut self,
        node: u8,
        incarnation: u32,
        at_ns: u64,
        link: Option<Box<dyn NodeTransport>>,
    ) -> Result<(), LiveError>;
}

/// A recoverable per-node fault the lock-step protocol detected.
#[derive(Clone, Debug)]
enum NodeFault {
    /// The node's endpoint is gone (or the datagram stream is garbage).
    Disconnected,
    /// No reply within the receive timeout — wedged thread.
    Stalled,
    /// Turn budget breach: the node never returned to `Idle`.
    Babble(usize),
    /// A send failed without evidence the peer is gone (I/O error,
    /// retries exhausted) — the error-passive trigger.
    SendFailed,
}

impl NodeFault {
    fn reason(&self) -> &'static str {
        match self {
            NodeFault::Disconnected => "disconnect",
            NodeFault::Stalled => "timeout",
            NodeFault::Babble(_) => "babble",
            NodeFault::SendFailed => "send",
        }
    }

    /// Stable numeric code for the trace record.
    fn code(&self) -> u64 {
        match self {
            NodeFault::Disconnected => 0,
            NodeFault::Stalled => 1,
            NodeFault::Babble(_) => 2,
            NodeFault::SendFailed => 3,
        }
    }

    fn from_recv(e: TransportError) -> Self {
        match e {
            TransportError::Timeout => NodeFault::Stalled,
            _ => NodeFault::Disconnected,
        }
    }

    fn from_send(e: TransportError) -> Self {
        match e {
            TransportError::Io(_) => NodeFault::SendFailed,
            _ => NodeFault::Disconnected,
        }
    }
}

/// A frame a node has submitted and is waiting to see on the wire.
struct PendingFrame {
    handle: u32,
    tag: u64,
    frame: Frame,
    attempts: u32,
}

/// The transmission currently occupying the wire.
struct Inflight {
    node: u8,
    handle: u32,
    tag: u64,
    frame: Frame,
    attempts: u32,
    completes: Time,
    decision: FaultDecision,
}

/// The central bus thread.
pub struct Broker<T: BrokerTransport> {
    transport: T,
    clock: BitClock,
    sink: SharedTraceSink,
    src_bus: SourceId,
    injector: FaultInjector,
    strict: bool,
    heartbeat: Option<u64>,
    recv_timeout: std::time::Duration,
    pending: Vec<Vec<PendingFrame>>,
    timers: BTreeMap<(u64, u64), (u8, u64)>,
    timer_seq: u64,
    inflight: Option<Inflight>,
    health: Vec<Health>,
    incarnation: Vec<u32>,
    /// Bus time of the last completed lock-step exchange per node.
    last_contact: Vec<u64>,
    /// Scheduled supervised restarts: `(due_ns, node) → new incarnation`.
    restarts_due: BTreeMap<(u64, u8), u32>,
    sup_log: Vec<SupEvent>,
    stats: BrokerStats,
}

/// Shorthand for the optional supervisor threaded through the run.
type Sup<'a> = Option<&'a mut dyn NodeSupervisor>;

impl<T: BrokerTransport> Broker<T> {
    /// Build a broker over `transport`, tracing into `sink` under the
    /// source name `"bus"` (same as the simulator).
    pub fn new(config: BrokerConfig, transport: T, sink: SharedTraceSink) -> Self {
        let nodes = transport.node_count();
        let src_bus = sink.intern("bus");
        Broker {
            transport,
            clock: BitClock::new(config.timing, config.pace),
            sink,
            src_bus,
            injector: config.fault.injector(),
            strict: config.strict,
            heartbeat: config.heartbeat.map(|d| d.as_ns()),
            recv_timeout: config.recv_timeout,
            pending: (0..nodes).map(|_| Vec::new()).collect(),
            timers: BTreeMap::new(),
            timer_seq: 0,
            inflight: None,
            health: vec![Health::Active; nodes],
            incarnation: vec![0; nodes],
            last_contact: vec![0; nodes],
            restarts_due: BTreeMap::new(),
            sup_log: Vec::new(),
            stats: BrokerStats::default(),
        }
    }

    /// Run the bus until bus time `until`, then shut every node down.
    /// Unsupervised: a faulted node is quarantined for good (or, under
    /// [`BrokerConfig::strict`], aborts the run).
    pub fn run(mut self, until: Time) -> Result<BrokerStats, LiveError> {
        self.run_supervised(until, None)
    }

    /// Like [`Broker::run`], with a supervisor to restart downed nodes.
    pub fn run_supervised(
        &mut self,
        until: Time,
        mut sup: Sup<'_>,
    ) -> Result<BrokerStats, LiveError> {
        let nodes = self.transport.node_count();
        self.transport
            .rendezvous(self.recv_timeout)
            .map_err(LiveError::Transport)?;
        let now_ns = self.clock.now().as_ns();
        for node in 0..nodes {
            // The initial handshake is not supervised: a cluster that
            // cannot even form reports the failure immediately.
            self.send_and_drain(
                node as u8,
                ToNode::Welcome {
                    now_ns,
                    incarnation: 0,
                },
            )
            .map_err(|f| self.fault_to_error(node as u8, &f))?;
        }
        loop {
            // Fire everything already due before arbitrating: frames
            // submitted by one timer handler must contend against
            // frames submitted by other handlers at the same instant.
            if let Some(at) = self.next_event_time() {
                if at <= self.clock.now() {
                    self.process_next_event(&mut sup)?;
                    continue;
                }
            }
            if self.inflight.is_none() && self.pending.iter().any(|p| !p.is_empty()) {
                self.arbitrate()?;
                continue;
            }
            match self.next_event_time() {
                Some(at) if at <= until => {
                    self.clock.advance_to(at);
                    self.process_next_event(&mut sup)?;
                }
                _ => break,
            }
        }
        self.clock.advance_to(until);
        let now_ns = self.clock.now().as_ns();
        for node in 0..nodes {
            if !self.health[node].is_reachable() {
                continue; // dead threads are reaped by the supervisor
            }
            if let Err(fault) = self.shutdown_node(node as u8) {
                if self.strict {
                    return Err(self.fault_to_error(node as u8, &fault));
                }
                // The run is over; just sever the link so the cluster
                // teardown cannot block on the wedged peer.
                self.trace_node_event("node_down", node as u8, fault.code());
                self.stats.node_downs += 1;
                self.log_sup(now_ns, node as u8, SupKind::Down, fault.reason());
                self.transport.unlink(node as u8);
                self.health[node] = Health::Off;
            }
        }
        Ok(self.stats.clone())
    }

    /// Supervision transitions recorded during the last run.
    pub fn take_sup_log(&mut self) -> Vec<SupEvent> {
        std::mem::take(&mut self.sup_log)
    }

    /// Send `Shutdown` and pump replies until `Done`, bounded by the
    /// turn budget.
    fn shutdown_node(&mut self, node: u8) -> Result<(), NodeFault> {
        self.transport
            .send(node, ToNode::Shutdown)
            .map_err(NodeFault::from_send)?;
        // Late requests arriving during shutdown are dropped — bounded
        // by the same turn budget as a live turn, so a node that never
        // acknowledges the shutdown surfaces as a stall instead of
        // wedging the broker.
        let mut replies = 0usize;
        loop {
            let reply = self
                .transport
                .recv_from(node, self.recv_timeout)
                .map_err(NodeFault::from_recv)?;
            if matches!(reply, ToBroker::Done { .. }) {
                return Ok(());
            }
            replies += 1;
            if replies >= MAX_TURN_REPLIES {
                return Err(NodeFault::Babble(replies));
            }
        }
    }

    /// The bus time the next heartbeat probe is due, if probing is on
    /// and any reachable node could go silent.
    fn next_heartbeat(&self) -> Option<Time> {
        let every = self.heartbeat?;
        self.health
            .iter()
            .zip(&self.last_contact)
            .filter(|(h, _)| h.is_reachable())
            .map(|(_, &last)| last.saturating_add(every))
            .min()
            .map(Time::from_ns)
    }

    /// The earliest upcoming event. Ties resolve completion < timer <
    /// restart < heartbeat (matching `process_next_event`).
    fn next_event_time(&self) -> Option<Time> {
        [
            self.inflight.as_ref().map(|t| t.completes),
            self.timers.keys().next().map(|&(at, _)| Time::from_ns(at)),
            self.restarts_due
                .keys()
                .next()
                .map(|&(at, _)| Time::from_ns(at)),
            self.next_heartbeat(),
        ]
        .into_iter()
        .flatten()
        .min()
    }

    fn process_next_event(&mut self, sup: &mut Sup<'_>) -> Result<(), LiveError> {
        let now = self.clock.now();
        let completion = self.inflight.as_ref().map(|t| t.completes);
        let timer = self.timers.keys().next().map(|&(at, _)| Time::from_ns(at));
        let restart = self
            .restarts_due
            .keys()
            .next()
            .map(|&(at, _)| Time::from_ns(at));
        let due = self.next_event_time().unwrap_or(now);
        if completion == Some(due) {
            return self.finish_transmission(sup);
        }
        if timer == Some(due) {
            let (&key, &(node, token)) = self.timers.iter().next().expect("timer exists");
            self.timers.remove(&key);
            let now_ns = self.clock.now().as_ns();
            if !self.health[node as usize].is_reachable() {
                return Ok(()); // armed by an incarnation that died since
            }
            return match self.send_and_drain(node, ToNode::Timer { token, now_ns }) {
                Ok(()) => Ok(()),
                Err(fault) => self.handle_fault(node, fault, sup),
            };
        }
        if restart == Some(due) {
            let (&(at, node), &new_inc) = self.restarts_due.iter().next().expect("restart due");
            self.restarts_due.remove(&(at, node));
            return self.do_restart(node, new_inc, sup);
        }
        // Heartbeat: probe every reachable node whose silence reached
        // the interval, in node order.
        if let Some(every) = self.heartbeat {
            let now_ns = now.as_ns();
            for node in 0..self.health.len() as u8 {
                if !self.health[node as usize].is_reachable()
                    || self.last_contact[node as usize].saturating_add(every) > now_ns
                {
                    continue;
                }
                self.stats.pings += 1;
                match self.send_and_drain(node, ToNode::Ping { nonce: now_ns }) {
                    Ok(()) => {}
                    Err(fault) => self.handle_fault(node, fault, sup)?,
                }
            }
        }
        Ok(())
    }

    /// Resolve arbitration among all pending frames at the current
    /// instant and start the winning transmission.
    fn arbitrate(&mut self) -> Result<(), LiveError> {
        let now = self.clock.now();
        // One candidate per node: its highest-priority pending frame.
        let mut candidates: Vec<(u32, u8)> = self
            .pending
            .iter()
            .enumerate()
            .filter_map(|(node, frames)| {
                frames
                    .iter()
                    .map(|p| p.frame.id.raw())
                    .min()
                    .map(|raw| (raw, node as u8))
            })
            .collect();
        debug_assert!(!candidates.is_empty());
        candidates.sort_unstable();
        let (winner_raw, winner_node) = candidates[0];
        self.stats.arbitrations += 1;
        if self.sink.is_enabled() {
            let mut fields: Vec<(&'static str, u64)> = candidates
                .iter()
                .map(|&(raw, node)| ("cand", (u64::from(node) << 32) | u64::from(raw)))
                .collect();
            fields.push(("win", u64::from(winner_raw)));
            self.sink.emit_fields(now, self.src_bus, "arb", &fields);
        }
        let frames = &mut self.pending[winner_node as usize];
        let idx = frames
            .iter()
            .position(|p| p.frame.id.raw() == winner_raw)
            .expect("winner frame pending");
        let mut won = frames.remove(idx);
        won.attempts += 1;

        let receivers: Vec<NodeId> = (0..self.pending.len() as u8)
            .filter(|&n| n != winner_node)
            .map(NodeId)
            .collect();
        let decision = self.injector.decide(now, &won.frame, &receivers);
        let full_bits = exact_frame_bits(&won.frame);
        let duration = match &decision {
            FaultDecision::Corrupt { fraction } => {
                let sent = ((f64::from(full_bits) * fraction).ceil() as u32).clamp(1, full_bits);
                self.clock.timing().duration_of(sent + ERROR_FRAME_BITS)
            }
            _ => self.clock.timing().duration_of(full_bits),
        };
        self.sink.emit_fields(
            now,
            self.src_bus,
            match decision {
                FaultDecision::Corrupt { .. } => "tx_start_corrupt",
                FaultDecision::Omit { .. } => "tx_start_omit",
                FaultDecision::Ok => "tx_start",
            },
            &[
                ("id", u64::from(winner_raw)),
                ("node", u64::from(winner_node)),
                ("attempt", u64::from(won.attempts)),
                ("tag", won.tag),
            ],
        );
        self.inflight = Some(Inflight {
            node: winner_node,
            handle: won.handle,
            tag: won.tag,
            frame: won.frame,
            attempts: won.attempts,
            completes: now + duration,
            decision,
        });
        Ok(())
    }

    fn finish_transmission(&mut self, sup: &mut Sup<'_>) -> Result<(), LiveError> {
        let tx = self.inflight.take().expect("completion without inflight");
        self.clock.advance_to(tx.completes);
        let now = self.clock.now();
        if let FaultDecision::Corrupt { .. } = tx.decision {
            // An error frame destroyed the attempt: nobody received it
            // and the controller re-enters arbitration automatically
            // (CAN's built-in retransmission — invisible to the node).
            self.stats.frames_corrupted += 1;
            self.sink.emit_fields(
                now,
                self.src_bus,
                "tx_error",
                &[
                    ("id", u64::from(tx.frame.id.raw())),
                    ("node", u64::from(tx.node)),
                    ("attempt", u64::from(tx.attempts)),
                    ("tag", tx.tag),
                ],
            );
            if self.health[tx.node as usize].is_reachable() {
                self.pending[tx.node as usize].push(PendingFrame {
                    handle: tx.handle,
                    tag: tx.tag,
                    frame: tx.frame,
                    attempts: tx.attempts,
                });
            } else {
                // The sender died while its frame was on the wire; the
                // controller that would retransmit is gone with it.
                self.stats.frames_abandoned += 1;
            }
            return Ok(());
        }
        let victims: Vec<NodeId> = match &tx.decision {
            FaultDecision::Omit { victims } => victims.clone(),
            _ => Vec::new(),
        };
        // Broadcast to every other node (minus omission victims), in
        // node order; the sender's TxDone goes last so its reaction
        // (e.g. an HRT retransmission) arbitrates after deliveries.
        //
        // The turn is batched: every message of this completion goes
        // out before any node's replies are drained, so all nodes
        // process their delivery concurrently instead of serializing
        // one lock-step round-trip per receiver (the 2→32-node
        // throughput cliff). Broker state stays deterministic because
        // the replies are still drained in the same fixed order —
        // receivers ascending, sender last — and each node's own
        // message stream is unchanged.
        //
        // A down or failing receiver counts as an omission victim of
        // sorts: it clears `delivered_all`, so HRT time redundancy
        // spends its extra retransmissions exactly as it would for a
        // lossy wire (§3.5's degradation story). Send faults are noted
        // and routed through supervision only after the whole batch is
        // drained, keeping the turn order fixed.
        let completed_ns = now.as_ns();
        let mut delivered_all = victims.is_empty();
        let mut turn: Vec<u8> = Vec::new();
        let mut faults: Vec<(u8, NodeFault)> = Vec::new();
        for node in 0..self.pending.len() as u8 {
            if node == tx.node || victims.contains(&NodeId(node)) {
                continue;
            }
            if !self.health[node as usize].is_reachable() {
                delivered_all = false;
                continue;
            }
            match self.transport.send(
                node,
                ToNode::Deliver {
                    completed_ns,
                    frame: tx.frame,
                },
            ) {
                Ok(()) => turn.push(node),
                Err(e) => {
                    delivered_all = false;
                    faults.push((node, NodeFault::from_send(e)));
                }
            }
        }
        if delivered_all {
            self.stats.frames_ok += 1;
        } else {
            self.stats.frames_with_omission += 1;
        }
        self.sink.emit_fields(
            now,
            self.src_bus,
            "tx_end",
            &[
                ("id", u64::from(tx.frame.id.raw())),
                ("node", u64::from(tx.node)),
                ("attempt", u64::from(tx.attempts)),
                ("tag", tx.tag),
                ("all", u64::from(delivered_all)),
            ],
        );
        let sender_health = self.health[tx.node as usize];
        if sender_health.is_reachable() {
            // An error-passive sender never gets a clean ack: forcing
            // `all_received = false` keeps its HRT time redundancy on
            // (the paper's error-passive degradation) without touching
            // the honest `all` field traced above.
            let acked = delivered_all && !matches!(sender_health, Health::Passive { .. });
            match self.transport.send(
                tx.node,
                ToNode::TxDone {
                    handle: tx.handle,
                    tag: tx.tag,
                    all_received: acked,
                    completed_ns,
                },
            ) {
                Ok(()) => turn.push(tx.node),
                Err(e) => faults.push((tx.node, NodeFault::from_send(e))),
            }
        }
        for node in turn {
            if let Err(fault) = self.drain(node) {
                faults.push((node, fault));
            }
        }
        for (node, fault) in faults {
            self.handle_fault(node, fault, sup)?;
        }
        Ok(())
    }

    /// Send one message to `node` and pump its replies until it
    /// quiesces. Every message we send is answered by (requests...,
    /// `Idle`); requests that need a response (`Abort`) add one more
    /// expected `Idle`.
    fn send_and_drain(&mut self, node: u8, msg: ToNode) -> Result<(), NodeFault> {
        self.transport
            .send(node, msg)
            .map_err(NodeFault::from_send)?;
        self.drain(node)
    }

    /// Pump `node`'s replies for one previously sent message until it
    /// quiesces (see [`Broker::send_and_drain`]). Split out so a
    /// completion turn can broadcast all its messages before draining
    /// anyone. A completed drain counts as contact for heartbeat
    /// accounting and earns a passive node credit toward reactivation.
    fn drain(&mut self, node: u8) -> Result<(), NodeFault> {
        let mut outstanding = 1usize;
        let mut replies = 0usize;
        while outstanding > 0 {
            if replies >= MAX_TURN_REPLIES {
                return Err(NodeFault::Babble(replies));
            }
            replies += 1;
            let reply = self
                .transport
                .recv_from(node, self.recv_timeout)
                .map_err(NodeFault::from_recv)?;
            match reply {
                ToBroker::Idle => outstanding -= 1,
                ToBroker::Done { .. } => outstanding -= 1,
                ToBroker::Submit { handle, tag, frame } => {
                    if matches!(self.health[node as usize], Health::Passive { .. })
                        && frame.id.priority() != PRIO_HRT
                    {
                        // Error-passive shedding: refuse new SRT/NRT
                        // work at admission with an immediate negative
                        // completion (the node sees a failed send, not
                        // silence), keeping the wire for HRT traffic.
                        self.stats.frames_shed += 1;
                        self.sink.emit_fields(
                            self.clock.now(),
                            self.src_bus,
                            "shed",
                            &[("node", u64::from(node)), ("id", u64::from(frame.id.raw()))],
                        );
                        self.transport
                            .send(
                                node,
                                ToNode::TxDone {
                                    handle,
                                    tag,
                                    all_received: false,
                                    completed_ns: self.clock.now().as_ns(),
                                },
                            )
                            .map_err(NodeFault::from_send)?;
                        outstanding += 1;
                    } else {
                        self.pending[node as usize].push(PendingFrame {
                            handle,
                            tag,
                            frame,
                            attempts: 0,
                        });
                    }
                }
                ToBroker::TimerReq { at_ns, token } => {
                    self.timers.insert((at_ns, self.timer_seq), (node, token));
                    self.timer_seq += 1;
                }
                ToBroker::Abort { handle } => {
                    let (aborted, tag) = self.try_abort(node, handle);
                    self.transport
                        .send(
                            node,
                            ToNode::AbortResult {
                                handle,
                                tag,
                                aborted,
                            },
                        )
                        .map_err(NodeFault::from_send)?;
                    outstanding += 1;
                }
                ToBroker::UpdateId { handle, raw_id } => {
                    // Too late once the frame is on the wire; silently
                    // keep the old identifier then (the node's promote
                    // timer raced the arbitration and lost).
                    if let Ok(id) = CanId::try_from_raw(raw_id) {
                        if let Some(p) = self.pending[node as usize]
                            .iter_mut()
                            .find(|p| p.handle == handle)
                        {
                            p.frame.id = id;
                        }
                    }
                }
                ToBroker::Pong { .. } => {} // liveness evidence; noted below
                ToBroker::Hello { incarnation, .. } => {
                    // A `Hello` after the handshake is either a stale
                    // replay from a dead incarnation (an anomaly the
                    // auditor counts) or the current incarnation's own
                    // announcement arriving in the same window as its
                    // rejoin — benign, and deliberately classified with
                    // a strict `<` so the boundary case is not
                    // miscounted as a replay.
                    let current = self.incarnation[node as usize];
                    if incarnation < current {
                        self.stats.hello_replays += 1;
                        self.trace_node_event("hello_replay", node, u64::from(incarnation));
                    } else {
                        self.trace_node_event("hello_rejoin", node, u64::from(incarnation));
                    }
                }
            }
        }
        self.last_contact[node as usize] = self.clock.now().as_ns();
        if let Health::Passive { clean, strikes } = self.health[node as usize] {
            if clean + 1 >= PASSIVE_CLEAN_EXCHANGES {
                self.health[node as usize] = Health::Active;
                self.trace_node_event("node_active", node, 0);
                let now_ns = self.clock.now().as_ns();
                self.log_sup(now_ns, node, SupKind::Active, "");
            } else {
                self.health[node as usize] = Health::Passive {
                    clean: clean + 1,
                    strikes,
                };
            }
        }
        Ok(())
    }

    /// Route a node fault: terminal under strict, otherwise into the
    /// CAN-style confinement ladder (send faults demote to passive
    /// first; everything else — and a passive node out of strikes —
    /// goes down).
    fn handle_fault(
        &mut self,
        node: u8,
        fault: NodeFault,
        sup: &mut Sup<'_>,
    ) -> Result<(), LiveError> {
        if self.strict {
            return Err(self.fault_to_error(node, &fault));
        }
        if let NodeFault::SendFailed = fault {
            match self.health[node as usize] {
                Health::Active => {
                    self.health[node as usize] = Health::Passive {
                        clean: 0,
                        strikes: 0,
                    };
                    self.trace_node_event("node_passive", node, fault.code());
                    let now_ns = self.clock.now().as_ns();
                    self.log_sup(now_ns, node, SupKind::Passive, fault.reason());
                    return Ok(());
                }
                Health::Passive { strikes, .. } if strikes + 1 < PASSIVE_STRIKES => {
                    self.health[node as usize] = Health::Passive {
                        clean: 0,
                        strikes: strikes + 1,
                    };
                    return Ok(());
                }
                Health::Down | Health::Off => return Ok(()),
                Health::Passive { .. } => {} // out of strikes: fall through
            }
        }
        if !self.health[node as usize].is_reachable() {
            return Ok(()); // already quarantined this instant
        }
        self.mark_down(node, &fault, sup)
    }

    /// Quarantine `node`: sever its link, abandon its queued work, and
    /// ask the supervisor (if any) when to restart it.
    fn mark_down(
        &mut self,
        node: u8,
        fault: &NodeFault,
        sup: &mut Sup<'_>,
    ) -> Result<(), LiveError> {
        let now_ns = self.clock.now().as_ns();
        let inc = self.incarnation[node as usize];
        self.trace_node_event("node_down", node, fault.code());
        self.stats.node_downs += 1;
        self.log_sup(now_ns, node, SupKind::Down, fault.reason());
        self.transport.unlink(node);
        self.health[node as usize] = Health::Down;
        self.stats.frames_abandoned += self.pending[node as usize].len() as u64;
        self.pending[node as usize].clear();
        self.timers.retain(|_, &mut (n, _)| n != node);
        let backoff = match sup {
            Some(s) => s.on_down(node, inc, now_ns, fault.reason()),
            None => None,
        };
        match backoff {
            Some(backoff_ns) => {
                self.restarts_due
                    .insert((now_ns.saturating_add(backoff_ns), node), inc + 1);
            }
            None => {
                self.health[node as usize] = Health::Off;
                self.trace_node_event("node_off", node, u64::from(inc));
                self.log_sup(now_ns, node, SupKind::Off, fault.reason());
            }
        }
        Ok(())
    }

    /// Carry out a scheduled restart: relink the transport, respawn the
    /// node thread via the supervisor, and re-run the Welcome handshake
    /// under the bumped incarnation.
    fn do_restart(&mut self, node: u8, new_inc: u32, sup: &mut Sup<'_>) -> Result<(), LiveError> {
        let now_ns = self.clock.now().as_ns();
        let link = match self.transport.relink(node) {
            Ok(Relink::Link(l)) => Some(l),
            Ok(Relink::Reconnect) => None,
            Err(_) => {
                self.health[node as usize] = Health::Off;
                self.trace_node_event("node_off", node, u64::from(new_inc));
                self.log_sup(now_ns, node, SupKind::Off, "rejoin-failed");
                return Ok(());
            }
        };
        let reconnect = link.is_none();
        let Some(s) = sup else {
            return Err(LiveError::RestartUnsupported { node });
        };
        s.respawn(node, new_inc, now_ns, link)?;
        // The new incarnation is live from here on: any failure below
        // flows through the normal confinement ladder (another down,
        // possibly off once the budget runs out).
        self.incarnation[node as usize] = new_inc;
        self.health[node as usize] = Health::Active;
        if reconnect {
            if let Err(e) = self.transport.rendezvous_node(node, self.recv_timeout) {
                return self.handle_fault(node, NodeFault::from_recv(e), sup);
            }
        }
        match self.send_and_drain(
            node,
            ToNode::Welcome {
                now_ns,
                incarnation: new_inc,
            },
        ) {
            Ok(()) => {
                self.stats.node_restarts += 1;
                self.trace_node_event("node_up", node, u64::from(new_inc));
                self.log_sup(now_ns, node, SupKind::Up, "");
                Ok(())
            }
            Err(fault) => self.handle_fault(node, fault, sup),
        }
    }

    /// The terminal error a fault maps to under strict mode (the
    /// pre-supervision behavior).
    fn fault_to_error(&self, node: u8, fault: &NodeFault) -> LiveError {
        match *fault {
            NodeFault::Babble(replies) => LiveError::ProtocolStall { node, replies },
            NodeFault::Stalled => LiveError::Transport(TransportError::Timeout),
            NodeFault::Disconnected => LiveError::Transport(TransportError::Disconnected),
            NodeFault::SendFailed => LiveError::Transport(TransportError::Io("send failed".into())),
        }
    }

    /// Emit a supervision trace record (`node_down`, `node_up`, ...).
    /// The `code` field carries the fault code or incarnation.
    fn trace_node_event(&self, kind: &'static str, node: u8, code: u64) {
        self.sink.emit_fields(
            self.clock.now(),
            self.src_bus,
            kind,
            &[("node", u64::from(node)), ("code", code)],
        );
    }

    fn log_sup(&mut self, at_ns: u64, node: u8, kind: SupKind, reason: &'static str) {
        let incarnation = self.incarnation[node as usize];
        self.sup_log.push(SupEvent {
            at_ns,
            node,
            incarnation,
            kind,
            reason,
        });
    }

    /// Abort `handle` if it has not reached the wire yet. Returns
    /// `(aborted, tag)`; an unknown or in-flight handle cannot be
    /// aborted (non-preemptive transmission).
    fn try_abort(&mut self, node: u8, handle: u32) -> (bool, u64) {
        if let Some(tx) = &self.inflight {
            if tx.node == node && tx.handle == handle {
                return (false, tx.tag);
            }
        }
        let frames = &mut self.pending[node as usize];
        if let Some(idx) = frames.iter().position(|p| p.handle == handle) {
            let p = frames.remove(idx);
            return (true, p.tag);
        }
        (false, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::TransportError;
    use rtec_sim::SharedTraceSink;

    fn broker_with<T: BrokerTransport>(strict: bool, transport: T) -> Broker<T> {
        Broker::new(
            BrokerConfig {
                strict,
                ..BrokerConfig::default()
            },
            transport,
            SharedTraceSink::disabled(),
        )
    }

    /// Strict mode: the pre-supervision behavior the original tests
    /// were written against.
    fn test_broker<T: BrokerTransport>(transport: T) -> Broker<T> {
        broker_with(true, transport)
    }

    /// One node whose replies come from a closure over the last
    /// message the broker sent it.
    struct Scripted<F: FnMut(&Option<ToNode>) -> ToBroker + Send> {
        last: Option<ToNode>,
        reply: F,
    }

    impl<F: FnMut(&Option<ToNode>) -> ToBroker + Send> BrokerTransport for Scripted<F> {
        fn node_count(&self) -> usize {
            1
        }

        fn send(&mut self, _node: u8, msg: ToNode) -> Result<(), TransportError> {
            self.last = Some(msg);
            Ok(())
        }

        fn recv_from(
            &mut self,
            _node: u8,
            _timeout: std::time::Duration,
        ) -> Result<ToBroker, TransportError> {
            Ok((self.reply)(&self.last))
        }
    }

    #[test]
    fn babbling_node_trips_the_turn_budget() {
        // A node that keeps submitting and never quiesces with `Idle`
        // must surface as a typed stall, not an infinite drain loop.
        let mut handle = 0u32;
        let broker = test_broker(Scripted {
            last: None,
            reply: move |_| {
                handle += 1;
                ToBroker::Submit {
                    handle,
                    tag: 0,
                    frame: Frame::new(CanId::new(1, 2, 3), &[]),
                }
            },
        });
        assert_eq!(
            broker.run(Time::from_ms(1)),
            Err(LiveError::ProtocolStall {
                node: 0,
                replies: MAX_TURN_REPLIES,
            })
        );
    }

    #[test]
    fn node_that_never_acks_shutdown_trips_the_budget() {
        // Well-behaved while the bus runs, but never answers the final
        // `Shutdown` with `Done` (e.g. its thread wedged mid-turn).
        let broker = test_broker(Scripted {
            last: None,
            reply: |last| match last {
                Some(ToNode::Shutdown) => ToBroker::Hello {
                    node: 0,
                    incarnation: 0,
                },
                _ => ToBroker::Idle,
            },
        });
        assert_eq!(
            broker.run(Time::ZERO),
            Err(LiveError::ProtocolStall {
                node: 0,
                replies: MAX_TURN_REPLIES,
            })
        );
    }

    #[test]
    fn quiet_node_shuts_down_cleanly_within_budget() {
        let broker = test_broker(Scripted {
            last: None,
            reply: |last| match last {
                Some(ToNode::Shutdown) => ToBroker::Done { node: 0 },
                _ => ToBroker::Idle,
            },
        });
        assert_eq!(broker.run(Time::ZERO), Ok(BrokerStats::default()));
    }

    /// Without strict mode a node that babbles mid-run is quarantined —
    /// its queued frames abandoned, the run itself still succeeds.
    #[test]
    fn lenient_broker_quarantines_a_babbler_and_keeps_running() {
        let mut state = 0u32;
        let broker = broker_with(
            false,
            Scripted {
                last: None,
                reply: move |_| {
                    state += 1;
                    match state {
                        // Welcome turn: arm a timer, then quiesce.
                        1 => ToBroker::TimerReq {
                            at_ns: 1_000,
                            token: 7,
                        },
                        2 => ToBroker::Idle,
                        // Timer turn: babble submissions forever.
                        _ => ToBroker::Submit {
                            handle: state,
                            tag: 0,
                            frame: Frame::new(CanId::new(1, 2, 3), &[]),
                        },
                    }
                },
            },
        );
        let stats = broker.run(Time::from_ms(1)).expect("lenient run survives");
        assert_eq!(stats.node_downs, 1);
        assert_eq!(stats.frames_abandoned, MAX_TURN_REPLIES as u64);
        assert_eq!(stats.node_restarts, 0); // no supervisor: down for good
    }

    /// Shutdown refusal under a lenient broker severs the link instead
    /// of failing the run.
    #[test]
    fn lenient_broker_survives_a_shutdown_refusal() {
        let broker = broker_with(
            false,
            Scripted {
                last: None,
                reply: |last| match last {
                    Some(ToNode::Shutdown) => ToBroker::Hello {
                        node: 0,
                        incarnation: 0,
                    },
                    _ => ToBroker::Idle,
                },
            },
        );
        let stats = broker.run(Time::ZERO).expect("lenient run survives");
        assert_eq!(stats.node_downs, 1);
    }

    /// A `Hello` carrying a stale incarnation is a replay (counted);
    /// one at the current incarnation is the boundary case — a rejoin
    /// echo, deliberately not an anomaly (strict `<`, not `<=`).
    #[test]
    fn stale_hello_is_a_replay_but_current_hello_is_not() {
        let mut step = 0u32;
        let mut broker = broker_with(
            false,
            Scripted {
                last: None,
                reply: move |_| {
                    step += 1;
                    match step {
                        1 => ToBroker::Hello {
                            node: 0,
                            incarnation: 1,
                        },
                        2 => ToBroker::Hello {
                            node: 0,
                            incarnation: 2,
                        },
                        _ => ToBroker::Idle,
                    }
                },
            },
        );
        broker.incarnation[0] = 2;
        broker.drain(0).expect("drain succeeds");
        assert_eq!(broker.stats.hello_replays, 1);
    }
}
