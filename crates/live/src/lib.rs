//! `rtec-live`: a multi-threaded live runtime for the event-channel
//! model — real threads, real IPC, the same protocol as the simulator.
//!
//! Each node of the cluster runs as its own thread hosting the three
//! channel classes (hard, soft, non real-time) on top of a
//! [`transport::NodeTransport`]. A central broker thread reproduces the
//! CAN bus: bitwise-priority arbitration over the pending frames,
//! non-preemptive transmission paced by a configurable bit-clock
//! ([`clock::BitClock`]), and broadcast-with-acknowledgement so hard
//! real-time publishers can skip redundant retransmissions (§3.2 of the
//! paper).
//!
//! Two transports ship with the crate: an in-process loopback
//! ([`transport::loopback`], deterministic, used by tests and
//! benchmarks) and UDP ([`udp`], one datagram socket per endpoint, for
//! spreading a cluster across processes).
//!
//! The runtime emits the same structured trace records as the
//! simulator, so the `rtec-conformance` auditor (invariants T1–T8) runs
//! unmodified on live traces.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod broker;
pub mod chaos;
pub mod clock;
pub mod cluster;
pub mod node;
pub mod sync;
pub mod transport;
pub mod udp;
pub mod wire;

pub use broker::{Broker, BrokerConfig, FaultPlan, NodeSupervisor, SupEvent, SupKind};
pub use chaos::{ChaosPlan, ChaosReport, ChaosVerdict, LinkChaos, LinkFault, LinkPlan, LinkStats};
pub use clock::{BitClock, Pace};
pub use cluster::{Cluster, ClusterConfig, LiveReport, SupervisionReport};
pub use node::{
    Behavior, DeliveryRecord, LiveNode, NodeConfig, NodeCtx, NodeSnapshot, NodeStats, SharedConfig,
};
pub use transport::{loopback, BrokerTransport, NodeTransport, Relink, TransportError};
pub use wire::{ToBroker, ToNode, WireError};

use rtec_analysis::admission::AdmissionError;

/// Errors surfaced by the live runtime.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LiveError {
    /// `publish` was refused because the channel's bounded queue is
    /// full and the newcomer (or an in-flight message) would be the
    /// drop victim. Carries the subject uid.
    Backpressure(u64),
    /// A subject has no etag binding in the cluster configuration.
    UnboundSubject(u64),
    /// An event payload does not fit the channel's frame budget.
    PayloadTooLong {
        /// Offered payload length in bytes.
        len: usize,
        /// The channel's maximum.
        max: usize,
    },
    /// The transport failed (timeout, disconnect, malformed datagram).
    Transport(TransportError),
    /// The HRT calendar rejected the cluster's slot requests.
    Admission(AdmissionError),
    /// A configuration error caught while building the cluster.
    Config(String),
    /// A node thread panicked or exited abnormally.
    NodeFailed(u8),
    /// A node kept the broker's turn alive past the reply budget —
    /// it never returned to `Idle` (protocol bug or wedged thread).
    /// Terminal only under [`broker::BrokerConfig::strict`]; otherwise
    /// the supervisor quarantines the node and the cluster keeps
    /// running.
    ProtocolStall {
        /// The node whose turn exceeded the budget.
        node: u8,
        /// How many replies the broker drained before giving up.
        replies: usize,
    },
    /// A node exhausted its restart budget and was declared off, the
    /// live analogue of CAN bus-off without auto-recovery (§3.5).
    /// Non-terminal when supervised: recorded in the
    /// [`cluster::SupervisionReport`] while the cluster keeps running.
    NodeOff {
        /// The node that was declared off.
        node: u8,
    },
    /// A supervised restart could not be carried out (the transport
    /// cannot relink, or the node has no behavior factory to respawn
    /// from).
    RestartUnsupported {
        /// The node that could not be restarted.
        node: u8,
    },
}

impl core::fmt::Display for LiveError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LiveError::Backpressure(uid) => {
                write!(f, "backpressure on subject {uid:#x}: queue full")
            }
            LiveError::UnboundSubject(uid) => {
                write!(f, "subject {uid:#x} has no etag binding")
            }
            LiveError::PayloadTooLong { len, max } => {
                write!(f, "payload of {len} bytes exceeds channel maximum {max}")
            }
            LiveError::Transport(e) => write!(f, "transport failure: {e}"),
            LiveError::Admission(e) => write!(f, "calendar admission failed: {e}"),
            LiveError::Config(msg) => write!(f, "configuration error: {msg}"),
            LiveError::NodeFailed(n) => write!(f, "node {n} thread failed"),
            LiveError::ProtocolStall { node, replies } => write!(
                f,
                "node {node} stalled the turn protocol: {replies} replies without Idle"
            ),
            LiveError::NodeOff { node } => {
                write!(f, "node {node} exhausted its restart budget (bus-off)")
            }
            LiveError::RestartUnsupported { node } => {
                write!(f, "node {node} cannot be restarted on this cluster")
            }
        }
    }
}

impl std::error::Error for LiveError {}

impl From<TransportError> for LiveError {
    fn from(e: TransportError) -> Self {
        LiveError::Transport(e)
    }
}

impl From<AdmissionError> for LiveError {
    fn from(e: AdmissionError) -> Self {
        LiveError::Admission(e)
    }
}
