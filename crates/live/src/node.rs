//! The node runtime: one thread per node, hosting the three channel
//! classes' publisher/subscriber state machines over a [`NodeTransport`].
//!
//! A node is *purely reactive*: every action originates from a broker
//! message (`Welcome`, `Timer`, `Deliver`, `TxDone`, `AbortResult`,
//! `Shutdown`). After handling one message the node sends its requests
//! (submits, aborts, timer arms) followed by exactly one `Idle`, which
//! is how the broker knows the node has quiesced — the lock-step that
//! makes live runs deterministic even over real transports.
//!
//! The class logic is the paper's, shared with the simulator:
//!
//! * **HRT** — calendar slots from [`rtec_analysis::admission`]; the
//!   staged event is activated at the slot's ready instant, submitted
//!   at the Latest Start Time with the reserved priority
//!   [`PRIO_HRT`], retransmitted only while the broker reports a
//!   receiver missed it, and delivered at the slot deadline.
//! * **SRT** — the [`EdfQueue`] extracted into `rtec_core::policy`,
//!   deadline → priority mapping and promotion instants from
//!   [`rtec_analysis::edf`], expiration drops mapped onto the bounded
//!   queue's overflow policy.
//! * **NRT** — fixed-priority FIFO with the fragmentation scheme from
//!   `rtec_core::frag`, one fragment in flight at a time.

use crate::sync::{Arc, Mutex};
use crate::transport::NodeTransport;
use crate::wire::{ToBroker, ToNode};
use crate::LiveError;
use rtec_analysis::admission::{CalendarPlan, PlannedSlot};
use rtec_analysis::edf::{next_promotion_time, priority_for_deadline, PrioritySlotConfig};
use rtec_analysis::wctt::wcct_single;
use rtec_can::bits::BitTiming;
use rtec_can::{CanId, Frame, NodeId, PRIO_HRT, PRIO_NRT_MIN, PRIO_SRT_MAX, PRIO_SRT_MIN};
use rtec_core::channel::{ChannelClass, ChannelException, ChannelSpec, HrtSpec, NrtSpec, SrtSpec};
use rtec_core::event::{Delivery, Event, Subject};
use rtec_core::frag::{try_fragment, Reassembler};
use rtec_core::node::{pack_tag, TagKind};
use rtec_core::policy::{EdfOrder, EdfQueue};
use rtec_sim::{Duration, SharedTraceSink, SourceId, Time};
use std::collections::HashMap;

/// How long a node waits for the next broker message before treating
/// the broker as gone. Generous: under wall pacing the bus may be idle
/// for long stretches.
const RECV_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(60);

/// How far before a slot's ready instant [`NodeCtx::hrt_stage_schedule`]
/// places the application's staging timer.
const STAGE_LEAD: Duration = Duration::from_us(100);

// --------------------------------------------------------------------
// Timer tokens: kind in the top 8 bits, 56-bit payload below.
// --------------------------------------------------------------------

const TK_SHIFT: u32 = 56;
const TK_PAYLOAD_MASK: u64 = (1 << TK_SHIFT) - 1;
const TK_HRT_READY: u64 = 1;
const TK_HRT_LST: u64 = 2;
const TK_HRT_DEADLINE: u64 = 3;
const TK_HRT_DELIVER: u64 = 4;
const TK_SRT_DEADLINE: u64 = 5;
const TK_SRT_EXPIRE: u64 = 6;
const TK_SRT_PROMOTE: u64 = 7;
const TK_APP: u64 = 8;

fn token(kind: u64, payload: u64) -> u64 {
    debug_assert!(payload <= TK_PAYLOAD_MASK);
    (kind << TK_SHIFT) | (payload & TK_PAYLOAD_MASK)
}

/// Payload for the per-occurrence HRT publisher timers.
fn hrt_pub_payload(pub_idx: usize, occ: usize) -> u64 {
    ((pub_idx as u64) << 16) | occ as u64
}

/// Payload for the HRT subscriber delivery timer.
fn hrt_sub_payload(sub_idx: usize, occ: usize, round: u64) -> u64 {
    debug_assert!(round < 1 << 40);
    ((sub_idx as u64) << 48) | ((occ as u64) << 40) | (round & ((1 << 40) - 1))
}

/// Payload for the per-message SRT timers.
fn srt_payload(chan: usize, seq: u32) -> u64 {
    ((chan as u64) << 32) | u64::from(seq)
}

// --------------------------------------------------------------------
// Public configuration and results
// --------------------------------------------------------------------

/// Per-node channel configuration, produced by the cluster builder.
#[derive(Clone, Debug)]
pub struct NodeConfig {
    /// The node's id (also its CAN TxNode field).
    pub node: u8,
    /// Which life of this node this is: 0 for the original spawn,
    /// bumped by the supervisor on every restart. Carried in the
    /// `Hello`/`Welcome` handshake so the broker can tell a rejoin from
    /// a stale replay, and used to adopt the crash snapshot (a node
    /// with `incarnation > 0` resumes its predecessor's SRT/NRT queues
    /// and counters).
    pub incarnation: u32,
    /// Subjects this node publishes, with their channel attributes.
    pub publishes: Vec<(Subject, ChannelSpec)>,
    /// Subjects this node subscribes to (attributes mirror the
    /// publisher's — binding is static in the live runtime).
    pub subscribes: Vec<(Subject, ChannelSpec)>,
    /// Bound on each SRT channel's EDF queue (≥ 2). Overflow maps onto
    /// the expiration-drop policy; when the newcomer itself is the
    /// overflow victim, `publish` returns [`LiveError::Backpressure`].
    pub srt_queue_cap: usize,
    /// Bound on each NRT channel's queue, counted in *frames*.
    pub nrt_queue_cap: usize,
}

/// Cluster-wide immutable configuration shared by every node thread.
#[derive(Clone)]
pub struct SharedConfig {
    /// The HRT slot calendar (also fixes the bit timing).
    pub calendar: Arc<CalendarPlan>,
    /// Bus-time instant of round 0's start.
    pub calendar_start: Time,
    /// Deadline → priority quantization for SRT channels.
    pub prio_cfg: PrioritySlotConfig,
    /// Static subject → etag binding.
    pub etags: Arc<HashMap<u64, u16>>,
    /// Shared delivery log. Appends within a batched completion turn
    /// may interleave across node threads; the cluster runner sorts
    /// the final log into bus order ((wire_ns, node)).
    pub log: Arc<Mutex<Vec<DeliveryRecord>>>,
    /// Shared structured trace sink (same records as the simulator).
    pub sink: SharedTraceSink,
    /// Crash snapshots, keyed by node id: written by a dying node
    /// thread on its way out, adopted by the next incarnation during
    /// its `Welcome` handshake.
    pub snapshots: Arc<Mutex<HashMap<u8, NodeSnapshot>>>,
}

/// State a crashing node thread leaves behind for its next incarnation.
///
/// Deliberately *excludes* each channel's in-flight message: a crash
/// may lose the event that was on the wire, but resuming from the
/// snapshot can never deliver one twice (at-most-once across rejoin).
/// HRT channels are not snapshotted at all — their traffic is periodic
/// and slot-driven, so the next incarnation simply rejoins the calendar.
#[derive(Clone, Default)]
pub struct NodeSnapshot {
    /// Counters accumulated by the dead incarnation(s), so a node's
    /// reported stats span its whole lifetime rather than its last
    /// life.
    pub stats: NodeStats,
    /// Queued (not in-flight) SRT events per channel index. Attributes
    /// carry the original absolute deadline/expiration, so re-publishing
    /// restores EDF order and expiry behavior.
    srt: Vec<Vec<Event>>,
    /// Queued NRT transfers per channel index, as ready-to-submit
    /// fragment payload lists. A partially transmitted front transfer
    /// is dropped with the crash (best-effort class).
    nrt: Vec<Vec<Vec<Vec<u8>>>>,
}

/// One delivery observed at a subscriber, in bus order — the unit the
/// determinism test compares byte-for-byte across runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeliveryRecord {
    /// Subscribing node.
    pub node: u8,
    /// Channel etag.
    pub etag: u16,
    /// Publishing node.
    pub origin: u8,
    /// Channel class.
    pub class: ChannelClass,
    /// Delivered payload bytes.
    pub bytes: Vec<u8>,
    /// Wire-completion bus time (ns).
    pub wire_ns: u64,
    /// Delivery bus time (ns); for HRT this is the slot deadline.
    pub delivered_ns: u64,
}

/// Counters a node thread returns when it shuts down.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Node id.
    pub node: u8,
    /// Events accepted by `publish`.
    pub published: u64,
    /// Deliveries handed to the behavior.
    pub delivered: u64,
    /// Channel exceptions raised (all kinds).
    pub exceptions: u64,
    /// SRT messages dropped by expiration or queue overflow.
    pub expired: u64,
    /// `publish` calls rejected with backpressure.
    pub backpressure: u64,
    /// High-water mark across this node's SRT queues.
    pub srt_peak_queue: usize,
}

/// Application logic hosted on a node. All callbacks run on the node's
/// thread; `ctx` gives access to `publish` and application timers.
pub trait Behavior: Send {
    /// Called once when the broker opens the run.
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        let _ = ctx;
    }
    /// An application timer set via [`NodeCtx::set_timer`] fired.
    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, payload: u64) {
        let _ = (ctx, payload);
    }
    /// An event was delivered on a subscribed channel.
    fn on_delivery(&mut self, ctx: &mut NodeCtx<'_>, delivery: &Delivery) {
        let _ = (ctx, delivery);
    }
    /// A channel exception was raised locally (§2.2's local
    /// notification).
    fn on_exception(&mut self, ctx: &mut NodeCtx<'_>, exception: &ChannelException) {
        let _ = (ctx, exception);
    }
}

/// The API surface handed to [`Behavior`] callbacks.
pub struct NodeCtx<'a> {
    core: &'a mut NodeCore,
}

impl NodeCtx<'_> {
    /// Current bus time.
    pub fn now(&self) -> Time {
        self.core.now
    }

    /// This node's id.
    pub fn node(&self) -> u8 {
        self.core.node
    }

    /// Publish an event on the channel bound to `event.subject`.
    pub fn publish(&mut self, event: Event) -> Result<(), LiveError> {
        self.core.publish(event)
    }

    /// Arm a one-shot application timer at absolute bus time `at`;
    /// `payload` (≤ 56 bits) comes back in [`Behavior::on_timer`].
    pub fn set_timer(&mut self, at: Time, payload: u64) -> Result<(), LiveError> {
        self.core.set_timer(at, token(TK_APP, payload))
    }

    /// For an HRT publication: the instant the application should next
    /// stage an event (just before the channel's next slot-ready time)
    /// and the channel period for rearming. The initial `on_start`
    /// publish covers round 0.
    pub fn hrt_stage_schedule(&self, subject: Subject) -> Option<(Time, Duration)> {
        let PubRef::Hrt(idx) = self.core.pub_by_subject.get(&subject.uid())? else {
            return None;
        };
        let p = &self.core.hrt_pubs[*idx];
        let (_, slot) = p.slots.first()?;
        let first = self.core.shared.calendar_start + slot.start + p.spec.period;
        Some((first.saturating_sub(STAGE_LEAD), p.spec.period))
    }
}

// --------------------------------------------------------------------
// Channel state
// --------------------------------------------------------------------

enum PubRef {
    Hrt(usize),
    Srt(usize),
    Nrt(usize),
}

struct HrtPub {
    subject: Subject,
    etag: u16,
    spec: HrtSpec,
    /// This channel's slot occurrences: (index into `calendar.slots`,
    /// the slot), ordered by start offset.
    slots: Vec<(usize, PlannedSlot)>,
    staged: Option<Event>,
    active: Option<HrtActive>,
}

struct HrtActive {
    occ: usize,
    cal_idx: usize,
    deadline_abs: Time,
    event: Event,
    /// Transmissions submitted so far (first + middleware retx).
    sent: u32,
    succeeded: bool,
    handle: Option<u32>,
}

struct HrtSub {
    subject: Subject,
    etag: u16,
    slots: Vec<(usize, PlannedSlot)>,
    /// First wire arrival for the slot currently awaiting its deadline.
    pending: Option<HrtPending>,
}

struct HrtPending {
    round: u64,
    occ: usize,
    cal_idx: usize,
    event: Event,
    wire: Time,
}

struct SrtMsg {
    seq: u32,
    event: Event,
    deadline: Time,
    expiration: Option<Time>,
}

impl EdfOrder for SrtMsg {
    fn deadline(&self) -> Time {
        self.deadline
    }
    fn seq(&self) -> u32 {
        self.seq
    }
}

struct SrtChan {
    subject: Subject,
    etag: u16,
    spec: SrtSpec,
    queue: EdfQueue<SrtMsg>,
    next_seq: u32,
    /// (seq, handle, current priority) of the submitted head.
    inflight: Option<(u32, u32, u8)>,
    /// (handle, expire?) of an abort awaiting its `AbortResult`.
    aborting: Option<(u32, bool)>,
}

struct NrtTransfer {
    payloads: Vec<Vec<u8>>,
    next: usize,
}

struct NrtChan {
    etag: u16,
    spec: NrtSpec,
    queue: std::collections::VecDeque<NrtTransfer>,
    queued_frames: usize,
    inflight: Option<u32>,
}

struct NrtSub {
    subject: Subject,
    fragmented: bool,
    reass: Reassembler<(u8, u16)>,
}

#[derive(Clone, Copy)]
enum Route {
    Hrt { pub_idx: usize },
    Srt { chan: usize },
    Nrt { chan: usize },
}

enum Notice {
    Delivered(Delivery),
    Exception(ChannelException),
}

// --------------------------------------------------------------------
// The runtime
// --------------------------------------------------------------------

/// Everything a node owns except its behavior (split so behavior
/// callbacks can borrow the rest of the node mutably).
struct NodeCore {
    node: u8,
    incarnation: u32,
    /// Set once the matching `Welcome` was adopted; replays are ignored.
    welcomed: bool,
    /// Wire completion time of the last `Deliver` processed. The wire
    /// is serial and every frame takes non-zero bus time, so completion
    /// times are strictly monotonic per bus — anything at or before the
    /// watermark is a duplicate datagram and is dropped.
    last_deliver_ns: u64,
    now: Time,
    transport: Box<dyn NodeTransport>,
    shared: SharedConfig,
    round: Duration,
    timing: BitTiming,
    src_hrt: SourceId,
    src_srt: SourceId,
    src_nrt: SourceId,
    next_handle: u32,
    routes: HashMap<u32, Route>,
    pub_by_subject: HashMap<u64, PubRef>,
    hrt_pubs: Vec<HrtPub>,
    hrt_subs: Vec<HrtSub>,
    hrt_sub_by_etag: HashMap<u16, usize>,
    srt_chans: Vec<SrtChan>,
    srt_sub_by_etag: HashMap<u16, Subject>,
    nrt_chans: Vec<NrtChan>,
    nrt_subs: Vec<NrtSub>,
    nrt_sub_by_etag: HashMap<u16, usize>,
    srt_queue_cap: usize,
    nrt_queue_cap: usize,
    notices: Vec<Notice>,
    stats: NodeStats,
}

/// A live node: channel state machines plus the application behavior.
pub struct LiveNode {
    core: NodeCore,
    behavior: Box<dyn Behavior>,
}

impl LiveNode {
    /// Build a node from its configuration. Fails if a subject has no
    /// etag binding, an HRT publication has no calendar slot, or a spec
    /// is out of range.
    pub fn new(
        cfg: NodeConfig,
        shared: SharedConfig,
        transport: Box<dyn NodeTransport>,
        behavior: Box<dyn Behavior>,
    ) -> Result<Self, LiveError> {
        let etags = Arc::clone(&shared.etags);
        let calendar = Arc::clone(&shared.calendar);
        let etag_of = move |s: Subject| -> Result<u16, LiveError> {
            etags
                .get(&s.uid())
                .copied()
                .ok_or(LiveError::UnboundSubject(s.uid()))
        };
        let slots_of = move |etag: u16, publisher: Option<u8>| -> Vec<(usize, PlannedSlot)> {
            calendar
                .slots
                .iter()
                .enumerate()
                .filter(|(_, s)| {
                    s.etag == etag && publisher.is_none_or(|p| s.publisher == NodeId(p))
                })
                .map(|(i, s)| (i, *s))
                .collect()
        };
        if cfg.srt_queue_cap < 2 {
            return Err(LiveError::Config("SRT queue capacity must be >= 2".into()));
        }
        let mut core = NodeCore {
            node: cfg.node,
            incarnation: cfg.incarnation,
            welcomed: false,
            last_deliver_ns: 0,
            now: Time::ZERO,
            transport,
            round: shared.calendar.round,
            timing: shared.calendar.timing,
            src_hrt: shared.sink.intern(&format!("node{}.hrtec", cfg.node)),
            src_srt: shared.sink.intern(&format!("node{}.srtec", cfg.node)),
            src_nrt: shared.sink.intern(&format!("node{}.nrtec", cfg.node)),
            shared,
            next_handle: 0,
            routes: HashMap::new(),
            pub_by_subject: HashMap::new(),
            hrt_pubs: Vec::new(),
            hrt_subs: Vec::new(),
            hrt_sub_by_etag: HashMap::new(),
            srt_chans: Vec::new(),
            srt_sub_by_etag: HashMap::new(),
            nrt_chans: Vec::new(),
            nrt_subs: Vec::new(),
            nrt_sub_by_etag: HashMap::new(),
            srt_queue_cap: cfg.srt_queue_cap,
            nrt_queue_cap: cfg.nrt_queue_cap,
            notices: Vec::new(),
            stats: NodeStats {
                node: cfg.node,
                ..NodeStats::default()
            },
        };
        for (subject, spec) in cfg.publishes {
            let etag = etag_of(subject)?;
            let r = match spec {
                ChannelSpec::Hrt(h) => {
                    let slots = slots_of(etag, Some(cfg.node));
                    if slots.is_empty() {
                        return Err(LiveError::Config(format!(
                            "HRT subject {:#x} has no calendar slot for node {}",
                            subject.uid(),
                            cfg.node
                        )));
                    }
                    core.hrt_pubs.push(HrtPub {
                        subject,
                        etag,
                        spec: h,
                        slots,
                        staged: None,
                        active: None,
                    });
                    PubRef::Hrt(core.hrt_pubs.len() - 1)
                }
                ChannelSpec::Srt(s) => {
                    core.srt_chans.push(SrtChan {
                        subject,
                        etag,
                        spec: s,
                        queue: EdfQueue::new(),
                        next_seq: 0,
                        inflight: None,
                        aborting: None,
                    });
                    PubRef::Srt(core.srt_chans.len() - 1)
                }
                ChannelSpec::Nrt(nr) => {
                    rtec_core::channel::validate_nrt_priority(&nr)
                        .map_err(|e| LiveError::Config(e.to_string()))?;
                    core.nrt_chans.push(NrtChan {
                        etag,
                        spec: nr,
                        queue: std::collections::VecDeque::new(),
                        queued_frames: 0,
                        inflight: None,
                    });
                    PubRef::Nrt(core.nrt_chans.len() - 1)
                }
            };
            core.pub_by_subject.insert(subject.uid(), r);
        }
        for (subject, spec) in cfg.subscribes {
            let etag = etag_of(subject)?;
            match spec {
                ChannelSpec::Hrt(_) => {
                    core.hrt_subs.push(HrtSub {
                        subject,
                        etag,
                        slots: slots_of(etag, None),
                        pending: None,
                    });
                    core.hrt_sub_by_etag.insert(etag, core.hrt_subs.len() - 1);
                }
                ChannelSpec::Srt(_) => {
                    core.srt_sub_by_etag.insert(etag, subject);
                }
                ChannelSpec::Nrt(nr) => {
                    core.nrt_subs.push(NrtSub {
                        subject,
                        fragmented: nr.fragmented,
                        reass: Reassembler::new(),
                    });
                    core.nrt_sub_by_etag.insert(etag, core.nrt_subs.len() - 1);
                }
            }
        }
        Ok(LiveNode { core, behavior })
    }

    /// Run the node to completion (until the broker sends `Shutdown`).
    /// This is the node thread's main; it returns the node's counters.
    ///
    /// If the transport fails mid-run — the broker severed the link
    /// after declaring this node down, or the thread is being chaos
    /// killed — the node drains its channel state into a
    /// [`NodeSnapshot`] before exiting, so a supervised restart can
    /// resume where this incarnation left off.
    pub fn run(mut self) -> Result<NodeStats, LiveError> {
        let result = self.run_loop();
        if result.is_err() {
            self.core.store_snapshot();
        }
        result
    }

    fn run_loop(&mut self) -> Result<NodeStats, LiveError> {
        loop {
            let msg = self
                .core
                .transport
                .recv(RECV_TIMEOUT)
                .map_err(LiveError::Transport)?;
            let shutdown = self.handle(msg)?;
            self.drain_notices()?;
            if shutdown {
                let node = self.core.node;
                self.core.send(ToBroker::Done { node })?;
                let mut stats = self.core.stats.clone();
                stats.srt_peak_queue = self
                    .core
                    .srt_chans
                    .iter()
                    .map(|c| c.queue.peak())
                    .max()
                    .unwrap_or(0);
                return Ok(stats);
            }
            self.core.send(ToBroker::Idle)?;
        }
    }

    fn handle(&mut self, msg: ToNode) -> Result<bool, LiveError> {
        let LiveNode { core, behavior } = self;
        match msg {
            ToNode::Welcome {
                now_ns,
                incarnation,
            } => {
                // Adoption guard: only the Welcome addressed to *this*
                // incarnation opens the run, exactly once. A duplicate
                // or stale-replay Welcome (UDP) must not re-arm the
                // calendar or re-run `on_start`.
                if incarnation != core.incarnation || core.welcomed {
                    return Ok(false);
                }
                core.welcomed = true;
                core.now = Time::from_ns(now_ns);
                core.arm_hrt_ready_timers()?;
                if core.incarnation > 0 {
                    core.resume_snapshot()?;
                }
                behavior.on_start(&mut NodeCtx { core });
            }
            ToNode::Ping { nonce } => {
                let (node, incarnation) = (core.node, core.incarnation);
                core.send(ToBroker::Pong {
                    node,
                    incarnation,
                    nonce,
                })?;
            }
            ToNode::Timer { token: tok, now_ns } => {
                core.now = Time::from_ns(now_ns);
                let kind = tok >> TK_SHIFT;
                let payload = tok & TK_PAYLOAD_MASK;
                if kind == TK_APP {
                    behavior.on_timer(&mut NodeCtx { core }, payload);
                } else {
                    core.on_timer(kind, payload)?;
                }
            }
            ToNode::Deliver {
                completed_ns,
                frame,
            } => {
                // At-most-once across duplicates: completion times are
                // strictly monotonic on a serial wire, so a repeat of
                // an already-seen instant is a duplicated datagram.
                if completed_ns <= core.last_deliver_ns {
                    return Ok(false);
                }
                core.last_deliver_ns = completed_ns;
                core.now = Time::from_ns(completed_ns);
                core.on_deliver(&frame)?;
            }
            ToNode::TxDone {
                handle,
                tag,
                all_received,
                completed_ns,
            } => {
                core.now = Time::from_ns(completed_ns);
                core.on_tx_done(handle, tag, all_received)?;
            }
            ToNode::AbortResult {
                handle,
                tag,
                aborted,
            } => {
                core.on_abort_result(handle, tag, aborted)?;
            }
            ToNode::Shutdown => return Ok(true),
        }
        Ok(false)
    }

    /// Hand queued deliveries/exceptions to the behavior; its callbacks
    /// may publish (appending more notices), so loop until quiet.
    fn drain_notices(&mut self) -> Result<(), LiveError> {
        while !self.core.notices.is_empty() {
            let batch = std::mem::take(&mut self.core.notices);
            let LiveNode { core, behavior } = self;
            for notice in batch {
                match notice {
                    Notice::Delivered(d) => behavior.on_delivery(&mut NodeCtx { core }, &d),
                    Notice::Exception(e) => behavior.on_exception(&mut NodeCtx { core }, &e),
                }
            }
        }
        Ok(())
    }
}

impl NodeCore {
    fn send(&mut self, msg: ToBroker) -> Result<(), LiveError> {
        self.transport.send(msg).map_err(LiveError::Transport)
    }

    fn set_timer(&mut self, at: Time, token: u64) -> Result<(), LiveError> {
        self.send(ToBroker::TimerReq {
            at_ns: at.as_ns(),
            token,
        })
    }

    fn alloc_handle(&mut self, route: Route) -> u32 {
        let h = self.next_handle;
        self.next_handle = self.next_handle.wrapping_add(1);
        self.routes.insert(h, route);
        h
    }

    fn submit(&mut self, frame: Frame, tag: u64, route: Route) -> Result<u32, LiveError> {
        let handle = self.alloc_handle(route);
        self.send(ToBroker::Submit { handle, tag, frame })?;
        Ok(handle)
    }

    fn push_exception(&mut self, exc: ChannelException) {
        self.stats.exceptions += 1;
        self.notices.push(Notice::Exception(exc));
    }

    fn record_delivery(&mut self, etag: u16, class: ChannelClass, delivery: Delivery) {
        let origin = delivery
            .event
            .attributes
            .origin
            .map(|n| n.0)
            .unwrap_or(u8::MAX);
        let rec = DeliveryRecord {
            node: self.node,
            etag,
            origin,
            class,
            bytes: delivery.event.content.clone(),
            wire_ns: delivery.wire_completed_at.as_ns(),
            delivered_ns: delivery.delivered_at.as_ns(),
        };
        self.shared
            .log
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(rec);
        self.stats.delivered += 1;
        self.notices.push(Notice::Delivered(delivery));
    }

    // ----------------------------------------------------------------
    // Crash snapshot / rejoin resync
    // ----------------------------------------------------------------

    /// Drain this incarnation's channel state into the shared snapshot
    /// map, called on the way out of a failed run. In-flight messages
    /// are excluded (see [`NodeSnapshot`]).
    fn store_snapshot(&mut self) {
        let srt: Vec<Vec<Event>> = self
            .srt_chans
            .iter()
            .map(|c| {
                let inflight_seq = c.inflight.map(|(s, _, _)| s);
                (0..c.queue.len())
                    .filter(|&i| Some(c.queue[i].seq) != inflight_seq)
                    .map(|i| c.queue[i].event.clone())
                    .collect()
            })
            .collect();
        let nrt: Vec<Vec<Vec<Vec<u8>>>> = self
            .nrt_chans
            .iter()
            .map(|c| {
                c.queue
                    .iter()
                    .enumerate()
                    .filter(|&(i, t)| !(i == 0 && (t.next > 0 || c.inflight.is_some())))
                    .map(|(_, t)| t.payloads.clone())
                    .collect()
            })
            .collect();
        let snap = NodeSnapshot {
            stats: self.stats.clone(),
            srt,
            nrt,
        };
        self.shared
            .snapshots
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(self.node, snap);
    }

    /// Adopt the predecessor incarnation's snapshot during the rejoin
    /// `Welcome`: re-publish its queued SRT events (their absolute
    /// deadlines restore EDF order; stale ones expire immediately),
    /// requeue its NRT transfers, and carry its counters forward.
    fn resume_snapshot(&mut self) -> Result<(), LiveError> {
        let snap = self
            .shared
            .snapshots
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&self.node);
        let Some(snap) = snap else {
            return Ok(());
        };
        for events in snap.srt {
            for event in events {
                if let Err(LiveError::Transport(e)) = self.publish(event) {
                    return Err(LiveError::Transport(e));
                }
            }
        }
        for (chan, transfers) in snap.nrt.into_iter().enumerate() {
            if chan >= self.nrt_chans.len() {
                break;
            }
            for payloads in transfers {
                let c = &mut self.nrt_chans[chan];
                c.queued_frames += payloads.len();
                c.queue.push_back(NrtTransfer { payloads, next: 0 });
            }
            self.nrt_dispatch(chan)?;
        }
        // The re-publishes above were already counted by the life that
        // first accepted them: the carried counters replace, not add to,
        // whatever the resume itself just bumped.
        self.stats = snap.stats;
        Ok(())
    }

    // ----------------------------------------------------------------
    // Publishing
    // ----------------------------------------------------------------

    fn publish(&mut self, event: Event) -> Result<(), LiveError> {
        let subject = event.subject;
        let Some(r) = self.pub_by_subject.get(&subject.uid()) else {
            return Err(LiveError::UnboundSubject(subject.uid()));
        };
        match *r {
            PubRef::Hrt(idx) => self.publish_hrt(idx, event),
            PubRef::Srt(idx) => self.publish_srt(idx, event),
            PubRef::Nrt(idx) => self.publish_nrt(idx, event),
        }
    }

    /// HRT publish: stage for the next slot (most-recent-value
    /// semantics — a later publish before the ready instant overwrites).
    fn publish_hrt(&mut self, idx: usize, event: Event) -> Result<(), LiveError> {
        let p = &mut self.hrt_pubs[idx];
        if event.content.len() > p.spec.dlc as usize {
            return Err(LiveError::PayloadTooLong {
                len: event.content.len(),
                max: p.spec.dlc as usize,
            });
        }
        p.staged = Some(event);
        self.stats.published += 1;
        Ok(())
    }

    fn publish_srt(&mut self, idx: usize, mut event: Event) -> Result<(), LiveError> {
        if event.content.len() > 8 {
            return Err(LiveError::PayloadTooLong {
                len: event.content.len(),
                max: 8,
            });
        }
        let now = self.now;
        let (etag, node) = (self.srt_chans[idx].etag, self.node);
        let c = &mut self.srt_chans[idx];
        let deadline = event
            .attributes
            .deadline
            .unwrap_or(now + c.spec.default_deadline);
        let expiration = event
            .attributes
            .expiration
            .or(c.spec.default_expiration.map(|d| now + d));
        event.attributes.deadline = Some(deadline);
        event.attributes.expiration = expiration;
        event.attributes.timestamp = Some(now);

        // Bounded queue: overflow drops the entry EDF would serve last.
        if c.queue.len() >= self.srt_queue_cap {
            let victim = c.queue.overflow_victim().expect("cap >= 2, queue full");
            let v = &c.queue[victim];
            let victim_is_newcomer = deadline >= v.deadline();
            let victim_inflight = c.inflight.is_some_and(|(s, _, _)| s == v.seq());
            if victim_is_newcomer || victim_inflight {
                self.stats.backpressure += 1;
                return Err(LiveError::Backpressure(event.subject.uid()));
            }
            let dropped = c.queue.remove(victim);
            let subject = c.subject;
            let (src, tag) = (self.src_srt, pack_tag(TagKind::Srt, etag, dropped.seq));
            self.shared.sink.emit_fields(
                now,
                src,
                "srt_expire",
                &[
                    ("etag", u64::from(etag)),
                    ("seq", u64::from(dropped.seq)),
                    ("node", u64::from(node)),
                    ("tag", tag),
                ],
            );
            self.stats.expired += 1;
            self.push_exception(ChannelException::Expired {
                subject,
                expiration: dropped.expiration.unwrap_or(now),
            });
        }

        let c = &mut self.srt_chans[idx];
        let seq = c.next_seq;
        c.next_seq = c.next_seq.wrapping_add(1);
        c.queue.push(SrtMsg {
            seq,
            event,
            deadline,
            expiration,
        });
        self.stats.published += 1;
        self.set_timer(deadline, token(TK_SRT_DEADLINE, srt_payload(idx, seq)))?;
        if let Some(exp) = expiration {
            self.set_timer(exp, token(TK_SRT_EXPIRE, srt_payload(idx, seq)))?;
        }
        self.srt_reconsider(idx)
    }

    fn publish_nrt(&mut self, idx: usize, event: Event) -> Result<(), LiveError> {
        let now = self.now;
        let node = self.node;
        let c = &self.nrt_chans[idx];
        let (etag, fragmented) = (c.etag, c.spec.fragmented);
        let payloads = if fragmented {
            try_fragment(&event.content).map_err(|_| LiveError::PayloadTooLong {
                len: event.content.len(),
                max: rtec_core::frag::MAX_MESSAGE_LEN,
            })?
        } else {
            if event.content.len() > 8 {
                return Err(LiveError::PayloadTooLong {
                    len: event.content.len(),
                    max: 8,
                });
            }
            vec![event.content.clone()]
        };
        if self.nrt_chans[idx].queued_frames + payloads.len() > self.nrt_queue_cap {
            self.stats.backpressure += 1;
            return Err(LiveError::Backpressure(event.subject.uid()));
        }
        self.shared.sink.emit_fields(
            now,
            self.src_nrt,
            "nrt_enqueue",
            &[
                ("etag", u64::from(etag)),
                ("node", u64::from(node)),
                ("frags", payloads.len() as u64),
                ("bytes", event.content.len() as u64),
                ("fragmented", u64::from(fragmented)),
            ],
        );
        let c = &mut self.nrt_chans[idx];
        c.queued_frames += payloads.len();
        c.queue.push_back(NrtTransfer { payloads, next: 0 });
        self.stats.published += 1;
        self.nrt_dispatch(idx)
    }

    // ----------------------------------------------------------------
    // Timers
    // ----------------------------------------------------------------

    fn arm_hrt_ready_timers(&mut self) -> Result<(), LiveError> {
        let arms: Vec<(Time, u64)> = self
            .hrt_pubs
            .iter()
            .enumerate()
            .flat_map(|(pi, p)| {
                let base = self.shared.calendar_start;
                p.slots
                    .iter()
                    .enumerate()
                    .map(move |(occ, (_, s))| {
                        (
                            base + s.start,
                            token(TK_HRT_READY, hrt_pub_payload(pi, occ)),
                        )
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        for (at, tok) in arms {
            self.set_timer(at, tok)?;
        }
        Ok(())
    }

    fn on_timer(&mut self, kind: u64, payload: u64) -> Result<(), LiveError> {
        match kind {
            TK_HRT_READY => {
                let (pi, occ) = ((payload >> 16) as usize, (payload & 0xFFFF) as usize);
                self.on_hrt_ready(pi, occ)
            }
            TK_HRT_LST => {
                let (pi, occ) = ((payload >> 16) as usize, (payload & 0xFFFF) as usize);
                self.on_hrt_lst(pi, occ)
            }
            TK_HRT_DEADLINE => {
                let (pi, occ) = ((payload >> 16) as usize, (payload & 0xFFFF) as usize);
                self.on_hrt_deadline(pi, occ)
            }
            TK_HRT_DELIVER => {
                let si = (payload >> 48) as usize;
                let occ = ((payload >> 40) & 0xFF) as usize;
                let round = payload & ((1 << 40) - 1);
                self.on_hrt_deliver(si, occ, round)
            }
            TK_SRT_DEADLINE => {
                let (chan, seq) = ((payload >> 32) as usize, payload as u32);
                self.on_srt_deadline(chan, seq)
            }
            TK_SRT_EXPIRE => {
                let (chan, seq) = ((payload >> 32) as usize, payload as u32);
                self.on_srt_expire(chan, seq)
            }
            TK_SRT_PROMOTE => {
                let (chan, seq) = ((payload >> 32) as usize, payload as u32);
                self.on_srt_promote(chan, seq)
            }
            _ => Ok(()), // unknown kinds are ignored
        }
    }

    fn on_hrt_ready(&mut self, pi: usize, occ: usize) -> Result<(), LiveError> {
        let p = &mut self.hrt_pubs[pi];
        let (cal_idx, slot) = p.slots[occ];
        let round = {
            let elapsed = self.now.saturating_since(self.shared.calendar_start);
            elapsed.saturating_sub(slot.start).as_ns() / self.round.as_ns()
        };
        let base = self.shared.calendar_start + self.round * round;
        let etag = p.etag;
        let staged = p.staged.take();
        let activated = staged.is_some();
        if let Some(event) = staged {
            p.active = Some(HrtActive {
                occ,
                cal_idx,
                deadline_abs: base + slot.deadline(),
                event,
                sent: 0,
                succeeded: false,
                handle: None,
            });
        }
        self.shared.sink.emit_fields(
            self.now,
            self.src_hrt,
            "slot_ready",
            &[
                ("etag", u64::from(etag)),
                ("round", round),
                ("slot", cal_idx as u64),
                ("node", u64::from(self.node)),
            ],
        );
        // Rearm for the next round; arm LST + deadline for this one.
        self.set_timer(
            base + self.round + slot.start,
            token(TK_HRT_READY, hrt_pub_payload(pi, occ)),
        )?;
        if activated {
            self.set_timer(
                base + slot.lst(),
                token(TK_HRT_LST, hrt_pub_payload(pi, occ)),
            )?;
            self.set_timer(
                base + slot.deadline(),
                token(TK_HRT_DEADLINE, hrt_pub_payload(pi, occ)),
            )?;
        }
        Ok(())
    }

    fn on_hrt_lst(&mut self, pi: usize, occ: usize) -> Result<(), LiveError> {
        let p = &mut self.hrt_pubs[pi];
        let Some(act) = p.active.as_ref() else {
            return Ok(());
        };
        if act.occ != occ || act.sent > 0 {
            return Ok(());
        }
        let frame = Frame::new(
            CanId::new(PRIO_HRT, self.node, p.etag),
            &act.event.content.clone(),
        );
        let tag = pack_tag(TagKind::Hrt, p.etag, act.cal_idx as u32);
        let handle = self.submit(frame, tag, Route::Hrt { pub_idx: pi })?;
        let act = self.hrt_pubs[pi].active.as_mut().expect("checked above");
        act.handle = Some(handle);
        act.sent = 1;
        Ok(())
    }

    fn on_hrt_deadline(&mut self, pi: usize, occ: usize) -> Result<(), LiveError> {
        let p = &mut self.hrt_pubs[pi];
        let Some(act) = p.active.take_if(|a| a.occ == occ) else {
            return Ok(());
        };
        let subject = p.subject;
        if let Some(handle) = act.handle {
            self.send(ToBroker::Abort { handle })?;
        }
        if act.sent > 0 && !act.succeeded {
            self.push_exception(ChannelException::RedundancyExhausted {
                subject,
                attempts: act.sent,
            });
        }
        Ok(())
    }

    fn on_hrt_deliver(&mut self, si: usize, occ: usize, round: u64) -> Result<(), LiveError> {
        let s = &mut self.hrt_subs[si];
        let Some(pend) = s.pending.take_if(|p| p.round == round && p.occ == occ) else {
            return Ok(());
        };
        let (etag, node) = (s.etag, self.node);
        self.shared.sink.emit_fields(
            self.now,
            self.src_hrt,
            "hrt_deliver",
            &[
                ("etag", u64::from(etag)),
                ("round", round),
                ("slot", pend.cal_idx as u64),
                ("node", u64::from(node)),
                ("wire", pend.wire.as_ns()),
            ],
        );
        let delivery = Delivery {
            event: pend.event,
            delivered_at: self.now,
            wire_completed_at: pend.wire,
        };
        self.record_delivery(etag, ChannelClass::Hrt, delivery);
        Ok(())
    }

    fn on_srt_deadline(&mut self, chan: usize, seq: u32) -> Result<(), LiveError> {
        let c = &self.srt_chans[chan];
        let Some(idx) = c.queue.find(seq) else {
            return Ok(()); // already transmitted or dropped
        };
        let subject = c.subject;
        let deadline = c.queue[idx].deadline;
        self.push_exception(ChannelException::DeadlineMissed { subject, deadline });
        Ok(())
    }

    fn on_srt_expire(&mut self, chan: usize, seq: u32) -> Result<(), LiveError> {
        let c = &mut self.srt_chans[chan];
        let Some(idx) = c.queue.find(seq) else {
            return Ok(());
        };
        if let Some((iseq, handle, _)) = c.inflight {
            if iseq == seq {
                // Submitted: try to pull it back before it reaches the
                // wire. If an abort is already pending, upgrade it to
                // an expiration.
                match c.aborting.as_mut() {
                    Some((ah, expire)) if *ah == handle => *expire = true,
                    Some(_) => {}
                    None => {
                        c.aborting = Some((handle, true));
                        self.send(ToBroker::Abort { handle })?;
                    }
                }
                return Ok(());
            }
        }
        self.srt_drop_expired(chan, idx)?;
        self.srt_reconsider(chan)
    }

    /// Drop a queued (not in-flight) SRT message as expired: trace,
    /// exception, counters.
    fn srt_drop_expired(&mut self, chan: usize, idx: usize) -> Result<(), LiveError> {
        let c = &mut self.srt_chans[chan];
        let msg = c.queue.remove(idx);
        let (etag, subject) = (c.etag, c.subject);
        let tag = pack_tag(TagKind::Srt, etag, msg.seq);
        self.shared.sink.emit_fields(
            self.now,
            self.src_srt,
            "srt_expire",
            &[
                ("etag", u64::from(etag)),
                ("seq", u64::from(msg.seq)),
                ("node", u64::from(self.node)),
                ("tag", tag),
            ],
        );
        self.stats.expired += 1;
        self.push_exception(ChannelException::Expired {
            subject,
            expiration: msg.expiration.unwrap_or(self.now),
        });
        Ok(())
    }

    fn on_srt_promote(&mut self, chan: usize, seq: u32) -> Result<(), LiveError> {
        let c = &self.srt_chans[chan];
        let Some((iseq, handle, prio)) = c.inflight else {
            return Ok(());
        };
        if iseq != seq || c.aborting.is_some() {
            return Ok(());
        }
        let Some(idx) = c.queue.find(seq) else {
            return Ok(());
        };
        let deadline = c.queue[idx].deadline;
        let etag = c.etag;
        let new_prio = priority_for_deadline(deadline, self.now, &self.shared.prio_cfg);
        if new_prio != prio {
            self.send(ToBroker::UpdateId {
                handle,
                raw_id: CanId::new(new_prio, self.node, etag).raw(),
            })?;
            self.srt_chans[chan].inflight = Some((seq, handle, new_prio));
        }
        if let Some(at) = next_promotion_time(deadline, self.now, &self.shared.prio_cfg) {
            self.set_timer(at, token(TK_SRT_PROMOTE, srt_payload(chan, seq)))?;
        }
        Ok(())
    }

    /// Re-evaluate an SRT channel's head: submit it if the wire slot is
    /// free, or abort the in-flight message if EDF changed its mind.
    fn srt_reconsider(&mut self, chan: usize) -> Result<(), LiveError> {
        let c = &self.srt_chans[chan];
        if c.aborting.is_some() {
            return Ok(()); // decision pending at the broker
        }
        let Some(head_idx) = c.queue.head_index() else {
            return Ok(());
        };
        let head_seq = c.queue[head_idx].seq;
        match c.inflight {
            None => {
                let msg = &c.queue[head_idx];
                let (etag, deadline, seq) = (c.etag, msg.deadline, msg.seq);
                let content = msg.event.content.clone();
                let prio = priority_for_deadline(deadline, self.now, &self.shared.prio_cfg);
                let frame = Frame::new(CanId::new(prio, self.node, etag), &content);
                let tag = pack_tag(TagKind::Srt, etag, seq);
                let handle = self.submit(frame, tag, Route::Srt { chan })?;
                self.srt_chans[chan].inflight = Some((seq, handle, prio));
                if let Some(at) = next_promotion_time(deadline, self.now, &self.shared.prio_cfg) {
                    self.set_timer(at, token(TK_SRT_PROMOTE, srt_payload(chan, seq)))?;
                }
                Ok(())
            }
            Some((iseq, handle, _)) if iseq != head_seq => {
                // A more urgent message arrived: reclaim the wire slot.
                self.srt_chans[chan].aborting = Some((handle, false));
                self.send(ToBroker::Abort { handle })
            }
            Some(_) => Ok(()),
        }
    }

    fn nrt_dispatch(&mut self, chan: usize) -> Result<(), LiveError> {
        let c = &self.nrt_chans[chan];
        if c.inflight.is_some() {
            return Ok(());
        }
        let Some(t) = c.queue.front() else {
            return Ok(());
        };
        let (etag, prio) = (c.etag, c.spec.priority);
        let payload = t.payloads[t.next].clone();
        // T5: the tag's sequence field is the fragment index.
        let tag = pack_tag(TagKind::Nrt, etag, t.next as u32);
        let frame = Frame::new(CanId::new(prio, self.node, etag), &payload);
        let handle = self.submit(frame, tag, Route::Nrt { chan })?;
        self.nrt_chans[chan].inflight = Some(handle);
        Ok(())
    }

    // ----------------------------------------------------------------
    // Wire events
    // ----------------------------------------------------------------

    fn on_deliver(&mut self, frame: &Frame) -> Result<(), LiveError> {
        let id = frame.id;
        let (prio, origin, etag) = (id.priority(), id.txnode(), id.etag());
        if prio == PRIO_HRT {
            self.on_deliver_hrt(etag, origin, frame.payload().to_vec())
        } else if (PRIO_SRT_MIN..=PRIO_SRT_MAX).contains(&prio) {
            self.on_deliver_srt(etag, origin, frame.payload().to_vec())
        } else if prio >= PRIO_NRT_MIN {
            self.on_deliver_nrt(etag, origin, frame.payload().to_vec())
        } else {
            Ok(())
        }
    }

    fn on_deliver_hrt(&mut self, etag: u16, origin: u8, payload: Vec<u8>) -> Result<(), LiveError> {
        let Some(&si) = self.hrt_sub_by_etag.get(&etag) else {
            return Ok(()); // not subscribed
        };
        let now = self.now;
        let cal_start = self.shared.calendar_start;
        if now < cal_start {
            return Ok(());
        }
        let elapsed = now.saturating_since(cal_start);
        let round = elapsed.as_ns() / self.round.as_ns();
        let off = Duration::from_ns(elapsed.as_ns() % self.round.as_ns());
        let s = &mut self.hrt_subs[si];
        // Locate the slot occurrence whose transmission window covers
        // this wire completion.
        let Some((occ, (cal_idx, slot))) = s
            .slots
            .iter()
            .enumerate()
            .find(|(_, (_, sl))| off > sl.start && off <= sl.deadline())
            .map(|(occ, &(ci, sl))| (occ, (ci, sl)))
        else {
            return Ok(()); // outside any slot window
        };
        if s.pending.is_some() {
            return Ok(()); // redundant retransmission of the same event
        }
        let subject = s.subject;
        let mut event = Event::new(subject, payload);
        event.attributes.origin = Some(NodeId(origin));
        s.pending = Some(HrtPending {
            round,
            occ,
            cal_idx,
            event,
            wire: now,
        });
        // Deferred delivery: exactly at the slot deadline.
        self.set_timer(
            cal_start + self.round * round + slot.deadline(),
            token(TK_HRT_DELIVER, hrt_sub_payload(si, occ, round)),
        )
    }

    fn on_deliver_srt(&mut self, etag: u16, origin: u8, payload: Vec<u8>) -> Result<(), LiveError> {
        let Some(&subject) = self.srt_sub_by_etag.get(&etag) else {
            return Ok(());
        };
        let mut event = Event::new(subject, payload);
        event.attributes.origin = Some(NodeId(origin));
        let delivery = Delivery {
            event,
            delivered_at: self.now,
            wire_completed_at: self.now,
        };
        self.record_delivery(etag, ChannelClass::Srt, delivery);
        Ok(())
    }

    fn on_deliver_nrt(&mut self, etag: u16, origin: u8, payload: Vec<u8>) -> Result<(), LiveError> {
        let Some(&si) = self.nrt_sub_by_etag.get(&etag) else {
            return Ok(());
        };
        let s = &mut self.nrt_subs[si];
        let subject = s.subject;
        let node = self.node;
        if !s.fragmented {
            let mut event = Event::new(subject, payload);
            event.attributes.origin = Some(NodeId(origin));
            let delivery = Delivery {
                event,
                delivered_at: self.now,
                wire_completed_at: self.now,
            };
            self.record_delivery(etag, ChannelClass::Nrt, delivery);
            return Ok(());
        }
        match s.reass.push((origin, etag), &payload) {
            Ok(Some(data)) => {
                self.shared.sink.emit_fields(
                    self.now,
                    self.src_nrt,
                    "nrt_complete",
                    &[
                        ("etag", u64::from(etag)),
                        ("node", u64::from(node)),
                        ("origin", u64::from(origin)),
                        ("bytes", data.len() as u64),
                    ],
                );
                let mut event = Event::new(subject, data);
                event.attributes.origin = Some(NodeId(origin));
                let delivery = Delivery {
                    event,
                    delivered_at: self.now,
                    wire_completed_at: self.now,
                };
                self.record_delivery(etag, ChannelClass::Nrt, delivery);
            }
            Ok(None) => {}
            Err(_) => {
                self.shared.sink.emit_fields(
                    self.now,
                    self.src_nrt,
                    "frag_error",
                    &[
                        ("etag", u64::from(etag)),
                        ("node", u64::from(node)),
                        ("origin", u64::from(origin)),
                    ],
                );
                self.nrt_subs[si].reass.reset(&(origin, etag));
            }
        }
        Ok(())
    }

    fn on_tx_done(&mut self, handle: u32, _tag: u64, all: bool) -> Result<(), LiveError> {
        let Some(route) = self.routes.remove(&handle) else {
            return Ok(()); // completed after its slot was cleaned up
        };
        match route {
            Route::Hrt { pub_idx } => {
                let k = self.hrt_pubs[pub_idx].spec.omission_degree;
                let dlc = self.hrt_pubs[pub_idx].spec.dlc;
                let p = &mut self.hrt_pubs[pub_idx];
                let Some(act) = p.active.as_mut() else {
                    return Ok(());
                };
                if act.handle != Some(handle) {
                    return Ok(());
                }
                act.handle = None;
                if all {
                    // Consistent reception: stop redundant transmission
                    // early, reclaiming the rest of the slot (§3.2).
                    act.succeeded = true;
                    return Ok(());
                }
                // A receiver missed the frame: retransmit while the
                // redundancy budget and the slot's remaining time allow.
                let retx_fits = self.now + wcct_single(dlc, self.timing) <= act.deadline_abs;
                if act.sent <= k && retx_fits {
                    let etag = p.etag;
                    let frame = Frame::new(
                        CanId::new(PRIO_HRT, self.node, etag),
                        &act.event.content.clone(),
                    );
                    let tag = pack_tag(TagKind::Hrt, etag, act.cal_idx as u32);
                    let h = self.submit(frame, tag, Route::Hrt { pub_idx })?;
                    let act = self.hrt_pubs[pub_idx]
                        .active
                        .as_mut()
                        .expect("still active");
                    act.handle = Some(h);
                    act.sent += 1;
                }
                Ok(())
            }
            Route::Srt { chan } => {
                let c = &mut self.srt_chans[chan];
                if let Some((seq, h, _)) = c.inflight {
                    if h == handle {
                        c.inflight = None;
                        if let Some(idx) = c.queue.find(seq) {
                            c.queue.remove(idx);
                        }
                        if c.aborting.is_some_and(|(ah, _)| ah == handle) {
                            // The abort raced the wire and lost; the
                            // message went out, so it did not expire.
                            c.aborting = None;
                        }
                    }
                }
                self.srt_reconsider(chan)
            }
            Route::Nrt { chan } => {
                let c = &mut self.nrt_chans[chan];
                if c.inflight == Some(handle) {
                    c.inflight = None;
                    c.queued_frames = c.queued_frames.saturating_sub(1);
                    if let Some(t) = c.queue.front_mut() {
                        t.next += 1;
                        if t.next == t.payloads.len() {
                            c.queue.pop_front();
                        }
                    }
                }
                self.nrt_dispatch(chan)
            }
        }
    }

    fn on_abort_result(&mut self, handle: u32, _tag: u64, aborted: bool) -> Result<(), LiveError> {
        let Some(&route) = self.routes.get(&handle) else {
            return Ok(()); // TxDone already consumed the handle
        };
        if aborted {
            self.routes.remove(&handle);
        }
        match route {
            Route::Hrt { pub_idx } => {
                if aborted {
                    if let Some(act) = self.hrt_pubs[pub_idx].active.as_mut() {
                        if act.handle == Some(handle) {
                            act.handle = None;
                        }
                    }
                }
                Ok(())
            }
            Route::Srt { chan } => {
                let c = &mut self.srt_chans[chan];
                let Some((ah, expire)) = c.aborting else {
                    return Ok(());
                };
                if ah != handle {
                    return Ok(());
                }
                c.aborting = None;
                if !aborted {
                    // On the wire (or already completed): TxDone rules.
                    return Ok(());
                }
                let seq = match c.inflight.take_if(|(_, h, _)| *h == handle) {
                    Some((seq, _, _)) => seq,
                    None => return self.srt_reconsider(chan),
                };
                if expire {
                    if let Some(idx) = self.srt_chans[chan].queue.find(seq) {
                        self.srt_drop_expired(chan, idx)?;
                    }
                }
                // !expire: the message stays queued and is resubmitted
                // whenever EDF makes it the head again.
                self.srt_reconsider(chan)
            }
            Route::Nrt { chan } => {
                if aborted && self.nrt_chans[chan].inflight == Some(handle) {
                    self.nrt_chans[chan].inflight = None;
                }
                Ok(())
            }
        }
    }
}
