//! Deterministic chaos harness for the live runtime.
//!
//! A [`ChaosPlan`] is a *seeded* fault plan executed by transport
//! wrappers, so every injected fault — node kills, datagram drops,
//! duplicates, delays, a broker stall — is a pure function of the seed
//! and the message stream. Combined with [`crate::clock::Pace::Virtual`]
//! (where wall-clock delays do not move bus time) this makes two
//! same-seed chaos runs produce byte-identical delivery logs, which is
//! the property the determinism regression pins down.
//!
//! The wrappers preserve the lock-step turn protocol exactly:
//!
//! * a **dropped** `Deliver` owes the broker one synthetic `Idle` (the
//!   node never saw the message, so it will not answer) and forces the
//!   sender's next `TxDone` to `all_received = false`, so HRT time
//!   redundancy reacts to the loss exactly as it would to a lossy wire;
//! * a **duplicated** `Deliver` is deduplicated by the node's wire-time
//!   watermark, whose whole turn reply is exactly one `Idle` — the
//!   wrapper swallows one matching `Idle` from the stream (FIFO makes
//!   either one equivalent);
//! * **delays** and the **broker stall** are bounded wall-clock sleeps,
//!   which perturb real thread interleavings without touching bus time;
//! * a **kill** gives one incarnation of a node a finite receive
//!   budget; when it runs out the node observes a disconnect, drains
//!   its state into the crash snapshot, and exits — the broker detects
//!   the dead peer on the next exchange and schedules a supervised
//!   restart.

//!
//! # Gateway faults
//!
//! The same plan kills a *gateway* node (it is an ordinary cluster
//! node, so a `kills` entry for its id exercises the supervised
//! restart path including off-bus session resume), and [`LinkPlan`] /
//! [`LinkChaos`] script faults on the gateway → client links: bounded
//! frame budgets per connection incarnation (sever), an in-flight tail
//! that the gateway counts as sent but the client never receives
//! (drop — what a dying TCP buffer does), and seeded wall-clock
//! delays. The gateway chaos harness in `rtec-bench` drives these
//! through simulated client sinks.

use crate::sync::{thread, Arc, Mutex, MutexGuard};
use crate::transport::{BrokerTransport, NodeTransport, Relink, TransportError};
use crate::wire::{ToBroker, ToNode};
use rtec_sim::Rng;
use std::collections::VecDeque;
use std::time::Duration;

/// A seeded fault plan for one chaos run.
#[derive(Clone, Debug)]
pub struct ChaosPlan {
    /// Seed of the fault decision stream.
    pub seed: u64,
    /// Node kills as `(node, receive budget)`: the node's current
    /// incarnation exits after receiving this many broker messages.
    /// Entries apply per node in order — first the original life, then
    /// each restarted incarnation; a node with no entry left lives
    /// forever. Budgets must be ≥ 1 (the `Welcome` handshake is not
    /// supervised).
    pub kills: Vec<(u8, u64)>,
    /// Probability a `Deliver` datagram is dropped.
    pub drop_rate: f64,
    /// Probability a `Deliver` datagram is duplicated.
    pub dup_rate: f64,
    /// Probability any broker→node datagram is delayed (wall clock).
    pub delay_rate: f64,
    /// Upper bound on one injected delay.
    pub max_delay: Duration,
    /// Stall the broker thread once, just before its Nth datagram send.
    pub stall_at_send: Option<u64>,
    /// Wall-clock length of that stall (roughly one bus window).
    pub stall: Duration,
}

impl Default for ChaosPlan {
    fn default() -> Self {
        ChaosPlan {
            seed: 0xC4A05,
            kills: Vec::new(),
            drop_rate: 0.0,
            dup_rate: 0.0,
            delay_rate: 0.0,
            max_delay: Duration::from_micros(200),
            stall_at_send: None,
            stall: Duration::from_millis(1),
        }
    }
}

/// What the chaos wrappers actually injected during a run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChaosReport {
    /// Incarnations killed by an exhausted receive budget.
    pub kills: u64,
    /// `Deliver` datagrams dropped.
    pub dropped: u64,
    /// `Deliver` datagrams duplicated.
    pub duplicated: u64,
    /// Datagrams delayed.
    pub delayed: u64,
    /// Broker stalls executed (0 or 1).
    pub broker_stalls: u64,
}

/// Invariants checked over a finished chaos run's [`crate::LiveReport`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaosVerdict {
    /// Delivery-log entries whose `(node, wire_ns)` key repeats — a
    /// serial wire delivers each frame to each node at most once, so
    /// any repeat means an event was delivered twice (e.g. across a
    /// rejoin). Must be 0.
    pub duplicate_deliveries: usize,
    /// Total delivery-log entries.
    pub deliveries: usize,
    /// `Down` transitions never resolved by an `Up` or `Off` — the
    /// cluster lost track of a node. Must be 0 for liveness.
    pub unresolved_downs: usize,
    /// Supervised restarts completed.
    pub restarts: u64,
}

impl ChaosVerdict {
    /// Whether the run upheld the chaos invariants: at-most-once
    /// delivery and every downed node either restarted or declared off.
    pub fn ok(&self) -> bool {
        self.duplicate_deliveries == 0 && self.unresolved_downs == 0
    }
}

/// Check the chaos invariants over a finished run.
pub fn verdict(report: &crate::LiveReport) -> ChaosVerdict {
    use crate::broker::SupKind;
    let mut keys: Vec<(u8, u64)> = report.log.iter().map(|r| (r.node, r.wire_ns)).collect();
    keys.sort_unstable();
    let duplicate_deliveries = keys.windows(2).filter(|w| w[0] == w[1]).count();
    // A `Down` is resolved by the next `Up` or `Off` of the same node.
    let mut pending: Vec<u8> = Vec::new();
    for e in &report.supervision.events {
        match e.kind {
            SupKind::Down => pending.push(e.node),
            SupKind::Up | SupKind::Off => pending.retain(|&n| n != e.node),
            _ => {}
        }
    }
    ChaosVerdict {
        duplicate_deliveries,
        deliveries: report.log.len(),
        unresolved_downs: pending.len(),
        restarts: report.supervision.restarts,
    }
}

/// A seeded fault plan for one gateway → client link.
///
/// The link lives through a sequence of connection *incarnations*:
/// incarnation `k` carries `severs[k]` frames, loses the last
/// `lose_tail` of them in flight, and then severs. A link with no
/// budget left (or an empty plan) lives forever. Every decision is a
/// pure function of the plan and the frame sequence, so two same-seed
/// runs fault identically.
#[derive(Clone, Debug)]
pub struct LinkPlan {
    /// Seed of the per-link delay decision stream.
    pub seed: u64,
    /// Frame budgets per connection incarnation: incarnation `k`
    /// accepts `severs[k]` frames, then the link is severed. Entries
    /// apply in order; once exhausted the link lives forever.
    pub severs: Vec<u64>,
    /// How many of each incarnation's final frames are *lost in
    /// flight*: the gateway's write succeeded (they count as sent and
    /// enter the replay accounting) but the client never receives
    /// them — what a dying TCP buffer does to unread bytes.
    pub lose_tail: u64,
    /// Probability a delivered frame is delayed (wall clock; under
    /// `Pace::Virtual` this perturbs thread interleavings without
    /// moving bus time).
    pub delay_rate: f64,
    /// Upper bound on one injected delay.
    pub max_delay: Duration,
}

impl Default for LinkPlan {
    fn default() -> Self {
        LinkPlan {
            seed: 0x11A1,
            severs: Vec::new(),
            lose_tail: 0,
            delay_rate: 0.0,
            max_delay: Duration::from_micros(200),
        }
    }
}

/// What happens to one gateway → client frame on a chaotic link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkFault {
    /// The frame reaches the client.
    Deliver,
    /// The frame reaches the client after a bounded wall-clock delay.
    DeliverDelayed(Duration),
    /// The write succeeds (the frame counts as sent) but the frame
    /// dies in flight — the client must not account for it.
    Lose,
    /// The link is severed: the write fails and the gateway should
    /// observe the sink as gone (parking the session for resume).
    Severed,
}

/// Counters of what one [`LinkChaos`] actually injected.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Frames delivered (delayed ones included).
    pub delivered: u64,
    /// Frames lost in flight.
    pub lost: u64,
    /// Frames delayed.
    pub delayed: u64,
    /// Severs executed.
    pub severs: u64,
}

/// The per-connection fault state machine of one chaotic client link.
#[derive(Debug)]
pub struct LinkChaos {
    rng: Rng,
    budgets: VecDeque<u64>,
    /// Frames left in this incarnation; `None` = the link lives forever.
    remaining: Option<u64>,
    lose_tail: u64,
    delay_rate: f64,
    max_delay: Duration,
    stats: LinkStats,
}

impl LinkChaos {
    /// Start the link's first incarnation under `plan`.
    pub fn new(plan: LinkPlan) -> Self {
        let mut budgets: VecDeque<u64> = plan.severs.into();
        let remaining = budgets.pop_front();
        LinkChaos {
            rng: Rng::seed_from_u64(plan.seed),
            budgets,
            remaining,
            lose_tail: plan.lose_tail,
            delay_rate: plan.delay_rate,
            max_delay: plan.max_delay,
            stats: LinkStats::default(),
        }
    }

    /// The fate of the next frame written to this link. The caller
    /// applies it: deliver (after sleeping any delay), silently lose,
    /// or fail the write. `Severed` repeats until
    /// [`LinkChaos::reconnected`] starts the next incarnation.
    pub fn on_frame(&mut self) -> LinkFault {
        match self.remaining {
            Some(0) => LinkFault::Severed,
            Some(left) => {
                self.remaining = Some(left - 1);
                if left == 1 {
                    self.stats.severs += 1;
                }
                if left <= self.lose_tail {
                    self.stats.lost += 1;
                    LinkFault::Lose
                } else {
                    self.deliver()
                }
            }
            None => self.deliver(),
        }
    }

    fn deliver(&mut self) -> LinkFault {
        self.stats.delivered += 1;
        if self.delay_rate > 0.0 && self.rng.gen_bool(self.delay_rate) {
            self.stats.delayed += 1;
            let max = self.max_delay.as_nanos().max(1) as u64;
            LinkFault::DeliverDelayed(Duration::from_nanos(self.rng.gen_range_u64(max) + 1))
        } else {
            LinkFault::Deliver
        }
    }

    /// Whether the current incarnation has severed.
    pub fn severed(&self) -> bool {
        self.remaining == Some(0)
    }

    /// The client reconnected: the next incarnation's budget applies
    /// (or the link lives forever if the plan is exhausted).
    pub fn reconnected(&mut self) {
        self.remaining = self.budgets.pop_front();
    }

    /// What this link injected so far.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }
}

/// Shared state of one chaos run: the seeded decision stream, per-node
/// bookkeeping the wrappers need to keep the turn protocol aligned, and
/// the injection counters.
#[derive(Clone)]
pub(crate) struct ChaosCtl {
    inner: Arc<Mutex<CtlInner>>,
}

struct CtlInner {
    plan: ChaosPlan,
    rng: Rng,
    /// Remaining kill budgets per node, one entry per incarnation.
    budgets: Vec<VecDeque<u64>>,
    /// Synthetic `Idle`s owed per node (one per dropped `Deliver`).
    synthetic_idle: Vec<usize>,
    /// Extra `Idle`s to swallow per node (one per duplicated `Deliver`).
    swallow: Vec<usize>,
    /// A `Deliver` of the current completion batch was dropped: rewrite
    /// the sender's `TxDone` so HRT redundancy compensates the loss.
    dropped_in_batch: bool,
    sends: u64,
    stalled: bool,
    report: ChaosReport,
}

impl ChaosCtl {
    pub(crate) fn new(plan: ChaosPlan, nodes: usize) -> Self {
        let mut budgets: Vec<VecDeque<u64>> = vec![VecDeque::new(); nodes];
        for &(node, budget) in &plan.kills {
            if let Some(q) = budgets.get_mut(node as usize) {
                q.push_back(budget.max(1));
            }
        }
        let rng = Rng::seed_from_u64(plan.seed);
        ChaosCtl {
            inner: Arc::new(Mutex::new(CtlInner {
                plan,
                rng,
                budgets,
                synthetic_idle: vec![0; nodes],
                swallow: vec![0; nodes],
                dropped_in_batch: false,
                sends: 0,
                stalled: false,
                report: ChaosReport::default(),
            })),
        }
    }

    pub(crate) fn report(&self) -> ChaosReport {
        self.lock().report.clone()
    }

    fn lock(&self) -> MutexGuard<'_, CtlInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The receive budget for `node`'s next incarnation, if the plan
    /// kills it.
    fn next_budget(&self, node: u8) -> Option<u64> {
        self.lock()
            .budgets
            .get_mut(node as usize)
            .and_then(|q| q.pop_front())
    }

    fn count_kill(&self) {
        self.lock().report.kills += 1;
    }
}

/// Broker-side chaos wrapper: drops, duplicates, and delays `Deliver`
/// datagrams and executes the one-off broker stall, while keeping the
/// lock-step drain aligned (see the module docs).
pub(crate) struct ChaosBroker<T> {
    inner: T,
    ctl: ChaosCtl,
}

impl<T> ChaosBroker<T> {
    pub(crate) fn new(inner: T, ctl: ChaosCtl) -> Self {
        ChaosBroker { inner, ctl }
    }
}

impl<T: BrokerTransport> BrokerTransport for ChaosBroker<T> {
    fn node_count(&self) -> usize {
        self.inner.node_count()
    }

    fn rendezvous(&mut self, timeout: Duration) -> Result<(), TransportError> {
        self.inner.rendezvous(timeout)
    }

    fn send(&mut self, node: u8, msg: ToNode) -> Result<(), TransportError> {
        let mut msg = msg;
        let mut dup = false;
        let (stall, delay) = {
            let mut c = self.ctl.lock();
            c.sends += 1;
            let stall = match c.plan.stall_at_send {
                Some(n) if !c.stalled && c.sends >= n => {
                    c.stalled = true;
                    c.report.broker_stalls += 1;
                    Some(c.plan.stall)
                }
                _ => None,
            };
            match &mut msg {
                ToNode::Deliver { .. } => {
                    let (drop_rate, dup_rate) = (c.plan.drop_rate, c.plan.dup_rate);
                    if drop_rate > 0.0 && c.rng.gen_bool(drop_rate) {
                        c.report.dropped += 1;
                        c.synthetic_idle[node as usize] += 1;
                        c.dropped_in_batch = true;
                        return Ok(());
                    }
                    if dup_rate > 0.0 && c.rng.gen_bool(dup_rate) {
                        c.report.duplicated += 1;
                        c.swallow[node as usize] += 1;
                        dup = true;
                    }
                }
                ToNode::TxDone { all_received, .. } if c.dropped_in_batch => {
                    *all_received = false;
                    c.dropped_in_batch = false;
                }
                _ => {}
            }
            let delay_rate = c.plan.delay_rate;
            let delay = if delay_rate > 0.0 && c.rng.gen_bool(delay_rate) {
                c.report.delayed += 1;
                let max = c.plan.max_delay.as_nanos().max(1) as u64;
                Some(Duration::from_nanos(c.rng.gen_range_u64(max) + 1))
            } else {
                None
            };
            (stall, delay)
        };
        if let Some(d) = stall {
            thread::sleep(d);
        }
        if let Some(d) = delay {
            thread::sleep(d);
        }
        if dup {
            self.inner.send(node, msg.clone())?;
        }
        self.inner.send(node, msg)
    }

    fn recv_from(&mut self, node: u8, timeout: Duration) -> Result<ToBroker, TransportError> {
        loop {
            {
                let mut c = self.ctl.lock();
                if c.synthetic_idle[node as usize] > 0 {
                    c.synthetic_idle[node as usize] -= 1;
                    return Ok(ToBroker::Idle);
                }
            }
            let msg = self.inner.recv_from(node, timeout)?;
            let mut c = self.ctl.lock();
            if c.swallow[node as usize] > 0 && matches!(msg, ToBroker::Idle) {
                // The duplicated Deliver's whole turn reply is exactly
                // one Idle; by FIFO, eating any one Idle realigns the
                // stream.
                c.swallow[node as usize] -= 1;
                continue;
            }
            return Ok(msg);
        }
    }

    fn unlink(&mut self, node: u8) {
        // The dead incarnation's protocol debts die with it.
        let mut c = self.ctl.lock();
        c.synthetic_idle[node as usize] = 0;
        c.swallow[node as usize] = 0;
        drop(c);
        self.inner.unlink(node);
    }

    fn relink(&mut self, node: u8) -> Result<Relink, TransportError> {
        self.inner.relink(node)
    }

    fn rendezvous_node(&mut self, node: u8, timeout: Duration) -> Result<(), TransportError> {
        self.inner.rendezvous_node(node, timeout)
    }
}

/// Node-side chaos wrapper: enforces the incarnation's receive budget.
/// When it runs out, the node observes a disconnect and crash-exits
/// through the normal snapshot path.
pub(crate) struct ChaosNode {
    inner: Box<dyn NodeTransport>,
    ctl: ChaosCtl,
    /// Remaining receives; `None` = unlimited.
    budget: Option<u64>,
    killed: bool,
}

impl ChaosNode {
    pub(crate) fn new(inner: Box<dyn NodeTransport>, ctl: ChaosCtl, node: u8) -> Self {
        let budget = ctl.next_budget(node);
        ChaosNode {
            inner,
            ctl,
            budget,
            killed: false,
        }
    }
}

impl NodeTransport for ChaosNode {
    fn send(&mut self, msg: ToBroker) -> Result<(), TransportError> {
        if self.killed {
            return Err(TransportError::Disconnected);
        }
        self.inner.send(msg)
    }

    fn recv(&mut self, timeout: Duration) -> Result<ToNode, TransportError> {
        if let Some(b) = self.budget {
            if b == 0 {
                if !self.killed {
                    self.killed = true;
                    self.ctl.count_kill();
                }
                return Err(TransportError::Disconnected);
            }
            self.budget = Some(b - 1);
        }
        self.inner.recv(timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scripted inner transport: records sends, serves a queue of
    /// receives.
    struct Script {
        sent: Vec<(u8, ToNode)>,
        replies: VecDeque<ToBroker>,
    }

    impl BrokerTransport for Script {
        fn node_count(&self) -> usize {
            2
        }
        fn send(&mut self, node: u8, msg: ToNode) -> Result<(), TransportError> {
            self.sent.push((node, msg));
            Ok(())
        }
        fn recv_from(&mut self, _node: u8, _t: Duration) -> Result<ToBroker, TransportError> {
            self.replies.pop_front().ok_or(TransportError::Timeout)
        }
    }

    fn deliver() -> ToNode {
        ToNode::Deliver {
            completed_ns: 100,
            frame: rtec_can::Frame::new(rtec_can::CanId::new(1, 0, 7), &[1, 2]),
        }
    }

    #[test]
    fn dropped_deliver_owes_a_synthetic_idle_and_clears_the_ack() {
        let ctl = ChaosCtl::new(
            ChaosPlan {
                drop_rate: 1.0,
                ..ChaosPlan::default()
            },
            2,
        );
        let mut t = ChaosBroker::new(
            Script {
                sent: Vec::new(),
                replies: VecDeque::new(),
            },
            ctl.clone(),
        );
        t.send(1, deliver()).unwrap();
        assert!(t.inner.sent.is_empty(), "the Deliver must be dropped");
        // The node never saw the Deliver: the drain is answered by a
        // synthetic Idle without touching the inner transport.
        assert_eq!(
            t.recv_from(1, Duration::from_millis(1)).unwrap(),
            ToBroker::Idle
        );
        // The sender's TxDone for the same batch loses its clean ack.
        t.send(
            0,
            ToNode::TxDone {
                handle: 1,
                tag: 2,
                all_received: true,
                completed_ns: 100,
            },
        )
        .unwrap();
        match t.inner.sent.last() {
            Some((0, ToNode::TxDone { all_received, .. })) => assert!(!all_received),
            other => panic!("TxDone must be forwarded, got {other:?}"),
        }
        assert_eq!(ctl.report().dropped, 1);
    }

    #[test]
    fn duplicated_deliver_swallows_exactly_one_idle() {
        let ctl = ChaosCtl::new(
            ChaosPlan {
                dup_rate: 1.0,
                ..ChaosPlan::default()
            },
            2,
        );
        let mut t = ChaosBroker::new(
            Script {
                sent: Vec::new(),
                replies: VecDeque::from([
                    ToBroker::Idle,
                    ToBroker::Idle,
                    ToBroker::Done { node: 1 },
                ]),
            },
            ctl.clone(),
        );
        t.send(1, deliver()).unwrap();
        assert_eq!(t.inner.sent.len(), 2, "the Deliver must be duplicated");
        // Node replies: the dup turn's Idle plus the real turn's Idle.
        // The wrapper eats one; the broker sees one Idle then the next
        // real message.
        assert_eq!(
            t.recv_from(1, Duration::from_millis(1)).unwrap(),
            ToBroker::Idle
        );
        assert_eq!(
            t.recv_from(1, Duration::from_millis(1)).unwrap(),
            ToBroker::Done { node: 1 }
        );
        assert_eq!(ctl.report().duplicated, 1);
    }

    #[test]
    fn kill_budget_disconnects_the_incarnation_exactly_once() {
        struct Echo;
        impl NodeTransport for Echo {
            fn send(&mut self, _m: ToBroker) -> Result<(), TransportError> {
                Ok(())
            }
            fn recv(&mut self, _t: Duration) -> Result<ToNode, TransportError> {
                Ok(ToNode::Shutdown)
            }
        }
        let ctl = ChaosCtl::new(
            ChaosPlan {
                kills: vec![(0, 2), (0, 1)],
                ..ChaosPlan::default()
            },
            1,
        );
        let mut first = ChaosNode::new(Box::new(Echo), ctl.clone(), 0);
        assert!(first.recv(Duration::ZERO).is_ok());
        assert!(first.recv(Duration::ZERO).is_ok());
        assert_eq!(
            first.recv(Duration::ZERO),
            Err(TransportError::Disconnected)
        );
        assert_eq!(
            first.send(ToBroker::Idle),
            Err(TransportError::Disconnected)
        );
        assert_eq!(ctl.report().kills, 1);
        // The next incarnation pops the next budget; the third lives
        // forever.
        let mut second = ChaosNode::new(Box::new(Echo), ctl.clone(), 0);
        assert!(second.recv(Duration::ZERO).is_ok());
        assert_eq!(
            second.recv(Duration::ZERO),
            Err(TransportError::Disconnected)
        );
        assert_eq!(ctl.report().kills, 2);
        let mut third = ChaosNode::new(Box::new(Echo), ctl, 0);
        for _ in 0..100 {
            assert!(third.recv(Duration::ZERO).is_ok());
        }
    }

    /// A scripted link delivers its budget minus the lost tail, loses
    /// the tail, severs, and stays severed until the reconnect pops
    /// the next incarnation's budget.
    #[test]
    fn link_budget_delivers_loses_the_tail_then_severs() {
        let mut link = LinkChaos::new(LinkPlan {
            severs: vec![4, 2],
            lose_tail: 2,
            ..LinkPlan::default()
        });
        assert_eq!(link.on_frame(), LinkFault::Deliver);
        assert_eq!(link.on_frame(), LinkFault::Deliver);
        assert_eq!(link.on_frame(), LinkFault::Lose);
        assert_eq!(link.on_frame(), LinkFault::Lose);
        assert!(link.severed());
        assert_eq!(link.on_frame(), LinkFault::Severed);
        assert_eq!(link.on_frame(), LinkFault::Severed, "severed is sticky");

        link.reconnected();
        assert!(!link.severed());
        assert_eq!(link.on_frame(), LinkFault::Lose, "budget 2 is all tail");
        assert_eq!(link.on_frame(), LinkFault::Lose);
        assert!(link.severed());

        // Plan exhausted: the third incarnation lives forever.
        link.reconnected();
        for _ in 0..100 {
            assert_eq!(link.on_frame(), LinkFault::Deliver);
        }
        let stats = link.stats();
        assert_eq!(stats.delivered, 102);
        assert_eq!(stats.lost, 4);
        assert_eq!(stats.severs, 2);
        assert_eq!(stats.delayed, 0);
    }

    /// Same seed ⇒ the same delay decisions; a nonzero rate actually
    /// delays within the bound.
    #[test]
    fn link_delays_are_seeded_and_bounded() {
        let plan = LinkPlan {
            seed: 7,
            delay_rate: 0.5,
            max_delay: Duration::from_micros(50),
            ..LinkPlan::default()
        };
        let run = |plan: LinkPlan| {
            let mut link = LinkChaos::new(plan);
            (0..64).map(|_| link.on_frame()).collect::<Vec<_>>()
        };
        let a = run(plan.clone());
        let b = run(plan);
        assert_eq!(a, b, "same-seed links must fault identically");
        let delayed: Vec<Duration> = a
            .iter()
            .filter_map(|f| match f {
                LinkFault::DeliverDelayed(d) => Some(*d),
                _ => None,
            })
            .collect();
        assert!(!delayed.is_empty(), "a 50% rate over 64 frames never hit");
        assert!(delayed.iter().all(|d| *d <= Duration::from_micros(50)));
    }
}
