//! The crate's synchronization facade — a re-export of the
//! workspace-wide one.
//!
//! Every sync primitive the live runtime uses — mutexes, channels,
//! atomics, thread spawns — is imported from here, never from
//! `std::sync`/`std::thread` directly (lint C1 in `rtec-conformance`
//! enforces this). The facade itself now lives in [`rtec_sim::sync`]
//! so the parallel simulation driver (`rtec_sim::parallel`) and this
//! runtime share one switch point: normally it resolves straight to
//! `std`; compiled with `--cfg loom` (the ci.sh model-check job) it
//! resolves to the vendored `loom` stand-in, whose scheduler explores
//! thread interleavings exhaustively up to a preemption bound.
//!
//! The deliberate narrowings versus `std` (bounded-only channels,
//! named `Builder` spawns) are documented on [`rtec_sim::sync`].

pub use rtec_sim::sync::*;
