//! End-to-end tests of the live runtime over the loopback transport:
//! determinism, cross-class contention, fault-driven redundancy, and
//! conformance of live traces against the `T1`..`T8` auditor.

use rtec_can::fault::{FaultModel, OmissionScope};
use rtec_conformance::audit::{audit, handshake_anomalies, AuditContext};
use rtec_core::channel::{ChannelClass, ChannelSpec, HrtSpec, NrtSpec, SrtSpec};
use rtec_core::event::{Event, Subject};
use rtec_live::broker::FaultPlan;
use rtec_live::chaos;
use rtec_live::cluster::{Cluster, ClusterConfig, LiveReport};
use rtec_live::node::{Behavior, NodeCtx};
use rtec_live::{ChaosPlan, Pace};
use rtec_sim::Duration;

const HRT_SUBJECT: Subject = Subject(0x1001);
const SRT_SUBJECT: Subject = Subject(0x2002);
const NRT_SUBJECT: Subject = Subject(0x3003);

/// Publishes a fresh HRT sample for every calendar round, staged just
/// before the slot-ready instant.
struct HrtSource {
    counter: u8,
    period: Duration,
}

impl Behavior for HrtSource {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        ctx.publish(Event::new(HRT_SUBJECT, vec![self.counter]))
            .unwrap();
        let (at, period) = ctx.hrt_stage_schedule(HRT_SUBJECT).unwrap();
        self.period = period;
        ctx.set_timer(at, 0).unwrap();
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _payload: u64) {
        self.counter = self.counter.wrapping_add(1);
        ctx.publish(Event::new(HRT_SUBJECT, vec![self.counter]))
            .unwrap();
        ctx.set_timer(ctx.now() + self.period, 0).unwrap();
    }
}

/// Publishes an SRT sample every `every`, starting at `phase`.
struct SrtSource {
    every: Duration,
    phase: Duration,
    counter: u8,
}

impl Behavior for SrtSource {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        ctx.set_timer(ctx.now() + self.phase, 0).unwrap();
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _payload: u64) {
        self.counter = self.counter.wrapping_add(1);
        let _ = ctx.publish(Event::new(SRT_SUBJECT, vec![0xAB, self.counter]));
        ctx.set_timer(ctx.now() + self.every, 0).unwrap();
    }
}

/// Floods the bus with one large fragmented NRT transfer at start.
struct NrtFlood {
    bytes: usize,
}

impl Behavior for NrtFlood {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        let payload: Vec<u8> = (0..self.bytes).map(|i| i as u8).collect();
        ctx.publish(Event::new(NRT_SUBJECT, payload)).unwrap();
    }
}

struct Quiet;
impl Behavior for Quiet {}

fn mixed_cluster(seed_phase_us: u64) -> Cluster {
    let cfg = ClusterConfig {
        pace: Pace::Virtual,
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::new(cfg);
    let n0 = cluster.add_node(Box::new(HrtSource {
        counter: 0,
        period: Duration::from_ms(10),
    }));
    let n1 = cluster.add_node(Box::new(SrtSource {
        every: Duration::from_ms(3),
        phase: Duration::from_us(seed_phase_us),
        counter: 0,
    }));
    let n2 = cluster.add_node(Box::new(Quiet));
    let hrt = ChannelSpec::Hrt(HrtSpec::periodic_10ms());
    let srt = ChannelSpec::Srt(SrtSpec::default());
    cluster.publish(n0, HRT_SUBJECT, hrt);
    cluster.publish(n1, SRT_SUBJECT, srt);
    cluster.subscribe(n2, HRT_SUBJECT, hrt);
    cluster.subscribe(n2, SRT_SUBJECT, srt);
    cluster
}

fn audit_ctx(report: &LiveReport) -> AuditContext {
    AuditContext::from_parts(
        (*report.calendar).clone(),
        report.calendar_start,
        report.channels.clone(),
        report.hrt_periods.clone(),
    )
}

/// Same cluster + virtual clock ⇒ byte-identical delivery order across
/// two independent runs (threads, channels and all).
#[test]
fn loopback_runs_are_deterministic() {
    let run = Duration::from_ms(60);
    let a = mixed_cluster(500).run_for(run).unwrap();
    let b = mixed_cluster(500).run_for(run).unwrap();
    assert!(!a.log.is_empty(), "no deliveries recorded");
    assert!(
        a.log.iter().any(|r| r.class == ChannelClass::Hrt),
        "no HRT deliveries"
    );
    assert!(
        a.log.iter().any(|r| r.class == ChannelClass::Srt),
        "no SRT deliveries"
    );
    assert_eq!(a.log, b.log, "delivery logs diverged between runs");
    assert_eq!(a.stats, b.stats, "node stats diverged between runs");
    assert_eq!(a.broker, b.broker, "broker stats diverged between runs");
}

/// Live traces satisfy the same `T1`..`T8` invariants as simulator
/// traces — the auditor runs on them unmodified.
#[test]
fn live_trace_passes_conformance_audit() {
    let report = mixed_cluster(500).run_for(Duration::from_ms(60)).unwrap();
    assert!(!report.trace.is_empty(), "tracing produced no events");
    let rep = audit(&audit_ctx(&report), &report.trace);
    assert!(
        rep.passes(),
        "audit failed:\n{:#?}",
        rep.errors().collect::<Vec<_>>()
    );
}

/// Three threads contending: an HRT frame submitted at its LST must win
/// arbitration against a saturating NRT flood, land inside its calendar
/// slot, and be delivered every round.
#[test]
fn hrt_beats_saturating_nrt_under_contention() {
    let cfg = ClusterConfig {
        pace: Pace::Virtual,
        // The flood below queues ~120 fragment frames at once.
        nrt_queue_cap: 256,
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::new(cfg);
    let n0 = cluster.add_node(Box::new(HrtSource {
        counter: 0,
        period: Duration::from_ms(10),
    }));
    // A 600-byte fragmented transfer is ~120 frames ≈ 16 ms of wire
    // time at 1 Mbit/s: the bus stays saturated across round borders.
    let n1 = cluster.add_node(Box::new(NrtFlood { bytes: 600 }));
    let n2 = cluster.add_node(Box::new(Quiet));
    let hrt = ChannelSpec::Hrt(HrtSpec::periodic_10ms());
    let nrt = ChannelSpec::Nrt(NrtSpec::bulk());
    cluster.publish(n0, HRT_SUBJECT, hrt);
    cluster.publish(n1, NRT_SUBJECT, nrt);
    cluster.subscribe(n2, HRT_SUBJECT, hrt);
    cluster.subscribe(n2, NRT_SUBJECT, nrt);
    let report = cluster.run_for(Duration::from_ms(35)).unwrap();

    // The auditor checks T2 (HRT inside its slot) and T1 (arbitration
    // order) on the live trace.
    let rep = audit(&audit_ctx(&report), &report.trace);
    assert!(
        rep.passes(),
        "audit failed:\n{:#?}",
        rep.errors().collect::<Vec<_>>()
    );

    // Every arbitration with an HRT contender was won by it.
    let mut hrt_contended = 0;
    for ev in report.trace.iter().filter(|e| e.kind == "arb") {
        let cands: Vec<u64> = ev
            .fields
            .iter()
            .filter(|(k, _)| *k == "cand")
            .map(|&(_, v)| v & 0xFFFF_FFFF)
            .collect();
        let win = ev
            .fields
            .iter()
            .find(|(k, _)| *k == "win")
            .map(|&(_, v)| v)
            .unwrap();
        let hrt_cand = cands.iter().copied().find(|&c| (c >> 21) == 0);
        if cands.len() >= 2 {
            if let Some(c) = hrt_cand {
                hrt_contended += 1;
                assert_eq!(win, c, "HRT frame lost arbitration at {:?}", ev.time);
            }
        }
    }
    assert!(
        hrt_contended >= 2,
        "expected repeated HRT-vs-NRT contention, saw {hrt_contended}"
    );

    // Each round's HRT sample arrived, and the flood reassembled.
    let hrt_deliveries = report
        .log
        .iter()
        .filter(|r| r.class == ChannelClass::Hrt)
        .count();
    assert!(hrt_deliveries >= 3, "HRT starved: {hrt_deliveries} rounds");
    let nrt = report
        .log
        .iter()
        .find(|r| r.class == ChannelClass::Nrt)
        .expect("flood never completed");
    assert_eq!(nrt.bytes.len(), 600);
    assert!(nrt.bytes.iter().enumerate().all(|(i, &b)| b == i as u8));
}

/// Omission faults: the sender sees `all_received = false` and spends a
/// redundant retransmission inside the same slot (§3.2), so the
/// subscriber still gets every round's sample.
#[test]
fn omission_faults_trigger_redundant_retransmission() {
    let cfg = ClusterConfig {
        pace: Pace::Virtual,
        fault: FaultPlan {
            model: Some(FaultModel::Iid {
                corruption_p: 0.0,
                omission_p: 0.5,
                omission_scope: OmissionScope::OneRandomReceiver,
            }),
            seed: 7,
        },
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::new(cfg);
    let n0 = cluster.add_node(Box::new(HrtSource {
        counter: 0,
        period: Duration::from_ms(10),
    }));
    let n1 = cluster.add_node(Box::new(Quiet));
    let hrt = ChannelSpec::Hrt(HrtSpec::periodic_10ms());
    cluster.publish(n0, HRT_SUBJECT, hrt);
    cluster.subscribe(n1, HRT_SUBJECT, hrt);
    let report = cluster.run_for(Duration::from_ms(80)).unwrap();

    assert!(
        report.broker.frames_with_omission > 0,
        "fault injector never fired"
    );
    // Retransmissions happened: more tx_starts than rounds.
    let starts = report
        .trace
        .iter()
        .filter(|e| e.kind == "tx_start" || e.kind == "tx_start_omit")
        .count();
    let delivered = report
        .log
        .iter()
        .filter(|r| r.class == ChannelClass::Hrt)
        .count();
    assert!(delivered >= 6, "subscriber starved: {delivered}");
    assert!(
        starts > delivered,
        "no redundant retransmissions: {starts} starts for {delivered} deliveries"
    );
    let rep = audit(&audit_ctx(&report), &report.trace);
    assert!(
        rep.passes(),
        "audit failed:\n{:#?}",
        rep.errors().collect::<Vec<_>>()
    );
}

/// The `mixed_cluster` topology with restartable nodes: behaviors come
/// from factories, so the supervisor can respawn them after a chaos
/// kill.
fn restartable_cluster() -> Cluster {
    let cfg = ClusterConfig {
        pace: Pace::Virtual,
        restart_backoff: Duration::from_ms(1),
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::new(cfg);
    let n0 = cluster.add_node_with(Box::new(|| {
        Box::new(HrtSource {
            counter: 0,
            period: Duration::from_ms(10),
        })
    }));
    let n1 = cluster.add_node_with(Box::new(|| {
        Box::new(SrtSource {
            every: Duration::from_ms(3),
            phase: Duration::from_us(500),
            counter: 0,
        })
    }));
    let n2 = cluster.add_node_with(Box::new(|| Box::new(Quiet)));
    let hrt = ChannelSpec::Hrt(HrtSpec::periodic_10ms());
    let srt = ChannelSpec::Srt(SrtSpec::default());
    cluster.publish(n0, HRT_SUBJECT, hrt);
    cluster.publish(n1, SRT_SUBJECT, srt);
    cluster.subscribe(n2, HRT_SUBJECT, hrt);
    cluster.subscribe(n2, SRT_SUBJECT, srt);
    cluster
}

/// A chaos plan that kills the HRT subscriber mid-cycle (its receive
/// budget runs out between two calendar slots) and later kills the
/// restarted HRT source too.
fn crash_plan() -> ChaosPlan {
    ChaosPlan {
        kills: vec![(2, 25), (0, 12)],
        ..ChaosPlan::default()
    }
}

/// Killing the HRT subscriber mid-cycle (and the HRT source soon
/// after) must leave the cluster live: both nodes restart, rejoin, and
/// HRT samples keep flowing after the last recovery. The merged trace
/// still satisfies T1..T8, no event is delivered twice across the
/// rejoin, and the supervision log pairs every Down with an Up.
#[test]
fn chaos_kills_recover_and_stay_live() {
    let (report, chaos_rep) = restartable_cluster()
        .run_for_chaos(Duration::from_ms(120), crash_plan())
        .unwrap();
    assert_eq!(chaos_rep.kills, 2, "both planned kills must fire");
    assert!(
        report.supervision.restarts >= 2,
        "both killed nodes must rejoin: {:?}",
        report.supervision.events
    );
    let verdict = chaos::verdict(&report);
    assert!(
        verdict.ok(),
        "chaos verdict failed: {verdict:?}\n{:?}",
        report.supervision.events
    );
    // The cluster stayed live: HRT samples delivered *after* the last
    // recovery instant.
    let last_up = report
        .supervision
        .events
        .iter()
        .filter(|e| e.kind == rtec_live::SupKind::Up)
        .map(|e| e.at_ns)
        .max()
        .expect("at least one completed rejoin");
    let post_rejoin_hrt = report
        .log
        .iter()
        .filter(|r| r.class == ChannelClass::Hrt && r.wire_ns > last_up)
        .count();
    assert!(
        post_rejoin_hrt >= 2,
        "HRT starved after rejoin at {last_up} ns: {post_rejoin_hrt} deliveries"
    );
    // The auditor accepts the merged trace, supervision records and all.
    let rep = audit(&audit_ctx(&report), &report.trace);
    assert!(
        rep.passes(),
        "audit failed:\n{:#?}",
        rep.errors().collect::<Vec<_>>()
    );
    // Loopback relinks mint fresh endpoints; no handshake datagram can
    // be replayed on this transport.
    assert_eq!(handshake_anomalies(&report.trace), 0);
}

/// Two chaos runs under the same plan (same seed) are byte-identical:
/// same delivery log — including everything after the crashes — and
/// the same supervision timeline.
#[test]
fn chaos_runs_with_the_same_seed_are_deterministic() {
    let run = Duration::from_ms(120);
    let (a, ar) = restartable_cluster()
        .run_for_chaos(run, crash_plan())
        .unwrap();
    let (b, br) = restartable_cluster()
        .run_for_chaos(run, crash_plan())
        .unwrap();
    assert!(!a.log.is_empty());
    assert_eq!(a.log, b.log, "delivery logs diverged between chaos runs");
    assert_eq!(
        a.supervision.events, b.supervision.events,
        "supervision timelines diverged"
    );
    assert_eq!(a.stats, b.stats, "node stats diverged");
    assert_eq!((ar.kills, ar.dropped), (br.kills, br.dropped));
}

/// The UDP transport carries the same protocol: a small cluster over
/// real datagram sockets produces the same deliveries as loopback.
#[test]
fn udp_transport_matches_loopback() {
    let run = Duration::from_ms(30);
    let over_udp = mixed_cluster(500).run_for_udp(run).unwrap();
    let over_loopback = mixed_cluster(500).run_for(run).unwrap();
    assert!(!over_udp.log.is_empty());
    assert_eq!(over_udp.log, over_loopback.log);
}
