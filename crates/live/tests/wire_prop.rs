//! Property-based tests for the live runtime's wire codec: every
//! protocol message round-trips through its datagram encoding, and
//! arbitrary or mutated byte strings are rejected without panicking.

use proptest::prelude::*;
use rtec_can::{CanId, Frame};
use rtec_live::wire::{
    decode_to_broker, decode_to_node, encode_to_broker, encode_to_node, ToBroker, ToNode,
};

fn arb_frame() -> impl Strategy<Value = Frame> {
    (
        0u8..=255,
        0u8..128,
        0u16..(1 << 14),
        prop::collection::vec(any::<u8>(), 0..=8),
    )
        .prop_map(|(prio, tx, etag, payload)| Frame::new(CanId::new(prio, tx, etag), &payload))
}

fn arb_to_broker() -> impl Strategy<Value = ToBroker> {
    prop_oneof![
        (any::<u8>(), any::<u32>())
            .prop_map(|(node, incarnation)| ToBroker::Hello { node, incarnation }),
        (any::<u8>(), any::<u32>(), any::<u64>()).prop_map(|(node, incarnation, nonce)| {
            ToBroker::Pong {
                node,
                incarnation,
                nonce,
            }
        }),
        (any::<u32>(), any::<u64>(), arb_frame())
            .prop_map(|(handle, tag, frame)| ToBroker::Submit { handle, tag, frame }),
        any::<u32>().prop_map(|handle| ToBroker::Abort { handle }),
        (any::<u32>(), 0u32..(1 << 29))
            .prop_map(|(handle, raw_id)| ToBroker::UpdateId { handle, raw_id }),
        (any::<u64>(), any::<u64>()).prop_map(|(at_ns, token)| ToBroker::TimerReq { at_ns, token }),
        Just(ToBroker::Idle),
        any::<u8>().prop_map(|node| ToBroker::Done { node }),
    ]
}

fn arb_to_node() -> impl Strategy<Value = ToNode> {
    prop_oneof![
        (any::<u64>(), any::<u32>()).prop_map(|(now_ns, incarnation)| ToNode::Welcome {
            now_ns,
            incarnation
        }),
        any::<u64>().prop_map(|nonce| ToNode::Ping { nonce }),
        (any::<u64>(), arb_frame()).prop_map(|(completed_ns, frame)| ToNode::Deliver {
            completed_ns,
            frame
        }),
        (any::<u32>(), any::<u64>(), any::<bool>(), any::<u64>()).prop_map(
            |(handle, tag, all_received, completed_ns)| ToNode::TxDone {
                handle,
                tag,
                all_received,
                completed_ns,
            }
        ),
        (any::<u32>(), any::<u64>(), any::<bool>()).prop_map(|(handle, tag, aborted)| {
            ToNode::AbortResult {
                handle,
                tag,
                aborted,
            }
        }),
        (any::<u64>(), any::<u64>()).prop_map(|(token, now_ns)| ToNode::Timer { token, now_ns }),
        Just(ToNode::Shutdown),
    ]
}

proptest! {
    /// Node → broker messages survive the datagram encoding.
    #[test]
    fn to_broker_round_trips(msg in arb_to_broker()) {
        let bytes = encode_to_broker(&msg);
        prop_assert_eq!(decode_to_broker(&bytes).unwrap(), msg);
    }

    /// Broker → node messages survive the datagram encoding.
    #[test]
    fn to_node_round_trips(msg in arb_to_node()) {
        let bytes = encode_to_node(&msg);
        prop_assert_eq!(decode_to_node(&bytes).unwrap(), msg);
    }

    /// Arbitrary byte strings never panic either decoder; they decode
    /// or they are rejected, quietly.
    #[test]
    fn random_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = decode_to_broker(&bytes);
        let _ = decode_to_node(&bytes);
    }

    /// Any single-byte mutation of a valid datagram is either rejected
    /// or decodes to *some* message — never a panic, never an
    /// out-of-bounds read.
    #[test]
    fn mutated_datagrams_never_panic(
        msg in arb_to_broker(),
        pos_frac in 0.0f64..1.0,
        delta in 1u8..=255,
    ) {
        let mut bytes = encode_to_broker(&msg);
        let pos = ((bytes.len() as f64 * pos_frac) as usize).min(bytes.len() - 1);
        bytes[pos] = bytes[pos].wrapping_add(delta);
        let _ = decode_to_broker(&bytes);
        let _ = decode_to_node(&bytes);
    }

    /// Truncating a valid datagram at any point is rejected (or, for a
    /// cut exactly at the end, still decodes) — never a panic.
    #[test]
    fn truncated_datagrams_never_panic(msg in arb_to_node(), keep_frac in 0.0f64..1.0) {
        let bytes = encode_to_node(&msg);
        let keep = ((bytes.len() as f64) * keep_frac) as usize;
        let _ = decode_to_node(&bytes[..keep]);
        prop_assert!(decode_to_node(&bytes[..keep]).is_err() || keep == bytes.len());
    }

    /// Pre-incarnation handshake datagrams (1-byte Hello body, 8-byte
    /// Welcome body) decode as incarnation 0 for any node id / time, so
    /// a node built before the supervision protocol still joins.
    #[test]
    fn legacy_handshakes_decode_as_incarnation_zero(node in any::<u8>(), now_ns in any::<u64>()) {
        // Header: magic "RL", version 1, kind byte (Hello = 1, Welcome = 16).
        let hello = [b'R', b'L', 1, 1, node].to_vec();
        prop_assert_eq!(
            decode_to_broker(&hello).unwrap(),
            ToBroker::Hello { node, incarnation: 0 }
        );
        let mut welcome = vec![b'R', b'L', 1, 16];
        welcome.extend_from_slice(&now_ns.to_le_bytes());
        prop_assert_eq!(
            decode_to_node(&welcome).unwrap(),
            ToNode::Welcome { now_ns, incarnation: 0 }
        );
    }

    /// Truncating or extending the incarnation/heartbeat bodies to any
    /// length their layouts do not allow is rejected cleanly. Hello is
    /// valid at exactly 1 (legacy) or 5 bytes, Pong at 13, Ping at 8,
    /// Welcome at 8 (legacy) or 12.
    #[test]
    fn handshake_and_heartbeat_bodies_are_length_checked(len in 0usize..32) {
        for (kind, valid) in [(1u8, vec![1usize, 5]), (8, vec![13])] {
            let mut buf = vec![b'R', b'L', 1, kind];
            buf.resize(4 + len, 0);
            prop_assert_eq!(decode_to_broker(&buf).is_ok(), valid.contains(&len));
        }
        for (kind, valid) in [(16u8, vec![8usize, 12]), (22, vec![8])] {
            let mut buf = vec![b'R', b'L', 1, kind];
            buf.resize(4 + len, 0);
            prop_assert_eq!(decode_to_node(&buf).is_ok(), valid.contains(&len));
        }
    }
}
