//! Model-checked interleaving exploration of the broker's lock-step
//! turn protocol (compiled only under `RUSTFLAGS="--cfg loom"`; see
//! the ci.sh model-check job).
//!
//! Each scenario builds a tiny cluster *inside* `loom::explore`: the
//! broker runs `Broker::run` in one model thread and scripted node
//! threads speak the wire protocol directly over the facade-backed
//! loopback transport. The loom stand-in then re-runs the scenario
//! under every thread schedule reachable within its preemption bound
//! — and because the protocol is lock-step (at most one thread is
//! runnable at almost every scheduling point), that bound never
//! prunes, so coverage of the schedule space is complete
//! ([`loom::Stats::pruned`] is asserted `false`).
//!
//! The invariants asserted are the model-checked counterparts of the
//! dynamic T1–T8 trace auditor in `rtec-conformance`:
//!
//! * **arbitration tie order** (T1): when two nodes submit in the same
//!   bus instant, the lower raw 29-bit identifier transmits first —
//!   under every schedule;
//! * **TxDone acknowledgement vs. omission faults** (T6-adjacent): the
//!   sender always learns `all_received = false` when a receiver was
//!   omitted, and omitted receivers never observe a delivery;
//! * **shutdown vs. in-flight frame**: ending the run while a frame
//!   still occupies the wire shuts every node down cleanly — no
//!   deadlock, no phantom completion.

#![cfg(loom)]

use rtec_can::bits::BitTiming;
use rtec_can::fault::{FaultModel, OmissionScope};
use rtec_can::{CanId, Frame};
use rtec_live::broker::{Broker, BrokerConfig, BrokerStats, FaultPlan, NodeSupervisor, SupKind};
use rtec_live::clock::Pace;
use rtec_live::sync::thread;
use rtec_live::transport::{loopback, NodeTransport};
use rtec_live::wire::{ToBroker, ToNode};
use rtec_live::LiveError;
use rtec_sim::{SharedTraceSink, Time};

const TIMEOUT: std::time::Duration = std::time::Duration::from_secs(60);

/// What a scripted node observed, in arrival order.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Obs {
    /// A frame from another node, by raw identifier.
    Deliver(u32),
    /// Completion of an own transmission.
    TxDone { handle: u32, all_received: bool },
}

fn broker(
    transport: impl rtec_live::transport::BrokerTransport + 'static,
    fault: FaultPlan,
) -> Broker<impl rtec_live::transport::BrokerTransport> {
    Broker::new(
        BrokerConfig {
            timing: BitTiming::MBIT_1,
            pace: Pace::Virtual,
            fault,
            // Strict: any protocol fault aborts the model — these
            // scenarios assert the healthy lock-step protocol. The
            // restart model below overrides this.
            strict: true,
            ..BrokerConfig::default()
        },
        transport,
        SharedTraceSink::disabled(),
    )
}

/// Drive one scripted node: submit `frames` on `Welcome`, resubmit up
/// to `resubmits` times when a `TxDone` reports an omission, stay
/// reactive otherwise, and return everything observed.
fn scripted_node(
    mut t: Box<dyn NodeTransport>,
    node: u8,
    frames: Vec<Frame>,
    mut resubmits: u32,
) -> Vec<Obs> {
    let mut obs = Vec::new();
    let mut next_handle = 1u32;
    let mut frames = Some(frames);
    loop {
        match t.recv(TIMEOUT).expect("node recv") {
            ToNode::Welcome { .. } => {
                for frame in frames.take().into_iter().flatten() {
                    let handle = next_handle;
                    next_handle += 1;
                    t.send(ToBroker::Submit {
                        handle,
                        tag: u64::from(handle),
                        frame,
                    })
                    .expect("submit");
                }
                t.send(ToBroker::Idle).expect("idle");
            }
            ToNode::Deliver { frame, .. } => {
                obs.push(Obs::Deliver(frame.id.raw()));
                t.send(ToBroker::Idle).expect("idle");
            }
            ToNode::TxDone {
                handle,
                all_received,
                ..
            } => {
                obs.push(Obs::TxDone {
                    handle,
                    all_received,
                });
                if !all_received && resubmits > 0 {
                    resubmits -= 1;
                    let handle = next_handle;
                    next_handle += 1;
                    t.send(ToBroker::Submit {
                        handle,
                        tag: u64::from(handle),
                        frame: Frame::new(CanId::new(4, node, 10 + u16::from(node)), &[node]),
                    })
                    .expect("resubmit");
                }
                t.send(ToBroker::Idle).expect("idle");
            }
            ToNode::Timer { .. } | ToNode::AbortResult { .. } | ToNode::Ping { .. } => {
                t.send(ToBroker::Idle).expect("idle");
            }
            ToNode::Shutdown => {
                t.send(ToBroker::Done { node }).expect("done");
                return obs;
            }
        }
    }
}

/// T1 under every schedule: two nodes submit distinct identifiers in
/// the same bus instant; the lower raw id always transmits first, both
/// frames complete acknowledged, and each node sees exactly the other
/// node's frame.
#[test]
fn arbitration_tie_resolves_by_raw_id_under_all_schedules() {
    let stats = loom::explore(|| {
        let (bt, mut nts) = loopback(2);
        let n1_t = nts.pop().expect("node 1 endpoint");
        let n0_t = nts.pop().expect("node 0 endpoint");
        // Node 0's identifier is *higher* (loses), node 1's lower (wins).
        let f0 = Frame::new(CanId::new(5, 0, 1), &[0xA0]);
        let f1 = Frame::new(CanId::new(1, 1, 2), &[0xB1]);
        let raw0 = f0.id.raw();
        let raw1 = f1.id.raw();
        let b = thread::Builder::new()
            .name("model-broker".into())
            .spawn(move || broker(bt, FaultPlan::default()).run(Time::from_ms(1)))
            .expect("spawn broker");
        let h0 = thread::spawn(move || scripted_node(Box::new(n0_t), 0, vec![f0], 0));
        let h1 = thread::spawn(move || scripted_node(Box::new(n1_t), 1, vec![f1], 0));
        let obs0 = h0.join().expect("node 0");
        let obs1 = h1.join().expect("node 1");
        let stats: BrokerStats = b.join().expect("broker thread").expect("broker run");

        assert_eq!(stats.arbitrations, 2, "one arbitration per frame");
        assert_eq!(stats.frames_ok, 2, "both frames fully acknowledged");
        // Node 1 wins the tie: its completion precedes the delivery of
        // node 0's frame, on both sides of the bus.
        assert_eq!(
            obs0,
            vec![
                Obs::Deliver(raw1),
                Obs::TxDone {
                    handle: 1,
                    all_received: true
                }
            ],
            "loser must see the winner's frame before its own TxDone"
        );
        assert_eq!(
            obs1,
            vec![
                Obs::TxDone {
                    handle: 1,
                    all_received: true
                },
                Obs::Deliver(raw0)
            ],
            "winner completes first, then receives the loser's frame"
        );
    });
    assert!(stats.executions >= 2, "exploration must branch: {stats:?}");
    assert!(!stats.pruned, "lock-step scenario must be fully explored");
}

/// Test supervisor: restart node 0 once, over the minted loopback
/// link, with a 1 µs bus-time backoff; any further down is final.
struct ModelSup {
    handle: Option<thread::JoinHandle<Vec<Obs>>>,
    downs: Vec<(u8, u32, &'static str)>,
}

impl NodeSupervisor for ModelSup {
    fn on_down(
        &mut self,
        node: u8,
        incarnation: u32,
        _at_ns: u64,
        reason: &'static str,
    ) -> Option<u64> {
        self.downs.push((node, incarnation, reason));
        (self.downs.len() == 1).then_some(1_000)
    }

    fn respawn(
        &mut self,
        node: u8,
        incarnation: u32,
        _at_ns: u64,
        link: Option<Box<dyn NodeTransport>>,
    ) -> Result<(), LiveError> {
        assert_eq!((node, incarnation), (0, 1), "one restart of node 0");
        let t = link.expect("loopback relink mints the node half");
        self.handle = Some(thread::spawn(move || scripted_node(t, 0, Vec::new(), 0)));
        Ok(())
    }
}

/// Supervisor ↔ node restart handshake under every schedule: the only
/// receiver exits right after the initial handshake, so delivering the
/// sender's first frame declares it down; the supervisor respawns it
/// over a freshly minted loopback link, the broker re-welcomes
/// incarnation 1, and the sender's scripted retransmission reaches the
/// restarted node — under every interleaving of broker, sender, and
/// both incarnations of node 0.
#[test]
fn restart_handshake_rejoins_under_all_schedules() {
    let stats = loom::explore(|| {
        let (bt, mut nts) = loopback(2);
        let n1_t = nts.pop().expect("node 1 endpoint");
        let mut n0_t = nts.pop().expect("node 0 endpoint");
        // Incarnation 0 of node 0: answer the Welcome, then crash
        // (drop the endpoint).
        let h0 = thread::spawn(move || match n0_t.recv(TIMEOUT).expect("welcome") {
            ToNode::Welcome { incarnation, .. } => {
                assert_eq!(incarnation, 0);
                n0_t.send(ToBroker::Idle).expect("idle");
            }
            other => panic!("expected Welcome, got {other:?}"),
        });
        let f1 = Frame::new(CanId::new(3, 1, 2), &[0xB1]);
        // The scripted retransmission frame (see `scripted_node`).
        let retransmit_raw = CanId::new(4, 1, 11).raw();
        let b = thread::Builder::new()
            .name("model-broker".into())
            .spawn(move || {
                let mut sup = ModelSup {
                    handle: None,
                    downs: Vec::new(),
                };
                let mut broker = Broker::new(
                    BrokerConfig {
                        strict: false,
                        ..BrokerConfig::default()
                    },
                    bt,
                    SharedTraceSink::disabled(),
                );
                let result = broker.run_supervised(Time::from_ms(1), Some(&mut sup));
                (result, broker.take_sup_log(), sup)
            })
            .expect("spawn broker");
        // The sender retransmits once when its TxDone reports the
        // receiver was missed.
        let h1 = thread::spawn(move || scripted_node(Box::new(n1_t), 1, vec![f1], 1));
        h0.join().expect("incarnation 0");
        let obs1 = h1.join().expect("sender");
        let (result, sup_log, sup) = b.join().expect("broker thread");
        let stats = result.expect("supervised run must survive the crash");
        let obs0 = sup
            .handle
            .expect("node 0 must have been respawned")
            .join()
            .expect("incarnation 1");

        assert_eq!(sup.downs, vec![(0, 0, "disconnect")]);
        assert_eq!(stats.node_downs, 1);
        assert_eq!(stats.node_restarts, 1);
        let kinds: Vec<(u8, u32, SupKind)> = sup_log
            .iter()
            .map(|e| (e.node, e.incarnation, e.kind))
            .collect();
        assert_eq!(
            kinds,
            vec![(0, 0, SupKind::Down), (0, 1, SupKind::Up)],
            "down, then a completed rejoin handshake: {sup_log:?}"
        );
        assert_eq!(
            obs1,
            vec![
                Obs::TxDone {
                    handle: 1,
                    all_received: false
                },
                Obs::TxDone {
                    handle: 2,
                    all_received: true
                }
            ],
            "sender must see the miss, then a fully acked retransmission"
        );
        assert_eq!(
            obs0,
            vec![Obs::Deliver(retransmit_raw)],
            "the restarted incarnation must receive the retransmission"
        );
    });
    assert!(stats.executions >= 2, "exploration must branch: {stats:?}");
    assert!(!stats.pruned, "restart scenario must be fully explored");
}

/// Omission handling under every schedule: with a fault model that
/// omits the only receiver on every attempt, the sender is always told
/// `all_received = false` (triggering its scripted retransmission) and
/// the victim never observes a delivery.
#[test]
fn omission_fault_acks_false_and_skips_victim_under_all_schedules() {
    let stats = loom::explore(|| {
        let (bt, mut nts) = loopback(2);
        let n1_t = nts.pop().expect("node 1 endpoint");
        let n0_t = nts.pop().expect("node 0 endpoint");
        let fault = FaultPlan {
            model: Some(FaultModel::Iid {
                corruption_p: 0.0,
                omission_p: 1.0,
                omission_scope: OmissionScope::OneRandomReceiver,
            }),
            seed: 11,
        };
        let f0 = Frame::new(CanId::new(3, 0, 1), &[0xA0]);
        let b = thread::Builder::new()
            .name("model-broker".into())
            .spawn(move || broker(bt, fault).run(Time::from_ms(1)))
            .expect("spawn broker");
        // Node 0 publishes and retransmits once on a bad ack; node 1
        // only listens.
        let h0 = thread::spawn(move || scripted_node(Box::new(n0_t), 0, vec![f0], 1));
        let h1 = thread::spawn(move || scripted_node(Box::new(n1_t), 1, Vec::new(), 0));
        let obs0 = h0.join().expect("node 0");
        let obs1 = h1.join().expect("node 1");
        let stats: BrokerStats = b.join().expect("broker thread").expect("broker run");

        assert_eq!(
            stats.frames_with_omission, 2,
            "original + retransmission, both omitted"
        );
        assert_eq!(stats.frames_ok, 0);
        assert_eq!(
            obs0,
            vec![
                Obs::TxDone {
                    handle: 1,
                    all_received: false
                },
                Obs::TxDone {
                    handle: 2,
                    all_received: false
                }
            ],
            "sender must learn of the omission on every attempt"
        );
        assert!(
            obs1.is_empty(),
            "omission victim must never see a delivery: {obs1:?}"
        );
    });
    assert!(stats.executions >= 2, "exploration must branch: {stats:?}");
    assert!(!stats.pruned, "lock-step scenario must be fully explored");
}

/// Shutdown racing an in-flight frame, under every schedule: the run
/// window closes while a frame still occupies the wire. Every node
/// must shut down cleanly (no deadlock, which loom would report) and
/// the unfinished transmission must neither complete nor be
/// acknowledged.
#[test]
fn shutdown_with_inflight_frame_terminates_cleanly_under_all_schedules() {
    let stats = loom::explore(|| {
        let (bt, mut nts) = loopback(2);
        let n1_t = nts.pop().expect("node 1 endpoint");
        let n0_t = nts.pop().expect("node 0 endpoint");
        // An 8-byte frame needs ~130 µs of wire time; the run window
        // is 10 µs, so shutdown always races the transmission.
        let f0 = Frame::new(CanId::new(3, 0, 1), &[0; 8]);
        let b = thread::Builder::new()
            .name("model-broker".into())
            .spawn(move || broker(bt, FaultPlan::default()).run(Time::from_us(10)))
            .expect("spawn broker");
        let h0 = thread::spawn(move || scripted_node(Box::new(n0_t), 0, vec![f0], 0));
        let h1 = thread::spawn(move || scripted_node(Box::new(n1_t), 1, Vec::new(), 0));
        let obs0 = h0.join().expect("node 0");
        let obs1 = h1.join().expect("node 1");
        let result: Result<BrokerStats, LiveError> = b.join().expect("broker thread");
        let stats = result.expect("shutdown must succeed with a frame in flight");

        assert_eq!(stats.arbitrations, 1, "the frame reached the wire");
        assert_eq!(
            stats.frames_ok + stats.frames_with_omission + stats.frames_corrupted,
            0,
            "the in-flight frame must not complete during shutdown"
        );
        assert!(
            obs0.is_empty(),
            "no TxDone for a frame cut off by shutdown: {obs0:?}"
        );
        assert!(obs1.is_empty(), "nothing was delivered: {obs1:?}");
    });
    assert!(stats.executions >= 2, "exploration must branch: {stats:?}");
    assert!(!stats.pruned, "lock-step scenario must be fully explored");
}
