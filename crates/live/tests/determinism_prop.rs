//! Lock-step determinism regression: the wall-clock order in which
//! node-thread replies *arrive* must not matter. We interpose a
//! jitter transport that delays every node's sends and receives by a
//! pseudo-random amount (permuting the real arrival interleaving
//! across threads) and assert the delivery log is byte-identical to
//! an undisturbed run under the virtual clock.
//!
//! This is the dynamic cousin of the `cfg(loom)` model-check suite:
//! loom proves schedule-independence over a bounded exploration of a
//! small cluster; this property test samples timing permutations of a
//! realistic one.

use proptest::prelude::*;
use rtec_core::channel::{ChannelSpec, HrtSpec, SrtSpec};
use rtec_core::event::{Event, Subject};
use rtec_live::cluster::{Cluster, ClusterConfig};
use rtec_live::node::{Behavior, NodeCtx};
use rtec_live::transport::NodeTransport;
use rtec_live::{ChaosPlan, DeliveryRecord, Pace};
use rtec_sim::Duration;
use std::sync::OnceLock;

const HRT_SUBJECT: Subject = Subject(0xD001);
const SRT_SUBJECT: Subject = Subject(0xD002);
const RUN: Duration = Duration::from_ms(25);

struct HrtSource {
    counter: u8,
    period: Duration,
}

impl Behavior for HrtSource {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        ctx.publish(Event::new(HRT_SUBJECT, vec![self.counter]))
            .unwrap();
        let (at, period) = ctx.hrt_stage_schedule(HRT_SUBJECT).unwrap();
        self.period = period;
        ctx.set_timer(at, 0).unwrap();
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _payload: u64) {
        self.counter = self.counter.wrapping_add(1);
        ctx.publish(Event::new(HRT_SUBJECT, vec![self.counter]))
            .unwrap();
        ctx.set_timer(ctx.now() + self.period, 0).unwrap();
    }
}

struct SrtSource {
    every: Duration,
    counter: u8,
}

impl Behavior for SrtSource {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        ctx.set_timer(ctx.now() + self.every, 0).unwrap();
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _payload: u64) {
        self.counter = self.counter.wrapping_add(1);
        let _ = ctx.publish(Event::new(SRT_SUBJECT, vec![0xCD, self.counter]));
        ctx.set_timer(ctx.now() + self.every, 0).unwrap();
    }
}

struct Quiet;
impl Behavior for Quiet {}

fn cluster() -> Cluster {
    let cfg = ClusterConfig {
        pace: Pace::Virtual,
        trace: false,
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::new(cfg);
    let n0 = cluster.add_node(Box::new(HrtSource {
        counter: 0,
        period: Duration::from_ms(10),
    }));
    let n1 = cluster.add_node(Box::new(SrtSource {
        every: Duration::from_ms(3),
        counter: 0,
    }));
    let n2 = cluster.add_node(Box::new(Quiet));
    let hrt = ChannelSpec::Hrt(HrtSpec::periodic_10ms());
    let srt = ChannelSpec::Srt(SrtSpec::default());
    cluster.publish(n0, HRT_SUBJECT, hrt);
    cluster.publish(n1, SRT_SUBJECT, srt);
    cluster.subscribe(n2, HRT_SUBJECT, hrt);
    cluster.subscribe(n2, SRT_SUBJECT, srt);
    cluster
}

/// Wraps a node endpoint and stalls each send/recv by a pseudo-random
/// wall-clock amount. Bus time is virtual, so the delays change only
/// the *real* interleaving of the node threads, never the protocol's
/// event timeline — which is exactly what lock-step must tolerate.
struct Jitter {
    inner: Box<dyn NodeTransport>,
    state: u64,
    max_us: u64,
}

impl Jitter {
    fn stall(&mut self) {
        if self.max_us == 0 {
            return;
        }
        // xorshift64*: deterministic per (seed, node) stream.
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        let us = self.state % self.max_us;
        if us > 0 {
            std::thread::sleep(std::time::Duration::from_micros(us));
        } else {
            std::thread::yield_now();
        }
    }
}

impl NodeTransport for Jitter {
    fn send(&mut self, msg: rtec_live::ToBroker) -> Result<(), rtec_live::TransportError> {
        self.stall();
        self.inner.send(msg)
    }

    fn recv(
        &mut self,
        timeout: std::time::Duration,
    ) -> Result<rtec_live::ToNode, rtec_live::TransportError> {
        let reply = self.inner.recv(timeout);
        self.stall();
        reply
    }
}

/// The same topology with factory-minted behaviors, so chaos kills get
/// supervised restarts instead of permanent quarantine.
fn restartable_cluster() -> Cluster {
    let cfg = ClusterConfig {
        pace: Pace::Virtual,
        trace: false,
        restart_backoff: Duration::from_ms(1),
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::new(cfg);
    let n0 = cluster.add_node_with(Box::new(|| {
        Box::new(HrtSource {
            counter: 0,
            period: Duration::from_ms(10),
        })
    }));
    let n1 = cluster.add_node_with(Box::new(|| {
        Box::new(SrtSource {
            every: Duration::from_ms(3),
            counter: 0,
        })
    }));
    let n2 = cluster.add_node_with(Box::new(|| Box::new(Quiet)));
    let hrt = ChannelSpec::Hrt(HrtSpec::periodic_10ms());
    let srt = ChannelSpec::Srt(SrtSpec::default());
    cluster.publish(n0, HRT_SUBJECT, hrt);
    cluster.publish(n1, SRT_SUBJECT, srt);
    cluster.subscribe(n2, HRT_SUBJECT, hrt);
    cluster.subscribe(n2, SRT_SUBJECT, srt);
    cluster
}

fn baseline() -> &'static Vec<DeliveryRecord> {
    static BASELINE: OnceLock<Vec<DeliveryRecord>> = OnceLock::new();
    BASELINE.get_or_init(|| {
        let report = cluster().run_for(RUN).expect("baseline run");
        assert!(!report.log.is_empty(), "baseline produced no deliveries");
        report.log
    })
}

proptest! {
    /// Arbitrary per-node reply jitter ⇒ the delivery log (order,
    /// timestamps, payloads) is identical to the undisturbed run.
    #[test]
    fn reply_arrival_order_cannot_change_deliveries(
        seed in any::<u64>(),
        max_us in 1u64..200,
    ) {
        let report = cluster()
            .run_for_wrapped(RUN, &mut move |node, inner| {
                Box::new(Jitter {
                    inner,
                    state: seed ^ (u64::from(node) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    max_us,
                })
            })
            .expect("jittered run");
        prop_assert_eq!(&report.log, baseline(), "delivery log diverged under jitter");
    }

    /// Crash/restart dimension: whatever kill points and datagram-drop
    /// seed a chaos plan picks, re-running the *same* plan reproduces
    /// the run byte-for-byte — delivery log, supervision timeline, and
    /// per-node counters (which span incarnations via the crash
    /// snapshot). Determinism must survive crashes, not just jitter.
    #[test]
    fn crash_restart_runs_are_reproducible(
        seed in any::<u64>(),
        victim in 0u8..3,
        budget in 3u64..40,
        drop_permille in 0u64..50,
    ) {
        let plan = ChaosPlan {
            seed,
            kills: vec![(victim, budget)],
            drop_rate: drop_permille as f64 / 1000.0,
            ..ChaosPlan::default()
        };
        let run = Duration::from_ms(60);
        let (a, ar) = restartable_cluster()
            .run_for_chaos(run, plan.clone())
            .expect("chaos run a");
        let (b, br) = restartable_cluster()
            .run_for_chaos(run, plan)
            .expect("chaos run b");
        prop_assert_eq!(&a.log, &b.log, "delivery log diverged across same-seed chaos runs");
        prop_assert_eq!(
            &a.supervision.events, &b.supervision.events,
            "supervision timeline diverged"
        );
        prop_assert_eq!(&a.stats, &b.stats, "node stats diverged");
        prop_assert_eq!(
            (ar.kills, ar.dropped, ar.duplicated),
            (br.kills, br.dropped, br.duplicated)
        );
    }
}
