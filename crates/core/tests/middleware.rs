//! End-to-end tests of the SRT and NRT channel classes, binding and
//! filtering, driving full networks through simulated time.

use rtec_core::channel::ChannelError;
use rtec_core::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

const S1: Subject = Subject::new(0x1001);
const S2: Subject = Subject::new(0x1002);

#[test]
fn srt_publish_is_delivered_with_origin_and_content() {
    let mut net = Network::builder().nodes(3).build();
    let q = {
        let mut api = net.api();
        api.announce(NodeId(0), S1, ChannelSpec::srt(SrtSpec::default()))
            .unwrap();
        api.subscribe(NodeId(2), S1, SubscribeSpec::default())
            .unwrap()
    };
    net.after(Duration::from_us(10), |api| {
        api.publish(NodeId(0), S1, Event::new(S1, vec![0xAB, 0xCD]))
            .unwrap();
    });
    net.run_for(Duration::from_ms(2));
    let deliveries = q.drain();
    assert_eq!(deliveries.len(), 1);
    let d = &deliveries[0];
    assert_eq!(d.event.content, vec![0xAB, 0xCD]);
    assert_eq!(d.event.subject, S1);
    assert_eq!(d.event.attributes.origin, Some(NodeId(0)));
    assert!(d.delivered_at > Time::from_us(10));
}

#[test]
fn srt_multiple_subscribers_each_get_a_copy() {
    let mut net = Network::builder().nodes(4).build();
    let (q1, q2, q3) = {
        let mut api = net.api();
        api.announce(NodeId(0), S1, ChannelSpec::srt(SrtSpec::default()))
            .unwrap();
        (
            api.subscribe(NodeId(1), S1, SubscribeSpec::default())
                .unwrap(),
            api.subscribe(NodeId(2), S1, SubscribeSpec::default())
                .unwrap(),
            api.subscribe(NodeId(3), S1, SubscribeSpec::default())
                .unwrap(),
        )
    };
    net.after(Duration::ZERO, |api| {
        api.publish(NodeId(0), S1, Event::new(S1, vec![7])).unwrap();
    });
    net.run_for(Duration::from_ms(1));
    for q in [&q1, &q2, &q3] {
        assert_eq!(q.len(), 1, "every subscriber gets the event");
    }
    assert_eq!(net.stats().channel_etag_of(&net, S1).delivered, 3);
}

// Small helper since tests often need per-subject stats.
trait StatsExt {
    fn channel_etag_of(&self, net: &Network, s: Subject) -> rtec_core::ChannelStats;
}
impl StatsExt for rtec_core::NetStats {
    fn channel_etag_of(&self, net: &Network, s: Subject) -> rtec_core::ChannelStats {
        let etag = net.world().registry().etag_of(s).expect("subject bound");
        self.channel(etag)
    }
}

#[test]
fn srt_publisher_is_not_its_own_subscriber() {
    // CAN controllers do not receive their own frames.
    let mut net = Network::builder().nodes(2).build();
    let q = {
        let mut api = net.api();
        api.announce(NodeId(0), S1, ChannelSpec::srt(SrtSpec::default()))
            .unwrap();
        api.subscribe(NodeId(0), S1, SubscribeSpec::default())
            .unwrap()
    };
    net.after(Duration::ZERO, |api| {
        api.publish(NodeId(0), S1, Event::new(S1, vec![1])).unwrap();
    });
    net.run_for(Duration::from_ms(1));
    assert!(q.is_empty());
}

#[test]
fn srt_edf_orders_same_node_queue_by_deadline() {
    let mut net = Network::builder().nodes(2).build();
    let q = {
        let mut api = net.api();
        api.announce(NodeId(0), S1, ChannelSpec::srt(SrtSpec::default()))
            .unwrap();
        api.subscribe(NodeId(1), S1, SubscribeSpec::default())
            .unwrap()
    };
    // Publish three events in the same instant with inverted deadline
    // order; EDF must transmit closest-deadline first.
    net.after(Duration::ZERO, |api| {
        let base = api.now_global(NodeId(0));
        api.publish(
            NodeId(0),
            S1,
            Event::new(S1, vec![3]).with_deadline(base + Duration::from_ms(30)),
        )
        .unwrap();
        api.publish(
            NodeId(0),
            S1,
            Event::new(S1, vec![1]).with_deadline(base + Duration::from_ms(10)),
        )
        .unwrap();
        api.publish(
            NodeId(0),
            S1,
            Event::new(S1, vec![2]).with_deadline(base + Duration::from_ms(20)),
        )
        .unwrap();
    });
    net.run_for(Duration::from_ms(5));
    let order: Vec<u8> = q.drain().iter().map(|d| d.event.content[0]).collect();
    assert_eq!(order, vec![1, 2, 3]);
}

#[test]
fn srt_edf_orders_across_nodes_via_priorities() {
    let mut net = Network::builder().nodes(4).build();
    let sa = Subject::new(0xA);
    let sb = Subject::new(0xB);
    let sc = Subject::new(0xC);
    let q = {
        let mut api = net.api();
        for (node, s) in [(NodeId(0), sa), (NodeId(1), sb), (NodeId(2), sc)] {
            api.announce(node, s, ChannelSpec::srt(SrtSpec::default()))
                .unwrap();
        }
        let q = api
            .subscribe(NodeId(3), sa, SubscribeSpec::default())
            .unwrap();
        // Same queue object is not shared across subjects; subscribe
        // separately and merge by timestamps instead.
        api.subscribe(NodeId(3), sb, SubscribeSpec::default())
            .unwrap();
        api.subscribe(NodeId(3), sc, SubscribeSpec::default())
            .unwrap();
        q
    };
    let _ = q;
    // Block the bus with one long frame first so all three are queued,
    // then they arbitrate by deadline-derived priority.
    net.after(Duration::ZERO, move |api| {
        let base = api.now_global(NodeId(0));
        api.publish(
            NodeId(0),
            sa,
            Event::new(sa, vec![0xAA; 8]).with_deadline(base + Duration::from_ms(40)),
        )
        .unwrap();
        api.publish(
            NodeId(1),
            sb,
            Event::new(sb, vec![0xBB; 8]).with_deadline(base + Duration::from_ms(5)),
        )
        .unwrap();
        api.publish(
            NodeId(2),
            sc,
            Event::new(sc, vec![0xCC; 8]).with_deadline(base + Duration::from_ms(20)),
        )
        .unwrap();
    });
    net.run_for(Duration::from_ms(3));
    // Inspect wire order through per-channel wire latency counts: the
    // earliest-deadline message must have completed first. Use the
    // stats' wire histograms: every channel has exactly one
    // transmission; compare via bus busy ordering — simplest check:
    // channel B's wire latency < C's < A's.
    let st = net.stats();
    let wl = |s: Subject| {
        let etag = net.world().registry().etag_of(s).unwrap();
        st.channel(etag).wire_latency_ns.samples()[0]
    };
    assert!(wl(sb) < wl(sc), "deadline 5ms beats 20ms");
    assert!(wl(sc) < wl(sa), "deadline 20ms beats 40ms");
}

#[test]
fn srt_deadline_miss_raises_exception_but_still_transmits() {
    let mut net = Network::builder().nodes(2).build();
    let misses: Rc<RefCell<Vec<rtec_core::ChannelException>>> = Rc::new(RefCell::new(vec![]));
    let m = misses.clone();
    let q = {
        let mut api = net.api();
        api.announce_with_handler(
            NodeId(0),
            S1,
            ChannelSpec::srt(SrtSpec {
                default_deadline: Duration::from_us(50), // < one frame time
                default_expiration: Some(Duration::from_ms(50)),
            }),
            move |exc| m.borrow_mut().push(exc.clone()),
        )
        .unwrap();
        api.subscribe(NodeId(1), S1, SubscribeSpec::default())
            .unwrap()
    };
    net.after(Duration::ZERO, |api| {
        api.publish(NodeId(0), S1, Event::new(S1, vec![0x5A; 8]))
            .unwrap();
    });
    net.run_for(Duration::from_ms(2));
    // A 130+ µs frame cannot meet a 50 µs deadline: miss exception, but
    // best-effort transmission still happens.
    let excs = misses.borrow();
    assert!(
        excs.iter()
            .any(|e| matches!(e, rtec_core::ChannelException::DeadlineMissed { .. })),
        "expected a DeadlineMissed exception, got {excs:?}"
    );
    assert_eq!(q.len(), 1, "message still delivered best-effort");
    assert_eq!(net.stats().channel_etag_of(&net, S1).deadline_misses, 1);
}

#[test]
fn srt_expiration_drops_queued_messages() {
    // Five 8-byte frames (~135 µs each on the wire) but validity ends
    // at 300 µs: only the frames that reach the wire in time survive;
    // the rest are removed from the send queue with an Expired
    // exception (§2.2.2).
    let mut net = Network::builder().nodes(2).build();
    let drops: Rc<RefCell<u32>> = Rc::new(RefCell::new(0));
    let d = drops.clone();
    let q = {
        let mut api = net.api();
        api.announce_with_handler(
            NodeId(0),
            S1,
            ChannelSpec::srt(SrtSpec {
                default_deadline: Duration::from_us(250),
                default_expiration: Some(Duration::from_us(300)),
            }),
            move |exc| {
                if matches!(exc, rtec_core::ChannelException::Expired { .. }) {
                    *d.borrow_mut() += 1;
                }
            },
        )
        .unwrap();
        api.subscribe(NodeId(1), S1, SubscribeSpec::default())
            .unwrap()
    };
    net.after(Duration::ZERO, |api| {
        for i in 0..5u8 {
            api.publish(NodeId(0), S1, Event::new(S1, vec![i; 8]))
                .unwrap();
        }
    });
    net.run_for(Duration::from_ms(5));
    let delivered = q.len() as u32;
    let dropped = *drops.borrow();
    assert!(dropped >= 2, "most of the queue expires, got {dropped}");
    assert!(delivered >= 2, "the head of the queue gets through");
    assert_eq!(delivered + dropped, 5, "every message delivered or dropped");
    assert_eq!(
        net.stats().channel_etag_of(&net, S1).expired_drops,
        u64::from(dropped)
    );
    assert_eq!(net.world().srt_queue_len(NodeId(0)), 0, "queue purged");
}

#[test]
fn nrt_single_frame_roundtrip() {
    let mut net = Network::builder().nodes(2).build();
    let q = {
        let mut api = net.api();
        api.announce(NodeId(0), S1, ChannelSpec::nrt(NrtSpec::default()))
            .unwrap();
        api.subscribe(NodeId(1), S1, SubscribeSpec::default())
            .unwrap()
    };
    net.after(Duration::ZERO, |api| {
        api.publish(NodeId(0), S1, Event::new(S1, vec![1, 2, 3, 4]))
            .unwrap();
    });
    net.run_for(Duration::from_ms(1));
    assert_eq!(q.drain()[0].event.content, vec![1, 2, 3, 4]);
}

#[test]
fn nrt_fragmented_bulk_transfer_roundtrip() {
    let mut net = Network::builder().nodes(2).build();
    let q = {
        let mut api = net.api();
        api.announce(NodeId(0), S1, ChannelSpec::nrt(NrtSpec::bulk()))
            .unwrap();
        api.subscribe(NodeId(1), S1, SubscribeSpec::default())
            .unwrap()
    };
    let image: Vec<u8> = (0..2000u32).map(|i| (i % 256) as u8).collect();
    let image_clone = image.clone();
    net.after(Duration::ZERO, move |api| {
        api.publish(NodeId(0), S1, Event::new(S1, image_clone))
            .unwrap();
    });
    net.run_for(Duration::from_secs(1));
    let deliveries = q.drain();
    assert_eq!(deliveries.len(), 1);
    assert_eq!(deliveries[0].event.content, image);
}

#[test]
fn nrt_priority_band_is_enforced() {
    let mut net = Network::builder().nodes(2).build();
    let mut api = net.api();
    let err = api
        .announce(
            NodeId(0),
            S1,
            ChannelSpec::nrt(rtec_core::channel::NrtSpec {
                priority: 100, // SRT band — forbidden
                fragmented: false,
            }),
        )
        .unwrap_err();
    assert_eq!(err, ChannelError::PriorityOutOfBand { priority: 100 });
}

#[test]
fn publish_without_announce_fails() {
    let mut net = Network::builder().nodes(2).build();
    let mut api = net.api();
    let err = api
        .publish(NodeId(0), S1, Event::new(S1, vec![1]))
        .unwrap_err();
    assert_eq!(err, ChannelError::NotAnnounced(S1));
}

#[test]
fn double_announce_and_double_subscribe_fail() {
    let mut net = Network::builder().nodes(2).build();
    let mut api = net.api();
    api.announce(NodeId(0), S1, ChannelSpec::srt(SrtSpec::default()))
        .unwrap();
    assert_eq!(
        api.announce(NodeId(0), S1, ChannelSpec::srt(SrtSpec::default())),
        Err(ChannelError::AlreadyAnnounced(S1))
    );
    api.subscribe(NodeId(1), S1, SubscribeSpec::default())
        .unwrap();
    assert!(matches!(
        api.subscribe(NodeId(1), S1, SubscribeSpec::default()),
        Err(ChannelError::AlreadySubscribed(_))
    ));
}

#[test]
fn origin_filter_discards_unwanted_publishers() {
    let mut net = Network::builder().nodes(3).build();
    let q = {
        let mut api = net.api();
        // Two publishers feed the same subject.
        api.announce(NodeId(0), S1, ChannelSpec::srt(SrtSpec::default()))
            .unwrap();
        api.announce(NodeId(1), S1, ChannelSpec::srt(SrtSpec::default()))
            .unwrap();
        // Subscriber only wants node 1's events.
        api.subscribe(NodeId(2), S1, SubscribeSpec::from_origins(vec![NodeId(1)]))
            .unwrap()
    };
    net.after(Duration::ZERO, |api| {
        api.publish(NodeId(0), S1, Event::new(S1, vec![0])).unwrap();
        api.publish(NodeId(1), S1, Event::new(S1, vec![1])).unwrap();
    });
    net.run_for(Duration::from_ms(2));
    let deliveries = q.drain();
    assert_eq!(deliveries.len(), 1);
    assert_eq!(deliveries[0].event.attributes.origin, Some(NodeId(1)));
    assert_eq!(net.stats().channel_etag_of(&net, S1).filtered, 1);
}

#[test]
fn cancel_subscription_stops_deliveries() {
    let mut net = Network::builder().nodes(2).build();
    let q = {
        let mut api = net.api();
        api.announce(NodeId(0), S1, ChannelSpec::srt(SrtSpec::default()))
            .unwrap();
        api.subscribe(NodeId(1), S1, SubscribeSpec::default())
            .unwrap()
    };
    net.after(Duration::ZERO, |api| {
        api.publish(NodeId(0), S1, Event::new(S1, vec![1])).unwrap();
    });
    net.after(Duration::from_ms(1), |api| {
        api.cancel_subscription(NodeId(1), S1).unwrap();
        api.publish(NodeId(0), S1, Event::new(S1, vec![2])).unwrap();
    });
    net.run_for(Duration::from_ms(3));
    let deliveries = q.drain();
    assert_eq!(deliveries.len(), 1, "only the pre-cancel event arrives");
    assert_eq!(deliveries[0].event.content, vec![1]);
}

#[test]
fn notification_handler_fires_on_delivery() {
    let mut net = Network::builder().nodes(2).build();
    let seen: Rc<RefCell<Vec<Vec<u8>>>> = Rc::new(RefCell::new(vec![]));
    let s = seen.clone();
    {
        let mut api = net.api();
        api.announce(NodeId(0), S1, ChannelSpec::srt(SrtSpec::default()))
            .unwrap();
        api.subscribe_with(
            NodeId(1),
            S1,
            SubscribeSpec::default(),
            move |delivery| s.borrow_mut().push(delivery.event.content.clone()),
            |_exc| {},
        )
        .unwrap();
    }
    net.after(Duration::ZERO, |api| {
        api.publish(NodeId(0), S1, Event::new(S1, vec![42]))
            .unwrap();
    });
    net.run_for(Duration::from_ms(1));
    assert_eq!(*seen.borrow(), vec![vec![42]]);
}

#[test]
fn dynamic_binding_assigns_etags_over_the_wire() {
    let mut net = Network::builder().nodes(3).dynamic_binding(true).build();
    let q = {
        let mut api = net.api();
        // Node 1 (not the agent) announces; node 2 subscribes.
        api.announce(NodeId(1), S1, ChannelSpec::srt(SrtSpec::default()))
            .unwrap();
        api.subscribe(NodeId(2), S1, SubscribeSpec::default())
            .unwrap()
    };
    // Publishing while the binding is still in flight must not error:
    // the middleware queues the event. (Whether that early event reaches
    // the subscriber depends on whether the *subscriber's* binding — a
    // separate protocol exchange — completed first, so we only assert
    // delivery for the post-binding publish.)
    net.after(Duration::from_us(1), |api| {
        api.publish(NodeId(1), S1, Event::new(S1, vec![9])).unwrap();
    });
    net.after(Duration::from_ms(3), |api| {
        api.publish(NodeId(1), S1, Event::new(S1, vec![10]))
            .unwrap();
    });
    net.run_for(Duration::from_ms(6));
    assert_eq!(
        net.world().registry().etag_of(S1),
        Some(rtec_core::binding::ETAG_FIRST_DYNAMIC)
    );
    let deliveries = q.drain();
    assert!(!deliveries.is_empty(), "post-binding publish is delivered");
    assert_eq!(deliveries.last().unwrap().event.content, vec![10]);
    // Both publishes went out on the wire once bound.
    assert_eq!(net.stats().channel_etag_of(&net, S1).published, 2);
    // Binding traffic really went over the bus: two requests (node 1 and
    // node 2), two replies, plus the data frames.
    assert!(
        net.world().bus.stats.frames_ok >= 6,
        "requests + replies + data"
    );
}

#[test]
fn dynamic_binding_multiple_subjects_same_node() {
    let mut net = Network::builder().nodes(2).dynamic_binding(true).build();
    let (q1, q2) = {
        let mut api = net.api();
        api.announce(NodeId(1), S1, ChannelSpec::srt(SrtSpec::default()))
            .unwrap();
        api.announce(NodeId(1), S2, ChannelSpec::srt(SrtSpec::default()))
            .unwrap();
        (
            api.subscribe(NodeId(0), S1, SubscribeSpec::default())
                .unwrap(),
            api.subscribe(NodeId(0), S2, SubscribeSpec::default())
                .unwrap(),
        )
    };
    net.after(Duration::from_us(1), |api| {
        api.publish(NodeId(1), S1, Event::new(S1, vec![1])).unwrap();
        api.publish(NodeId(1), S2, Event::new(S2, vec![2])).unwrap();
    });
    net.run_for(Duration::from_ms(10));
    assert_eq!(q1.drain().len(), 1);
    assert_eq!(q2.drain().len(), 1);
    assert_ne!(
        net.world().registry().etag_of(S1),
        net.world().registry().etag_of(S2)
    );
}

#[test]
fn payload_limits_enforced_per_class() {
    let mut net = Network::builder().nodes(2).build();
    let mut api = net.api();
    api.announce(NodeId(0), S1, ChannelSpec::srt(SrtSpec::default()))
        .unwrap();
    let err = api
        .publish(NodeId(0), S1, Event::new(S1, vec![0; 9]))
        .unwrap_err();
    assert!(matches!(
        err,
        ChannelError::PayloadTooLong { len: 9, max: 8 }
    ));

    api.announce(NodeId(0), S2, ChannelSpec::nrt(NrtSpec::default()))
        .unwrap();
    let err2 = api
        .publish(NodeId(0), S2, Event::new(S2, vec![0; 9]))
        .unwrap_err();
    assert!(matches!(err2, ChannelError::PayloadTooLong { .. }));
}

#[test]
fn srt_queue_peak_tracks_buildup() {
    let mut net = Network::builder().nodes(2).build();
    {
        let mut api = net.api();
        api.announce(
            NodeId(0),
            S1,
            ChannelSpec::srt(SrtSpec {
                default_deadline: Duration::from_ms(100),
                default_expiration: None,
            }),
        )
        .unwrap();
        api.subscribe(NodeId(1), S1, SubscribeSpec::default())
            .unwrap();
    }
    net.after(Duration::ZERO, |api| {
        for i in 0..10u8 {
            api.publish(NodeId(0), S1, Event::new(S1, vec![i])).unwrap();
        }
    });
    net.run_for(Duration::from_ms(50));
    assert_eq!(net.world().srt_peak_queue(NodeId(0)), 10);
    assert_eq!(net.world().srt_queue_len(NodeId(0)), 0, "drained");
}
