//! In-network clock synchronization: drifting clocks + the sync service
//! keep the HRT calendar valid over long runs; without it, the drift
//! eventually defeats the slot structure.

use rtec_clock::ClockParams;
use rtec_core::channel::HrtSpec;
use rtec_core::network::ClockSyncConfig;
use rtec_core::prelude::*;

const SENSOR: Subject = Subject::new(0x5001);

/// ±200 ppm oscillators: fast publisher, slow subscriber — the
/// combination that breaks the slot structure quickest.
fn bad_clocks() -> Vec<ClockParams> {
    vec![
        ClockParams::PERFECT, // node 0: master
        ClockParams {
            drift_ppm: -200.0,
            initial_offset_ns: 0.0,
        }, // publisher
        ClockParams {
            drift_ppm: 200.0,
            initial_offset_ns: 0.0,
        }, // subscriber
        ClockParams {
            drift_ppm: 120.0,
            initial_offset_ns: 0.0,
        },
    ]
}

fn run(
    with_sync: bool,
    horizon: Duration,
) -> (
    u64, /*delivered*/
    u64, /*missing*/
    u64, /*spread*/
) {
    let mut builder = Network::builder()
        .nodes(4)
        .round(Duration::from_ms(10))
        .clocks(bad_clocks());
    if with_sync {
        builder = builder.clock_sync(ClockSyncConfig {
            period: Duration::from_ms(50),
            master: NodeId(0),
            priority: 1,
        });
    }
    let mut net = builder.build();
    let q = {
        let mut api = net.api();
        api.announce(
            NodeId(1),
            SENSOR,
            ChannelSpec::hrt(HrtSpec {
                period: Duration::from_ms(10),
                dlc: 8,
                omission_degree: 1,
                sporadic: false,
            }),
        )
        .unwrap();
        let q = api
            .subscribe(NodeId(2), SENSOR, SubscribeSpec::default())
            .unwrap();
        api.install_calendar().unwrap();
        q
    };
    net.every(Duration::from_ms(10), Duration::from_us(100), |api| {
        let _ = api.publish(NodeId(1), SENSOR, Event::new(SENSOR, vec![1; 8]));
    });
    net.run_for(horizon);
    let etag = net.world().registry().etag_of(SENSOR).unwrap();
    let missing = net.stats().channel(etag).missing_events;
    let spread = net.world().clock_spread(net.now());
    (q.drain().len() as u64, missing, spread)
}

#[test]
fn unsynchronized_drift_eventually_breaks_the_calendar() {
    // ±200 ppm diverge 400 µs/s; after ~2 s the subscriber's delivery
    // deadline fires before the publisher's frame has arrived.
    let (_delivered, missing, spread) = run(false, Duration::from_secs(3));
    assert!(missing > 0, "expected missing events, spread {spread}ns");
    assert!(spread > 1_000_000, "clocks far apart: {spread}ns");
}

#[test]
fn sync_service_keeps_the_calendar_valid() {
    let horizon = Duration::from_secs(3);
    let (delivered, missing, spread) = run(true, horizon);
    assert_eq!(missing, 0, "no missing events with sync running");
    assert!(delivered >= 295, "delivered {delivered}");
    // Residual spread bounded by 2·ρ·P ≈ 2·200ppm·50ms = 20 µs plus
    // protocol granularity — far inside the 40 µs gap.
    assert!(spread < 40_000, "spread {spread}ns within ΔG_min");
}

#[test]
fn sync_traffic_overhead_is_small() {
    let mut net = Network::builder()
        .nodes(3)
        .clocks(vec![
            ClockParams::PERFECT,
            ClockParams {
                drift_ppm: 100.0,
                initial_offset_ns: 0.0,
            },
            ClockParams {
                drift_ppm: -100.0,
                initial_offset_ns: 0.0,
            },
        ])
        .clock_sync(ClockSyncConfig {
            period: Duration::from_ms(50),
            master: NodeId(0),
            priority: 1,
        })
        .build();
    let horizon = Duration::from_secs(1);
    net.run_for(horizon);
    // Two frames (SYNC + FOLLOW-UP) per 50 ms period.
    let frames = net.world().bus.stats.frames_ok;
    assert!((38..=42).contains(&frames), "sync frames: {frames}");
    let util = net.world().bus.stats.utilization(horizon);
    assert!(util < 0.01, "sync overhead {util} below 1%");
    // And the slave clocks track the master.
    assert!(net.world().clock_spread(net.now()) < 25_000);
}
