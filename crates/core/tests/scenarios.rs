//! Additional middleware scenarios: many-to-many channels, ordering
//! across announce/subscribe, promotion effects, NRT FIFO and tracing.

use rtec_core::channel::HrtSpec;
use rtec_core::prelude::*;

const S: Subject = Subject::new(0x9101);

#[test]
fn two_publishers_one_hrt_channel_two_slot_trains() {
    // §3.1: "if multiple publishers provide input to the same channel,
    // multiple slots have to be reserved" — one per publisher.
    let mut net = Network::builder()
        .nodes(4)
        .round(Duration::from_ms(10))
        .build();
    let q = {
        let mut api = net.api();
        let spec = ChannelSpec::hrt(HrtSpec {
            period: Duration::from_ms(10),
            dlc: 8,
            omission_degree: 1,
            sporadic: false,
        });
        api.announce(NodeId(0), S, spec).unwrap();
        api.announce(NodeId(1), S, spec).unwrap();
        let q = api
            .subscribe(NodeId(2), S, SubscribeSpec::default())
            .unwrap();
        api.install_calendar().unwrap();
        q
    };
    // The calendar holds two slot trains for the same etag.
    let plan = net.world().calendar().unwrap().clone();
    let etag = net.world().registry().etag_of(S).unwrap();
    let owners: Vec<_> = plan
        .slots
        .iter()
        .filter(|s| s.etag == etag)
        .map(|s| s.publisher)
        .collect();
    assert_eq!(owners.len(), 2);
    assert!(owners.contains(&NodeId(0)) && owners.contains(&NodeId(1)));

    net.every(Duration::from_ms(10), Duration::from_us(100), |api| {
        let _ = api.publish(NodeId(0), S, Event::new(S, vec![0xA0; 8]));
        let _ = api.publish(NodeId(1), S, Event::new(S, vec![0xB1; 8]));
    });
    net.run_for(Duration::from_ms(105));
    let deliveries = q.drain();
    // Two deliveries per round, one from each publisher.
    assert!(
        (18..=22).contains(&deliveries.len()),
        "{}",
        deliveries.len()
    );
    let from0 = deliveries
        .iter()
        .filter(|d| d.event.attributes.origin == Some(NodeId(0)))
        .count();
    let from1 = deliveries
        .iter()
        .filter(|d| d.event.attributes.origin == Some(NodeId(1)))
        .count();
    assert!(from0 >= 9 && from1 >= 9, "{from0}/{from1}");
    assert_eq!(net.stats().channel(etag).missing_events, 0);
}

#[test]
fn subscribe_before_announce_works() {
    // P/S decouples the two sides: subscription may precede any
    // publisher's announcement.
    let mut net = Network::builder().nodes(3).build();
    let q = {
        let mut api = net.api();
        let q = api
            .subscribe(NodeId(1), S, SubscribeSpec::default())
            .unwrap();
        api.announce(NodeId(0), S, ChannelSpec::srt(SrtSpec::default()))
            .unwrap();
        q
    };
    net.after(Duration::from_us(5), |api| {
        api.publish(NodeId(0), S, Event::new(S, vec![3])).unwrap();
    });
    net.run_for(Duration::from_ms(1));
    assert_eq!(q.drain().len(), 1);
}

#[test]
fn hrt_spec_mismatch_across_publishers_is_rejected() {
    let mut net = Network::builder().nodes(3).build();
    let mut api = net.api();
    api.announce(NodeId(0), S, ChannelSpec::srt(SrtSpec::default()))
        .unwrap();
    // A second publisher must not re-type the channel.
    let err = api
        .announce(NodeId(1), S, ChannelSpec::hrt(HrtSpec::periodic_10ms()))
        .unwrap_err();
    assert_eq!(err, rtec_core::channel::ChannelError::SpecMismatch(S));
}

#[test]
fn nrt_transfers_from_one_node_are_fifo() {
    let mut net = Network::builder().nodes(2).build();
    let q = {
        let mut api = net.api();
        api.announce(NodeId(0), S, ChannelSpec::nrt(NrtSpec::bulk()))
            .unwrap();
        api.subscribe(NodeId(1), S, SubscribeSpec::default())
            .unwrap()
    };
    net.after(Duration::ZERO, |api| {
        for i in 0..3u8 {
            api.publish(NodeId(0), S, Event::new(S, vec![i; 100]))
                .unwrap();
        }
    });
    net.run_for(Duration::from_ms(100));
    let deliveries = q.drain();
    assert_eq!(deliveries.len(), 3);
    for (i, d) in deliveries.iter().enumerate() {
        assert_eq!(d.event.content, vec![i as u8; 100], "FIFO order");
    }
}

#[test]
fn srt_promotion_lets_an_old_message_beat_fresh_urgent_traffic() {
    // Ablation pair: with dynamic promotion, a message that has waited
    // long enough out-prioritizes a newer message with a farther
    // absolute deadline published elsewhere. With promotion off it
    // keeps losing until the other node's queue empties.
    let run = |promotion: bool| {
        let mut net = Network::builder()
            .nodes(3)
            .srt_dynamic_promotion(promotion)
            .build();
        let a = Subject::new(1);
        let b = Subject::new(2);
        let qa = {
            let mut api = net.api();
            api.announce(
                NodeId(0),
                a,
                ChannelSpec::srt(SrtSpec {
                    default_deadline: Duration::from_ms(3),
                    default_expiration: None,
                }),
            )
            .unwrap();
            api.announce(
                NodeId(1),
                b,
                ChannelSpec::srt(SrtSpec {
                    default_deadline: Duration::from_ms(2),
                    default_expiration: None,
                }),
            )
            .unwrap();
            let qa = api
                .subscribe(NodeId(2), a, SubscribeSpec::default())
                .unwrap();
            api.subscribe(NodeId(2), b, SubscribeSpec::default())
                .unwrap();
            qa
        };
        // B floods beyond bus capacity (a frame every 130 µs vs a
        // ~135 µs wire time) from t = 0 ...
        net.every(Duration::from_us(130), Duration::ZERO, move |api| {
            let _ = api.publish(NodeId(1), b, Event::new(b, vec![0xBB; 8]));
        });
        // ... and one message on A at t = 1 ms with a 3 ms deadline.
        net.at(Time::from_ms(1), move |api| {
            api.publish(NodeId(0), a, Event::new(a, vec![0xAA; 8]))
                .unwrap();
        });
        net.run_for(Duration::from_ms(30));
        // When did A's message reach the wire (MAX = starved)?
        qa.drain()
            .first()
            .map_or(Time::MAX, |d| d.wire_completed_at)
    };
    let with_promo = run(true);
    let without = run(false);
    // With promotion, A's message reaches a more urgent priority than
    // B's fresh 2 ms-deadline messages before its own 3 ms deadline and
    // gets through; without promotion its static laxity-at-enqueue
    // priority loses to the flood indefinitely.
    assert!(
        with_promo < without,
        "promotion speeds A up: {with_promo} !< {without}"
    );
    assert!(
        with_promo <= Time::from_ms(5),
        "promoted message met (roughly) its deadline: {with_promo}"
    );
    assert_eq!(
        without,
        Time::MAX,
        "unpromoted message starves in the flood"
    );
}

#[test]
fn trace_records_slot_and_bus_events() {
    let mut net = Network::builder()
        .nodes(3)
        .round(Duration::from_ms(10))
        .build();
    let sink = net.enable_trace();
    {
        let mut api = net.api();
        api.announce(NodeId(0), S, ChannelSpec::hrt(HrtSpec::periodic_10ms()))
            .unwrap();
        api.subscribe(NodeId(1), S, SubscribeSpec::default())
            .unwrap();
        api.install_calendar().unwrap();
    }
    net.every(Duration::from_ms(10), Duration::from_us(100), |api| {
        let _ = api.publish(NodeId(0), S, Event::new(S, vec![1; 8]));
    });
    net.run_for(Duration::from_ms(25));
    assert!(!sink.is_empty());
    assert!(!sink.events_of_kind("slot_ready").is_empty());
    assert!(!sink.events_of_kind("tx_start").is_empty());
    assert!(!sink.events_of_kind("tx_end").is_empty());
    // Events are timestamped in order.
    let events = sink.events();
    for w in events.windows(2) {
        assert!(w[0].time <= w[1].time);
    }
}

#[test]
fn channel_directory_lists_bound_channels() {
    let mut net = Network::builder().nodes(4).build();
    let a = Subject::new(0xD001);
    let b = Subject::new(0xD002);
    {
        let mut api = net.api();
        api.announce(NodeId(0), a, ChannelSpec::srt(SrtSpec::default()))
            .unwrap();
        api.announce(NodeId(1), b, ChannelSpec::nrt(NrtSpec::bulk()))
            .unwrap();
        api.subscribe(NodeId(2), a, SubscribeSpec::default())
            .unwrap();
        api.subscribe(NodeId(3), a, SubscribeSpec::default())
            .unwrap();
    }
    let dir = net.world().channels();
    assert_eq!(dir.len(), 2);
    assert_eq!(dir[0].1, a);
    assert_eq!(dir[0].2, rtec_core::ChannelClass::Srt);
    assert_eq!(dir[1].2, rtec_core::ChannelClass::Nrt);
    let etag_a = net.world().registry().etag_of(a).unwrap();
    let subs = net.world().subscribers_of(etag_a);
    assert_eq!(subs, vec![NodeId(2), NodeId(3)]);
    assert_eq!(net.world().channel_subject(etag_a), Some(a));
    assert!(net.world().subscribers_of(9999).is_empty());
}
