//! Lower-level bus failures surface to channel endpoints: the paper
//! notes that "the lower levels of the communication system may detect
//! a failure ... and propagate this information through the middleware"
//! (§2.2.1). A corruption storm drives the publisher's controller
//! through error-passive towards bus-off; each transition reaches the
//! publisher's exception handler as a `Fault`.

use rtec_can::FaultModel;
use rtec_core::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

const S: Subject = Subject::new(0xF001);

#[test]
fn error_state_transitions_reach_channel_exception_handlers() {
    let mut net = Network::builder()
        .nodes(2)
        .faults(FaultModel::Iid {
            corruption_p: 1.0,
            omission_p: 0.0,
            omission_scope: rtec_can::OmissionScope::AllReceivers,
        })
        .build();
    let faults: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(vec![]));
    let f = faults.clone();
    {
        let mut api = net.api();
        api.announce_with_handler(
            NodeId(0),
            S,
            ChannelSpec::srt(SrtSpec {
                default_deadline: Duration::from_ms(50),
                default_expiration: None,
            }),
            move |exc| {
                if let rtec_core::ChannelException::Fault { reason, .. } = exc {
                    f.borrow_mut().push(reason.clone());
                }
            },
        )
        .unwrap();
        api.subscribe(NodeId(1), S, SubscribeSpec::default())
            .unwrap();
    }
    net.after(Duration::ZERO, |api| {
        api.publish(NodeId(0), S, Event::new(S, vec![1; 8]))
            .unwrap();
    });
    // Every attempt is corrupted: the controller's TEC climbs to
    // passive (16 attempts) and bus-off (32 attempts).
    net.run_for(Duration::from_ms(20));
    let reasons = faults.borrow();
    assert!(
        reasons.iter().any(|r| r.contains("Passive")),
        "error-passive surfaced: {reasons:?}"
    );
    assert!(
        reasons.iter().any(|r| r.contains("BusOff")),
        "bus-off surfaced: {reasons:?}"
    );
    assert!(net.world().bus.stats.bus_off_events >= 1);
}

#[test]
fn clean_bus_raises_no_fault_exceptions() {
    let mut net = Network::builder().nodes(2).build();
    let count: Rc<RefCell<u32>> = Rc::new(RefCell::new(0));
    let c = count.clone();
    {
        let mut api = net.api();
        api.announce_with_handler(
            NodeId(0),
            S,
            ChannelSpec::srt(SrtSpec::default()),
            move |_| {
                *c.borrow_mut() += 1;
            },
        )
        .unwrap();
        api.subscribe(NodeId(1), S, SubscribeSpec::default())
            .unwrap();
    }
    net.every(Duration::from_ms(1), Duration::ZERO, |api| {
        let _ = api.publish(NodeId(0), S, Event::new(S, vec![2; 8]));
    });
    net.run_for(Duration::from_ms(100));
    assert_eq!(*count.borrow(), 0);
}
