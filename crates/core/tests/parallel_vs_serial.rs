//! Differential test of the parallel execution layer: over random
//! N-segment topologies, seeds, and fault plans, the per-segment-thread
//! driver must produce **byte-identical** results to the serial
//! lockstep oracle — full traces, delivery logs (probes), forward
//! counters, dispatch counts — and identical `T1`..`T8` audit verdicts
//! on every segment's trace.
//!
//! Topologies are random *trees* rooted at segment 0 (relay routes
//! directed away from the root), so relays can chain hops but can
//! never cycle. On an intermediate segment the ingress node of the
//! outgoing route is distinct from the egress node of the incoming
//! route — CAN controllers never receive their own frames, so equal
//! identities would silently break the chain, not bias it.

use proptest::prelude::*;
use rtec_can::fault::{FaultModel, OmissionScope};
use rtec_conformance::audit::{audit, AuditContext};
use rtec_core::prelude::*;
use rtec_core::topology::{Topology, TopologyReport};

/// One randomly drawn topology: a tree over `parents` (index i+1's
/// parent), per-segment seeds, publish periods, and a fault plan.
#[derive(Clone, Debug)]
struct Plan {
    /// parents[i] = parent segment of segment i+1; parents[i] <= i.
    parents: Vec<usize>,
    seeds: Vec<u64>,
    /// Publisher period per segment, in microseconds.
    periods_us: Vec<u64>,
    /// Per-route gateway latency, in units of 100 µs (1..).
    latency_q: Vec<u64>,
    fault: FaultModel,
    fault_seed: u64,
}

fn arb_fault() -> impl Strategy<Value = FaultModel> {
    prop_oneof![
        Just(FaultModel::None),
        Just(FaultModel::None),
        (0.0f64..0.15, 0.0f64..0.15, any::<bool>()).prop_map(|(corruption_p, omission_p, one)| {
            FaultModel::Iid {
                corruption_p,
                omission_p,
                omission_scope: if one {
                    OmissionScope::OneRandomReceiver
                } else {
                    OmissionScope::AllReceivers
                },
            }
        }),
    ]
}

const MAX_SEGS: usize = 4;

fn arb_plan() -> impl Strategy<Value = Plan> {
    // Draw at the maximum width and trim to `n`: the vendored proptest
    // stand-in has no `prop_flat_map`, so sizes can't feed later draws.
    (
        2usize..=MAX_SEGS,
        prop::collection::vec(any::<u64>(), MAX_SEGS - 1),
        prop::collection::vec(any::<u64>(), MAX_SEGS),
        prop::collection::vec(500u64..3000, MAX_SEGS),
        prop::collection::vec(1u64..=8, MAX_SEGS - 1),
        arb_fault(),
        any::<u64>(),
    )
        .prop_map(
            |(n, parents_raw, mut seeds, mut periods_us, mut latency_q, fault, fault_seed)| {
                // Tree shape: parent of segment i+1 is any segment <= i.
                let parents = (0..n - 1)
                    .map(|i| (parents_raw[i] % (i as u64 + 1)) as usize)
                    .collect();
                seeds.truncate(n);
                periods_us.truncate(n);
                latency_q.truncate(n - 1);
                Plan {
                    parents,
                    seeds,
                    periods_us,
                    latency_q,
                    fault,
                    fault_seed,
                }
            },
        )
}

/// Build the topology a `Plan` describes. Six nodes per segment:
/// node 0 publishes, node 1 subscribes, node 2 is the egress identity
/// of the inbound route, and nodes 3..=5 are ingress identities for
/// outbound routes — one per child edge, since a node may not
/// subscribe to the same subject twice.
fn build(plan: &Plan) -> Topology {
    let n = plan.parents.len() + 1;
    let mut topo = Topology::new();
    for seg in 0..n {
        let config = NetworkConfig {
            nodes: 6,
            seed: plan.seeds[seg],
            fault_model: plan.fault.clone(),
            ..NetworkConfig::default()
        };
        // Every segment gets a fault seed derived from the plan's so
        // segments draw independent fault streams deterministically.
        let config = NetworkConfig {
            seed: config.seed ^ plan.fault_seed.rotate_left(seg as u32),
            ..config
        };
        topo.add_segment(config, NodeId(3));
        let subject = Subject::new(0x100 + seg as u64);
        let period = Duration::from_us(plan.periods_us[seg]);
        topo.setup(seg, move |net| {
            {
                let mut api = net.api();
                api.announce(NodeId(0), subject, ChannelSpec::srt(SrtSpec::default()))
                    .unwrap();
                let _ = api
                    .subscribe(NodeId(1), subject, SubscribeSpec::default())
                    .unwrap();
            }
            let mut k = 0u8;
            net.every(period, Duration::from_us(137), move |api| {
                k = k.wrapping_add(1);
                let _ = api.publish(NodeId(0), subject, Event::new(subject, vec![seg as u8, k]));
            });
        });
        // The probe drains the far-side relay queue: the delivery log
        // the serial and parallel drivers must agree on byte-for-byte.
        topo.probe(seg, move |net| {
            let q = net
                .api()
                .subscribe(NodeId(1), Subject::new(0x100), SubscribeSpec::default());
            let mut out = Vec::new();
            if let Ok(q) = q {
                for d in q.drain() {
                    out.extend(d.delivered_at.as_ns().to_le_bytes());
                    out.extend(d.event.content.iter());
                }
            }
            out.extend(net.dispatched().to_le_bytes());
            out
        });
    }
    // Tree edges: each child's subject 0x100 (the root's) is relayed
    // root-ward → leaf-ward so multi-hop chains exercise re-relay of
    // relayed traffic. Subject 0x100 is announced locally only on
    // segment 0; on every other segment it arrives via the route.
    let root_subject = Subject::new(0x100);
    let mut fanout = vec![0u8; n];
    for (i, &parent) in plan.parents.iter().enumerate() {
        let child = i + 1;
        let latency = Duration::from_us(100 * plan.latency_q[i]);
        // Distinct ingress identity per child edge of this parent.
        let ingress = NodeId(3 + fanout[parent]);
        fanout[parent] += 1;
        topo.forward_via(
            root_subject,
            parent,
            child,
            ingress,
            NodeId(2),
            latency,
            SrtSpec::default(),
        );
    }
    topo
}

/// Compare two topology reports field by field with readable failures.
fn assert_identical(serial: &TopologyReport, parallel: &TopologyReport) {
    assert_eq!(serial.segments.len(), parallel.segments.len());
    for (i, (s, p)) in serial
        .segments
        .iter()
        .zip(parallel.segments.iter())
        .enumerate()
    {
        assert_eq!(s.dispatched, p.dispatched, "segment {i} dispatch count");
        assert_eq!(s.forwarded, p.forwarded, "segment {i} forward counters");
        assert_eq!(s.probe, p.probe, "segment {i} probe bytes");
        assert_eq!(s.trace_dropped, p.trace_dropped, "segment {i} trace drops");
        assert_eq!(s.trace.len(), p.trace.len(), "segment {i} trace length");
        for (j, (a, b)) in s.trace.iter().zip(p.trace.iter()).enumerate() {
            assert_eq!(a, b, "segment {i} trace record {j}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn parallel_is_byte_identical_to_serial(plan in arb_plan()) {
        let until = Time::from_ms(25);
        let serial = build(&plan).run_serial(until);
        let parallel = build(&plan).run_parallel(until);
        assert_identical(&serial, &parallel);

        // Not vacuous: the root's traffic really crossed every edge.
        for route in 0..plan.parents.len() as u32 {
            prop_assert!(
                serial.forwarded(route) > 0,
                "route {} never relayed anything", route
            );
        }

        // Same audit verdicts, segment by segment (the auditor models
        // a single bus, so it runs per segment, not on the merge).
        let ctx = AuditContext::bare();
        for (i, (s, p)) in serial.segments.iter().zip(parallel.segments.iter()).enumerate() {
            let vs = audit(&ctx, &s.trace);
            let vp = audit(&ctx, &p.trace);
            prop_assert_eq!(
                format!("{vs}"), format!("{vp}"),
                "segment {} audit verdicts diverged", i
            );
        }

        // The merged multi-segment traces agree too.
        let ms = serial.merged_trace();
        let mp = parallel.merged_trace();
        prop_assert_eq!(ms.len(), mp.len());
        prop_assert!(ms == mp, "merged traces diverged");
    }

    /// The serial experiment surface itself is seed-stable: the same
    /// plan run twice serially is byte-identical (guards the oracle).
    #[test]
    fn serial_runs_are_seed_stable(plan in arb_plan()) {
        let until = Time::from_ms(10);
        let one = build(&plan).run_serial(until);
        let two = build(&plan).run_serial(until);
        assert_identical(&one, &two);
    }
}
