//! End-to-end tests of the hard real-time event channel: calendar
//! reservations, LST priority raising, jitter removal, time redundancy
//! with early stop, and non-interference with lower channel classes.

use rtec_can::bits::BitTiming;
use rtec_can::FaultModel;
use rtec_core::channel::HrtSpec;
use rtec_core::network::CalendarError;
use rtec_core::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

const SENSOR: Subject = Subject::new(0x2001);
const NOISE: Subject = Subject::new(0x2002);

fn hrt_spec(period_ms: u64, k: u32) -> HrtSpec {
    HrtSpec {
        period: Duration::from_ms(period_ms),
        dlc: 8,
        omission_degree: k,
        sporadic: false,
    }
}

/// Build a 4-node net: node 0 publishes SENSOR on HRT; node 2
/// subscribes; returns (net, queue).
fn hrt_net(k: u32) -> (Network, EventQueue) {
    let mut net = Network::builder()
        .nodes(4)
        .round(Duration::from_ms(10))
        .build();
    let q = {
        let mut api = net.api();
        api.announce(NodeId(0), SENSOR, ChannelSpec::hrt(hrt_spec(10, k)))
            .unwrap();
        let q = api
            .subscribe(NodeId(2), SENSOR, SubscribeSpec::default())
            .unwrap();
        api.install_calendar().unwrap();
        q
    };
    // Publish fresh sensor data every round, well before each slot.
    net.every(Duration::from_ms(10), Duration::from_us(100), |api| {
        let t = api.now().as_ns().to_le_bytes();
        let _ = api.publish(NodeId(0), SENSOR, Event::new(SENSOR, t.to_vec()));
    });
    (net, q)
}

fn etag_of(net: &Network, s: Subject) -> u16 {
    net.world().registry().etag_of(s).expect("bound")
}

#[test]
fn hrt_periodic_delivery_every_round() {
    let (mut net, q) = hrt_net(2);
    net.run_for(Duration::from_ms(105));
    let deliveries = q.drain();
    assert!(
        (9..=11).contains(&deliveries.len()),
        "one delivery per 10 ms round, got {}",
        deliveries.len()
    );
    let st = net.stats().channel(etag_of(&net, SENSOR));
    assert_eq!(st.missing_events, 0);
    assert_eq!(st.redundancy_exhausted, 0);
}

#[test]
fn hrt_delivery_jitter_is_zero_on_a_fault_free_bus() {
    let (mut net, q) = hrt_net(2);
    net.run_for(Duration::from_ms(205));
    let deliveries = q.drain();
    assert!(deliveries.len() >= 18);
    // Deliveries are spaced exactly one period apart: the middleware
    // delivers at the slot deadline regardless of when the frame
    // actually completed (§3.2 — "HRT messages are always delivered by
    // the middleware at the predefined transmission deadline").
    let mut gaps = vec![];
    for w in deliveries.windows(2) {
        gaps.push(w[1].delivered_at.saturating_since(w[0].delivered_at));
    }
    for g in &gaps {
        assert_eq!(*g, Duration::from_ms(10), "zero period jitter");
    }
    let st = net.stats().channel(etag_of(&net, SENSOR));
    assert_eq!(st.delivery_jitter_ns(), 0);
}

#[test]
fn hrt_jitter_removal_hides_wire_jitter_under_background_load() {
    // Saturating SRT background makes the *wire* completion time vary
    // inside the slot (blocking before the LST), but deliveries stay
    // exactly periodic. The ablation (deferred delivery off) exposes
    // the wire jitter to the application.
    let build = |deferred: bool| {
        let mut net = Network::builder()
            .nodes(4)
            .round(Duration::from_ms(10))
            .hrt_deferred_delivery(deferred)
            .seed(7)
            .build();
        let q = {
            let mut api = net.api();
            api.announce(NodeId(0), SENSOR, ChannelSpec::hrt(hrt_spec(10, 1)))
                .unwrap();
            api.announce(NodeId(1), NOISE, ChannelSpec::srt(SrtSpec::default()))
                .unwrap();
            let q = api
                .subscribe(NodeId(2), SENSOR, SubscribeSpec::default())
                .unwrap();
            api.subscribe(NodeId(3), NOISE, SubscribeSpec::default())
                .unwrap();
            api.install_calendar().unwrap();
            q
        };
        net.every(Duration::from_ms(10), Duration::from_us(100), |api| {
            let _ = api.publish(NodeId(0), SENSOR, Event::new(SENSOR, vec![1; 8]));
        });
        // Irregular SRT background that keeps the bus busy.
        net.every(Duration::from_us(137), Duration::ZERO, |api| {
            let base = api.now_global(NodeId(1));
            let _ = api.publish(
                NodeId(1),
                NOISE,
                Event::new(NOISE, vec![0xFF; 8]).with_deadline(base + Duration::from_ms(5)),
            );
        });
        net.run_for(Duration::from_ms(200));
        let deliveries = q.drain();
        let mut spread_min = u64::MAX;
        let mut spread_max = 0u64;
        for w in deliveries.windows(2) {
            let gap = w[1]
                .delivered_at
                .saturating_since(w[0].delivered_at)
                .as_ns();
            spread_min = spread_min.min(gap);
            spread_max = spread_max.max(gap);
        }
        (spread_max - spread_min, deliveries.len())
    };
    let (jitter_deferred, n1) = build(true);
    let (jitter_immediate, n2) = build(false);
    assert!(n1 >= 15 && n2 >= 15);
    assert_eq!(jitter_deferred, 0, "deferred delivery removes all jitter");
    assert!(
        jitter_immediate > 0,
        "without deferral the wire jitter reaches the application"
    );
}

#[test]
fn hrt_blocking_at_lst_is_bounded_by_delta_t_wait() {
    // Even under adversarial background traffic, the HRT frame waits at
    // most one maximal frame after its LST (non-preemption bound).
    let mut net = Network::builder()
        .nodes(4)
        .round(Duration::from_ms(10))
        .build();
    {
        let mut api = net.api();
        api.announce(NodeId(0), SENSOR, ChannelSpec::hrt(hrt_spec(10, 1)))
            .unwrap();
        api.announce(NodeId(1), NOISE, ChannelSpec::srt(SrtSpec::default()))
            .unwrap();
        api.subscribe(NodeId(2), SENSOR, SubscribeSpec::default())
            .unwrap();
        api.subscribe(NodeId(3), NOISE, SubscribeSpec::default())
            .unwrap();
        api.install_calendar().unwrap();
    }
    net.every(Duration::from_ms(10), Duration::from_us(100), |api| {
        let _ = api.publish(NodeId(0), SENSOR, Event::new(SENSOR, vec![1; 8]));
    });
    net.every(Duration::from_us(130), Duration::ZERO, |api| {
        let base = api.now_global(NodeId(1));
        let _ = api.publish(
            NodeId(1),
            NOISE,
            Event::new(NOISE, vec![0xFF; 8]).with_deadline(base + Duration::from_ms(2)),
        );
    });
    net.run_for(Duration::from_ms(300));
    let max_block = net.stats().max_lst_blocking();
    assert!(
        max_block > Duration::ZERO,
        "background traffic does block sometimes"
    );
    assert!(
        max_block <= BitTiming::MBIT_1.delta_t_wait_tight(),
        "blocking {max_block} exceeds ΔT_wait"
    );
}

#[test]
fn hrt_masks_omissions_within_budget_via_redundancy() {
    let (mut net, q) = hrt_net(2);
    // Omit the first 2 transmissions of every activation — exactly the
    // assumed omission degree.
    let etag = etag_of(&net, SENSOR);
    net.world_mut()
        .bus
        .injector_mut()
        .set_model(FaultModel::OmitRun {
            etag: Some(etag),
            run_len: 2,
        });
    // Reset the omission run at each round boundary so every activation
    // suffers the full degree.
    net.every(Duration::from_ms(10), Duration::from_us(50), |api| {
        api.world_mut().bus.injector_mut().reset_runs();
    });
    net.run_for(Duration::from_ms(105));
    let deliveries = q.drain();
    assert!(
        deliveries.len() >= 9,
        "all events delivered despite omissions, got {}",
        deliveries.len()
    );
    let st = net.stats().channel(etag);
    assert!(
        st.redundant_transmissions >= 18,
        "2 extra transmissions per event"
    );
    assert_eq!(st.missing_events, 0);
    assert_eq!(st.redundancy_exhausted, 0);
    // And deliveries are still perfectly periodic (redundancy happens
    // inside the slot).
    for w in deliveries.windows(2) {
        assert_eq!(
            w[1].delivered_at.saturating_since(w[0].delivered_at),
            Duration::from_ms(10)
        );
    }
}

#[test]
fn hrt_fault_assumption_violation_is_detected() {
    // Omission degree 3 > budget k=1: the publisher reports
    // RedundancyExhausted and the subscriber MissingEvent.
    let mut net = Network::builder()
        .nodes(4)
        .round(Duration::from_ms(10))
        .build();
    let pub_exc: Rc<RefCell<u32>> = Rc::new(RefCell::new(0));
    let sub_exc: Rc<RefCell<u32>> = Rc::new(RefCell::new(0));
    let (pe, se) = (pub_exc.clone(), sub_exc.clone());
    let q = {
        let mut api = net.api();
        api.announce_with_handler(
            NodeId(0),
            SENSOR,
            ChannelSpec::hrt(hrt_spec(10, 1)),
            move |exc| {
                if matches!(exc, rtec_core::ChannelException::RedundancyExhausted { .. }) {
                    *pe.borrow_mut() += 1;
                }
            },
        )
        .unwrap();
        let q = api
            .subscribe_with(
                NodeId(2),
                SENSOR,
                SubscribeSpec::default(),
                |_d| {},
                move |exc| {
                    if matches!(exc, rtec_core::ChannelException::MissingEvent { .. }) {
                        *se.borrow_mut() += 1;
                    }
                },
            )
            .unwrap();
        api.install_calendar().unwrap();
        q
    };
    let etag = etag_of(&net, SENSOR);
    net.world_mut()
        .bus
        .injector_mut()
        .set_model(FaultModel::OmitRun {
            etag: Some(etag),
            run_len: 10, // every transmission of the activation omitted
        });
    net.every(Duration::from_ms(10), Duration::from_us(100), |api| {
        let _ = api.publish(NodeId(0), SENSOR, Event::new(SENSOR, vec![1; 8]));
        api.world_mut().bus.injector_mut().reset_runs();
    });
    net.run_for(Duration::from_ms(55));
    assert!(
        q.is_empty(),
        "nothing delivered beyond the fault assumption"
    );
    assert!(
        *pub_exc.borrow() >= 4,
        "publisher exceptions: {}",
        pub_exc.borrow()
    );
    assert!(
        *sub_exc.borrow() >= 4,
        "subscriber exceptions: {}",
        sub_exc.borrow()
    );
}

#[test]
fn hrt_early_stop_reclaims_unused_redundancy_bandwidth() {
    // With k = 2 and a fault-free bus, only ONE transmission per event
    // happens — the redundancy costs bandwidth only when faults occur
    // (§3.2). SRT traffic gets the reclaimed slot time.
    let (mut net, _q) = hrt_net(2);
    net.run_for(Duration::from_ms(105));
    let st = net.stats().channel(etag_of(&net, SENSOR));
    assert_eq!(st.redundant_transmissions, 0);
    assert_eq!(
        st.wire_transmissions,
        st.published.min(st.wire_transmissions)
    );
    // Wire transmissions equal the number of slots served.
    assert!((9..=11).contains(&st.wire_transmissions));
}

#[test]
fn hrt_sporadic_channel_empty_slots_are_silent() {
    let mut net = Network::builder()
        .nodes(3)
        .round(Duration::from_ms(10))
        .build();
    let q = {
        let mut api = net.api();
        api.announce(
            NodeId(0),
            SENSOR,
            ChannelSpec::hrt(HrtSpec {
                sporadic: true,
                ..hrt_spec(10, 1)
            }),
        )
        .unwrap();
        let q = api
            .subscribe(NodeId(1), SENSOR, SubscribeSpec::default())
            .unwrap();
        api.install_calendar().unwrap();
        q
    };
    // Publish only twice over 10 rounds.
    net.after(Duration::from_ms(12), |api| {
        api.publish(NodeId(0), SENSOR, Event::new(SENSOR, vec![1]))
            .unwrap();
    });
    net.after(Duration::from_ms(52), |api| {
        api.publish(NodeId(0), SENSOR, Event::new(SENSOR, vec![2]))
            .unwrap();
    });
    net.run_for(Duration::from_ms(105));
    assert_eq!(q.drain().len(), 2);
    let st = net.stats().channel(etag_of(&net, SENSOR));
    assert_eq!(
        st.missing_events, 0,
        "sporadic: empty slots are not missing"
    );
}

#[test]
fn hrt_periodic_channel_missing_event_detected_when_publisher_stops() {
    let (mut net, q) = hrt_net(1);
    // The recurring publisher publishes forever; run a while, then
    // check that stopping publications would be detected. Simulate the
    // stop by crashing the publisher node's application: cancel is not
    // allowed for HRT, so instead build a second net whose publisher
    // publishes only 3 times.
    net.run_for(Duration::from_ms(45));
    let st0 = net.stats().channel(etag_of(&net, SENSOR)).missing_events;
    assert_eq!(st0, 0);
    drop(q);

    let mut net2 = Network::builder()
        .nodes(3)
        .round(Duration::from_ms(10))
        .build();
    let q2 = {
        let mut api = net2.api();
        api.announce(NodeId(0), SENSOR, ChannelSpec::hrt(hrt_spec(10, 1)))
            .unwrap();
        let q = api
            .subscribe(NodeId(1), SENSOR, SubscribeSpec::default())
            .unwrap();
        api.install_calendar().unwrap();
        q
    };
    for i in 0..3u64 {
        net2.at(Time::from_us(100) + Duration::from_ms(10 * i), move |api| {
            api.publish(NodeId(0), SENSOR, Event::new(SENSOR, vec![i as u8]))
                .unwrap();
        });
    }
    net2.run_for(Duration::from_ms(105));
    assert_eq!(q2.drain().len(), 3);
    let missing = net2.stats().channel(etag_of(&net2, SENSOR)).missing_events;
    assert!(
        (6..=8).contains(&missing),
        "~7 empty periodic slots detected, got {missing}"
    );
}

#[test]
fn hrt_announce_after_calendar_is_rejected() {
    let mut net = Network::builder().nodes(3).build();
    let mut api = net.api();
    api.announce(NodeId(0), SENSOR, ChannelSpec::hrt(hrt_spec(10, 1)))
        .unwrap();
    api.install_calendar().unwrap();
    let err = api
        .announce(NodeId(1), NOISE, ChannelSpec::hrt(hrt_spec(10, 1)))
        .unwrap_err();
    assert!(matches!(
        err,
        rtec_core::channel::ChannelError::CalendarState(_)
    ));
    assert_eq!(api.install_calendar(), Err(CalendarError::AlreadyInstalled));
}

#[test]
fn hrt_publish_requires_calendar() {
    let mut net = Network::builder().nodes(3).build();
    let mut api = net.api();
    api.announce(NodeId(0), SENSOR, ChannelSpec::hrt(hrt_spec(10, 1)))
        .unwrap();
    let err = api
        .publish(NodeId(0), SENSOR, Event::new(SENSOR, vec![1]))
        .unwrap_err();
    assert!(matches!(
        err,
        rtec_core::channel::ChannelError::CalendarState(_)
    ));
}

#[test]
fn hrt_admission_rejects_overload() {
    let mut net = Network::builder()
        .nodes(8)
        .round(Duration::from_ms(1))
        .build();
    let mut api = net.api();
    // Each k=2 slot is ~720 µs; two of them cannot fit in a 1 ms round.
    for (i, s) in [(0u8, 0x3001u64), (1, 0x3002)] {
        api.announce(
            NodeId(i),
            Subject::new(s),
            ChannelSpec::hrt(HrtSpec {
                period: Duration::from_ms(1),
                dlc: 8,
                omission_degree: 2,
                sporadic: false,
            }),
        )
        .unwrap();
    }
    let err = api.install_calendar().unwrap_err();
    assert!(matches!(err, CalendarError::Admission(_)), "{err:?}");
}

#[test]
fn hrt_multiple_channels_coexist() {
    let mut net = Network::builder()
        .nodes(5)
        .round(Duration::from_ms(10))
        .build();
    let s_a = Subject::new(0x4001);
    let s_b = Subject::new(0x4002);
    let (qa, qb) = {
        let mut api = net.api();
        api.announce(NodeId(0), s_a, ChannelSpec::hrt(hrt_spec(10, 1)))
            .unwrap();
        api.announce(NodeId(1), s_b, ChannelSpec::hrt(hrt_spec(5, 1)))
            .unwrap();
        let qa = api
            .subscribe(NodeId(2), s_a, SubscribeSpec::default())
            .unwrap();
        let qb = api
            .subscribe(NodeId(3), s_b, SubscribeSpec::default())
            .unwrap();
        api.install_calendar().unwrap();
        (qa, qb)
    };
    net.every(Duration::from_ms(10), Duration::from_us(100), move |api| {
        let _ = api.publish(NodeId(0), s_a, Event::new(s_a, vec![0xA; 8]));
    });
    net.every(Duration::from_ms(5), Duration::from_us(100), move |api| {
        let _ = api.publish(NodeId(1), s_b, Event::new(s_b, vec![0xB; 8]));
    });
    net.run_for(Duration::from_ms(105));
    let da = qa.drain();
    let db = qb.drain();
    assert!((9..=11).contains(&da.len()), "A: {}", da.len());
    assert!((19..=21).contains(&db.len()), "B: {}", db.len());
    // No cross-talk.
    assert!(da.iter().all(|d| d.event.content[0] == 0xA));
    assert!(db.iter().all(|d| d.event.content[0] == 0xB));
    // Both channels kept their guarantees.
    assert_eq!(net.stats().channel(etag_of(&net, s_a)).missing_events, 0);
    assert_eq!(net.stats().channel(etag_of(&net, s_b)).missing_events, 0);
}

#[test]
fn hrt_latency_bounded_by_slot_deadline_offset() {
    let (mut net, q) = hrt_net(2);
    net.run_for(Duration::from_ms(105));
    drop(q);
    let st = net.stats().channel(etag_of(&net, SENSOR));
    // Latency (slot ready -> delivery) is exactly the slot's deadline
    // offset: ΔT_wait + (k+1)C + k*E. For k=2, dlc=8:
    // 154 + 3*160 + 2*23 = 680 µs.
    let lat = st.latency_ns.clone();
    assert!(lat.count() >= 9);
    assert_eq!(lat.min(), lat.max(), "deterministic latency");
    assert_eq!(lat.min().unwrap(), 680_000);
}
