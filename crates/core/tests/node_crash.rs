//! Temporary node faults: crash and recovery of publishers and
//! subscribers, and how the channel classes surface them.

use rtec_core::channel::HrtSpec;
use rtec_core::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

const SENSOR: Subject = Subject::new(0x6001);

fn hrt_net() -> (Network, EventQueue, Rc<RefCell<u32>>) {
    let mut net = Network::builder()
        .nodes(4)
        .round(Duration::from_ms(10))
        .build();
    let missing: Rc<RefCell<u32>> = Rc::new(RefCell::new(0));
    let m = missing.clone();
    let q = {
        let mut api = net.api();
        api.announce(
            NodeId(0),
            SENSOR,
            ChannelSpec::hrt(HrtSpec {
                period: Duration::from_ms(10),
                dlc: 8,
                omission_degree: 1,
                sporadic: false,
            }),
        )
        .unwrap();
        let q = api
            .subscribe_with(
                NodeId(2),
                SENSOR,
                SubscribeSpec::default(),
                |_d| {},
                move |exc| {
                    if matches!(exc, rtec_core::ChannelException::MissingEvent { .. }) {
                        *m.borrow_mut() += 1;
                    }
                },
            )
            .unwrap();
        api.install_calendar().unwrap();
        q
    };
    net.every(Duration::from_ms(10), Duration::from_us(100), |api| {
        let _ = api.publish(NodeId(0), SENSOR, Event::new(SENSOR, vec![7; 8]));
    });
    (net, q, missing)
}

#[test]
fn publisher_crash_is_detected_and_recovery_resumes_delivery() {
    let (mut net, q, missing) = hrt_net();
    // Healthy phase.
    net.run_for(Duration::from_ms(100));
    let healthy = q.drain().len();
    assert!((9..=10).contains(&healthy), "{healthy}");
    assert_eq!(*missing.borrow(), 0);

    // Crash the publisher's controller for ~5 rounds.
    net.after(Duration::ZERO, |api| {
        api.set_node_operational(NodeId(0), false);
    });
    net.run_for(Duration::from_ms(50));
    let during_crash = q.drain().len();
    let missing_during = *missing.borrow();
    assert_eq!(during_crash, 0, "no deliveries while crashed");
    assert!(
        (4..=6).contains(&missing_during),
        "subscriber detected ~5 empty slots: {missing_during}"
    );

    // Revive; deliveries resume.
    net.after(Duration::ZERO, |api| {
        api.set_node_operational(NodeId(0), true);
    });
    net.run_for(Duration::from_ms(100));
    let after = q.drain().len();
    assert!(after >= 9, "recovered: {after}");
}

#[test]
fn crashed_subscriber_misses_frames_but_channel_keeps_working() {
    let (mut net, q, _missing) = hrt_net();
    // Second subscriber that stays healthy.
    let q2 = net
        .api()
        .subscribe(NodeId(3), SENSOR, SubscribeSpec::default())
        .unwrap();
    net.after(Duration::from_ms(20), |api| {
        api.set_node_operational(NodeId(2), false);
    });
    net.after(Duration::from_ms(70), |api| {
        api.set_node_operational(NodeId(2), true);
    });
    net.run_for(Duration::from_ms(200));
    let crashed_got = q.drain().len();
    let healthy_got = q2.drain().len();
    assert!(
        healthy_got >= 19,
        "healthy subscriber unaffected: {healthy_got}"
    );
    assert!(
        crashed_got < healthy_got,
        "crashed subscriber lost the frames sent while down"
    );
    // With one subscriber down, the sender's all-received check covers
    // only operational nodes, so no redundancy was wasted.
    let etag = net.world().registry().etag_of(SENSOR).unwrap();
    assert_eq!(net.stats().channel(etag).redundancy_exhausted, 0);
}

#[test]
fn srt_publisher_crash_is_invisible_to_subscribers() {
    // SRT channels have no reservations, so to a *subscriber* a crashed
    // publisher is indistinguishable from one with nothing to say — no
    // subscriber-side exceptions, just absence (which is exactly why
    // the paper gives HRT channels reservation-based missing-event
    // detection). The crashed node itself still notices: its queued
    // messages miss their deadlines locally.
    let mut net = Network::builder().nodes(3).build();
    let s = Subject::new(0x6002);
    let q = {
        let mut api = net.api();
        api.announce(NodeId(0), s, ChannelSpec::srt(SrtSpec::default()))
            .unwrap();
        api.subscribe(NodeId(1), s, SubscribeSpec::default())
            .unwrap()
    };
    net.every(Duration::from_ms(5), Duration::ZERO, move |api| {
        let _ = api.publish(NodeId(0), s, Event::new(s, vec![1]));
    });
    net.after(Duration::from_ms(50), |api| {
        api.set_node_operational(NodeId(0), false);
    });
    net.run_for(Duration::from_ms(100));
    let got = q.drain().len();
    assert!((9..=11).contains(&got), "only pre-crash events: {got}");
    let etag = net.world().registry().etag_of(s).unwrap();
    let ch = net.stats().channel(etag);
    // No subscriber-side detection possible...
    assert_eq!(ch.missing_events, 0);
    // ... but the crashed publisher is locally aware: every post-crash
    // message missed its transmission deadline.
    assert!(ch.deadline_misses >= 9, "{}", ch.deadline_misses);
}
