//! Property-based tests of the middleware's pure kernels:
//! fragmentation, tag packing and the binding wire formats.

use proptest::prelude::*;
use rtec_core::binding::{BindReply, BindRequest, BindStatus, SubjectRegistry};
use rtec_core::event::Subject;
use rtec_core::frag::{fragment, fragment_count, Reassembler};
use rtec_core::node::{pack_tag, unpack_tag, TagKind};

fn arb_kind() -> impl Strategy<Value = TagKind> {
    prop_oneof![
        Just(TagKind::Hrt),
        Just(TagKind::Srt),
        Just(TagKind::Nrt),
        Just(TagKind::Bind),
        Just(TagKind::Sync),
    ]
}

proptest! {
    /// Fragmentation round-trips for arbitrary message bodies.
    #[test]
    fn fragment_reassemble_roundtrip(data in prop::collection::vec(any::<u8>(), 0..3000)) {
        let frags = fragment(&data);
        prop_assert_eq!(frags.len(), fragment_count(data.len()));
        let mut r: Reassembler<u8> = Reassembler::new();
        let mut out = None;
        for f in &frags {
            prop_assert!(f.len() <= 8, "fragment exceeds a CAN payload");
            out = r.push(0, f).unwrap();
        }
        prop_assert_eq!(out.expect("message completes"), data);
        prop_assert_eq!(r.in_progress(), 0);
    }

    /// Interleaving fragments of two senders never cross-contaminates.
    #[test]
    fn fragment_streams_are_isolated(
        a in prop::collection::vec(any::<u8>(), 1..500),
        b in prop::collection::vec(any::<u8>(), 1..500),
    ) {
        let fa = fragment(&a);
        let fb = fragment(&b);
        let mut r: Reassembler<u8> = Reassembler::new();
        let (mut got_a, mut got_b) = (None, None);
        for i in 0..fa.len().max(fb.len()) {
            if let Some(f) = fa.get(i) {
                if let Some(m) = r.push(1, f).unwrap() { got_a = Some(m); }
            }
            if let Some(f) = fb.get(i) {
                if let Some(m) = r.push(2, f).unwrap() { got_b = Some(m); }
            }
        }
        prop_assert_eq!(got_a.unwrap(), a);
        prop_assert_eq!(got_b.unwrap(), b);
    }

    /// Dropping any single non-final fragment is always detected (no
    /// silent corruption).
    #[test]
    fn dropped_fragment_never_reassembles_silently(
        data in prop::collection::vec(any::<u8>(), 20..400),
        drop_idx in any::<prop::sample::Index>(),
    ) {
        let frags = fragment(&data);
        prop_assume!(frags.len() >= 3);
        let drop = 1 + drop_idx.index(frags.len() - 2); // never the FIRST
        let mut r: Reassembler<u8> = Reassembler::new();
        let mut completed = None;
        let mut errored = false;
        for (i, f) in frags.iter().enumerate() {
            if i == drop {
                continue;
            }
            match r.push(0, f) {
                Ok(Some(m)) => completed = Some(m),
                Ok(None) => {}
                Err(_) => { errored = true; break; }
            }
        }
        prop_assert!(errored, "gap must be detected");
        prop_assert!(completed.is_none());
    }

    /// Tag packing round-trips over the full field ranges.
    #[test]
    fn tag_roundtrip(kind in arb_kind(), etag in 0u16..(1 << 14), seq in any::<u32>()) {
        prop_assert_eq!(unpack_tag(pack_tag(kind, etag, seq)), Some((kind, etag, seq)));
    }

    /// Binding wire formats round-trip.
    #[test]
    fn bind_wire_roundtrip(
        seq in any::<u16>(),
        uid in any::<u64>(),
        requester in 0u8..128,
        etag in 0u16..(1 << 14),
        ok in any::<bool>(),
    ) {
        let req = BindRequest::new(seq, Subject::new(uid));
        prop_assert_eq!(BindRequest::decode(&req.encode()), Some(req));
        let rep = BindReply {
            requester,
            seq,
            etag,
            status: if ok { BindStatus::Ok } else { BindStatus::Exhausted },
        };
        prop_assert_eq!(BindReply::decode(&rep.encode()), Some(rep));
    }

    /// The registry gives distinct subjects distinct etags and is
    /// idempotent under arbitrary bind orders.
    #[test]
    fn registry_injective(uids in prop::collection::hash_set(0u64..0xFFFF_FFFF_FFFF, 1..100)) {
        let mut reg = SubjectRegistry::new();
        let mut etags = std::collections::HashSet::new();
        for &uid in &uids {
            let etag = reg.bind(Subject::new(uid)).unwrap();
            prop_assert!(etags.insert(etag), "etag reused");
            // Idempotent.
            prop_assert_eq!(reg.bind(Subject::new(uid)).unwrap(), etag);
        }
        prop_assert_eq!(reg.len(), uids.len());
    }
}
