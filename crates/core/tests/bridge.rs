//! Multi-network channels over the store-and-forward gateway (§2.2.1).

use rtec_core::bridge::{Bridge, Segment};
use rtec_core::channel::HrtSpec;
use rtec_core::prelude::*;

const TEMP: Subject = Subject::new(0x8001);
const LOCAL_ONLY: Subject = Subject::new(0x8002);

/// Segment A: field bus with 4 nodes (gateway = node 3).
/// Segment B: backbone with 3 nodes (gateway = node 2).
fn bridged() -> Bridge {
    let a = Network::builder().nodes(4).build();
    let b = Network::builder().nodes(3).build();
    Bridge::new(a, b, NodeId(3), NodeId(2), Duration::from_ms(1))
}

#[test]
fn events_cross_the_gateway_with_latency() {
    let mut bridge = bridged();
    // Publisher on the field bus, subscriber on the backbone.
    {
        let mut api = bridge.a.api();
        api.announce(NodeId(0), TEMP, ChannelSpec::srt(SrtSpec::default()))
            .unwrap();
    }
    let far_q = {
        let mut api = bridge.b.api();
        api.subscribe(NodeId(1), TEMP, SubscribeSpec::default())
            .unwrap()
    };
    bridge
        .forward(TEMP, Segment::A, SrtSpec::default())
        .unwrap();
    bridge.a.at(Time::from_ms(2), |api| {
        api.publish(NodeId(0), TEMP, Event::new(TEMP, vec![21, 5]))
            .unwrap();
    });
    bridge.run_until(Time::from_ms(20));
    let deliveries = far_q.drain();
    assert_eq!(deliveries.len(), 1, "event crossed the bridge");
    let d = &deliveries[0];
    assert_eq!(d.event.content, vec![21, 5]);
    // Far-side origin is the gateway's node on segment B.
    assert_eq!(d.event.attributes.origin, Some(NodeId(2)));
    // Store-and-forward latency respected (publish at 2 ms + ~1 ms
    // gateway + two wire hops).
    assert!(d.delivered_at >= Time::from_ms(3));
    assert!(d.delivered_at <= Time::from_ms(6));
    assert_eq!(bridge.forwarded(TEMP, Segment::A), 1);
}

#[test]
fn origin_filter_separates_local_from_remote_publishers() {
    // The paper's example: a subscriber interested only in events from
    // publishers in its own network filters on origin — remote events
    // arrive with the gateway's TxNode and are dropped.
    let a = Network::builder().nodes(4).build();
    let b = Network::builder().nodes(5).build();
    let mut bridge = Bridge::new(a, b, NodeId(3), NodeId(4), Duration::from_ms(1));
    {
        let mut api = bridge.a.api();
        api.announce(NodeId(0), TEMP, ChannelSpec::srt(SrtSpec::default()))
            .unwrap();
    }
    let (open_q, local_q) = {
        let mut api = bridge.b.api();
        api.announce(NodeId(0), TEMP, ChannelSpec::srt(SrtSpec::default()))
            .unwrap();
        let open = api
            .subscribe(NodeId(1), TEMP, SubscribeSpec::default())
            .unwrap();
        let local = api
            .subscribe(
                NodeId(2),
                TEMP,
                SubscribeSpec::from_origins(vec![NodeId(0)]), // local pub only
            )
            .unwrap();
        (open, local)
    };
    bridge
        .forward(TEMP, Segment::A, SrtSpec::default())
        .unwrap();
    // One remote publication (on A) and one local publication (on B).
    bridge.a.at(Time::from_ms(2), |api| {
        api.publish(NodeId(0), TEMP, Event::new(TEMP, vec![0xAA]))
            .unwrap();
    });
    bridge.b.at(Time::from_ms(2), |api| {
        api.publish(NodeId(0), TEMP, Event::new(TEMP, vec![0xBB]))
            .unwrap();
    });
    bridge.run_until(Time::from_ms(20));
    let open = open_q.drain();
    let local = local_q.drain();
    assert_eq!(open.len(), 2, "open subscriber sees local + remote");
    assert_eq!(local.len(), 1, "filtered subscriber sees only local");
    assert_eq!(local[0].event.content, vec![0xBB]);
}

#[test]
fn hrt_stays_segment_local_while_its_events_cross_as_srt() {
    // A hard real-time sensor on the field bus keeps its guarantees
    // locally; the backbone gets the values best-effort via the bridge.
    let a = Network::builder()
        .nodes(4)
        .round(Duration::from_ms(10))
        .build();
    let b = Network::builder().nodes(3).build();
    let mut bridge = Bridge::new(a, b, NodeId(3), NodeId(2), Duration::from_ms(1));
    let local_q = {
        let mut api = bridge.a.api();
        api.announce(
            NodeId(0),
            TEMP,
            ChannelSpec::hrt(HrtSpec {
                period: Duration::from_ms(10),
                dlc: 8,
                omission_degree: 1,
                sporadic: false,
            }),
        )
        .unwrap();
        api.subscribe(NodeId(1), TEMP, SubscribeSpec::default())
            .unwrap()
    };
    let far_q = {
        let mut api = bridge.b.api();
        api.subscribe(NodeId(1), TEMP, SubscribeSpec::default())
            .unwrap()
    };
    bridge
        .forward(TEMP, Segment::A, SrtSpec::default())
        .unwrap();
    {
        let mut api = bridge.a.api();
        api.install_calendar().unwrap();
    }
    bridge
        .a
        .every(Duration::from_ms(10), Duration::from_us(100), |api| {
            let _ = api.publish(NodeId(0), TEMP, Event::new(TEMP, vec![9; 8]));
        });
    bridge.run_until(Time::from_ms(205));
    let local = local_q.drain();
    assert!(local.len() >= 19);
    // Segment-local HRT: perfectly periodic.
    for w in local.windows(2) {
        assert_eq!(w[1].delivered_at - w[0].delivered_at, Duration::from_ms(10));
    }
    // Backbone copies arrive best-effort (same count, no jitter bound).
    let far = far_q.drain();
    assert!(far.len() >= 18, "far side got {}", far.len());
    assert_eq!(bridge.forwarded(TEMP, Segment::A), local.len() as u64);

    // The second subscriber (LOCAL_ONLY unused here) keeps the compiler
    // honest about unused consts.
    let _ = LOCAL_ONLY;
}
