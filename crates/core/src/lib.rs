//! # rtec-core — real-time event channels over CAN
//!
//! This crate is the paper's contribution: a publisher/subscriber
//! middleware whose *event channels* come in three timeliness classes
//! (§2.2), mapped onto the CAN bus by exploiting its priority
//! arbitration (§3):
//!
//! | class | guarantee | mechanism |
//! |---|---|---|
//! | **HRTEC** | bounded latency & jitter under a stated omission-fault assumption | calendar slot reservation + LST priority raise to the reserved top priority + time-redundant transmission with early stop + delivery at the slot deadline |
//! | **SRTEC** | EDF best-effort with miss/expiry awareness | deadline → priority-slot mapping on the 8-bit priority field, dynamic promotion, local deadline/expiration exceptions |
//! | **NRTEC** | none (background) | fixed low priority, fragmentation for bulk payloads |
//!
//! ## Entry points
//!
//! Everything runs inside a deterministic simulation world,
//! [`Network`]: build one with [`NetworkBuilder`], create channels and
//! publish through [`NetApi`] (obtained from [`Network::api`] or inside
//! scheduled application closures), then run simulated time forward.
//!
//! ```
//! use rtec_core::prelude::*;
//!
//! let mut net = Network::builder().nodes(3).build();
//! let speed = Subject::new(0x100);
//! {
//!     let mut api = net.api();
//!     api.announce(NodeId(0), speed, ChannelSpec::srt(SrtSpec::default()))
//!         .unwrap();
//!     let _q = api
//!         .subscribe(NodeId(1), speed, SubscribeSpec::default())
//!         .unwrap();
//! }
//! net.run_for(Duration::from_ms(1));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod api;
pub mod binding;
pub mod bridge;
pub mod channel;
pub mod event;
pub mod frag;
pub mod hooks;
pub mod network;
pub mod node;
pub mod policy;
pub mod stats;
pub mod topology;

/// Convenient glob import for applications.
pub mod prelude {
    pub use crate::api::NetApi;
    pub use crate::channel::{
        ChannelClass, ChannelException, ChannelSpec, HrtSpec, NrtSpec, SrtSpec, SubscribeSpec,
    };
    pub use crate::event::{Event, EventQueue, Subject};
    pub use crate::network::{ClockSyncConfig, Network, NetworkBuilder, NetworkConfig};
    pub use rtec_can::NodeId;
    pub use rtec_sim::{Duration, Time};
}

pub use api::NetApi;
pub use channel::{
    ChannelClass, ChannelException, ChannelSpec, HrtSpec, NrtSpec, SrtSpec, SubscribeSpec,
};
pub use event::{Event, EventQueue, Subject};
pub use hooks::{RuntimeClock, TxHook};
pub use network::{ClockSyncConfig, Network, NetworkBuilder, NetworkConfig};
pub use policy::{EdfOrder, EdfQueue};
pub use stats::{ChannelStats, NetStats};
