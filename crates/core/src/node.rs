//! Per-node middleware state.
//!
//! Each node on the bus runs one middleware instance holding its
//! publisher/subscriber channel endpoints, its SRT send queue, its NRT
//! bulk sender and its fragment reassembler. The scheduling logic that
//! ties this state to the bus lives in [`crate::network`]; this module
//! defines the state types and the transmit-tag encoding that routes
//! bus completions back to the right state machine.

use crate::channel::{ChannelException, ChannelSpec, SubscribeSpec};
use crate::event::{Delivery, Event, EventQueue, Subject};
use crate::frag::Reassembler;
use crate::policy::{EdfOrder, EdfQueue};
use rtec_can::{NodeId, TxHandle};
use rtec_clock::LocalClock;
use rtec_sim::Time;
use std::collections::{HashMap, VecDeque};

/// Callback invoked on event delivery (the paper's `not_handler`).
pub type NotifyHandler = Box<dyn FnMut(&Delivery)>;
/// Callback invoked on channel exceptions (the paper's
/// `exception_handler`).
pub type ExcHandler = Box<dyn FnMut(&ChannelException)>;

/// What kind of middleware message a transmit request belonged to —
/// packed into the controller's opaque tag so completions route back.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TagKind {
    /// A hard real-time slot transmission.
    Hrt,
    /// A soft real-time queued message.
    Srt,
    /// A non real-time frame (possibly one fragment of a bulk message).
    Nrt,
    /// Binding protocol traffic.
    Bind,
    /// Clock-synchronization traffic.
    Sync,
}

impl TagKind {
    fn to_byte(self) -> u8 {
        match self {
            TagKind::Hrt => 1,
            TagKind::Srt => 2,
            TagKind::Nrt => 3,
            TagKind::Bind => 4,
            TagKind::Sync => 5,
        }
    }
    fn from_byte(b: u8) -> Option<Self> {
        match b {
            1 => Some(TagKind::Hrt),
            2 => Some(TagKind::Srt),
            3 => Some(TagKind::Nrt),
            4 => Some(TagKind::Bind),
            5 => Some(TagKind::Sync),
            _ => None,
        }
    }
}

/// Pack `(kind, etag, seq)` into a 64-bit transmit tag.
pub fn pack_tag(kind: TagKind, etag: u16, seq: u32) -> u64 {
    (u64::from(kind.to_byte()) << 56) | (u64::from(etag) << 32) | u64::from(seq)
}

/// Inverse of [`pack_tag`].
pub fn unpack_tag(tag: u64) -> Option<(TagKind, u16, u32)> {
    let kind = TagKind::from_byte((tag >> 56) as u8)?;
    let etag = ((tag >> 32) & 0x3FFF) as u16;
    let seq = tag as u32;
    Some((kind, etag, seq))
}

/// State of one HRT slot currently being served by a publisher.
#[derive(Debug)]
pub struct ActiveSlot {
    /// Round the slot belongs to.
    pub round: u64,
    /// Index into the calendar's slot list.
    pub slot_idx: usize,
    /// The event being disseminated.
    pub event: Event,
    /// Controller handle while a transmission is pending.
    pub handle: Option<TxHandle>,
    /// `true` once the frame was first submitted (at the LST).
    pub submitted: bool,
    /// `true` once all operational nodes received the event.
    pub succeeded: bool,
    /// Middleware-initiated redundant retransmissions spent.
    pub middleware_retx: u32,
    /// True-time instant of the slot's LST (for blocking measurement).
    pub lst_true: Time,
    /// True-time instant of the slot's delivery deadline.
    pub deadline_true: Time,
    /// True-time instant of the first successful wire completion.
    pub first_completion: Option<Time>,
}

/// A publisher endpoint of a channel on one node.
pub struct PublisherState {
    /// The channel's subject.
    pub subject: Subject,
    /// Announced attributes.
    pub spec: ChannelSpec,
    /// Bound etag (`None` while a dynamic binding is outstanding).
    pub etag: Option<u16>,
    /// Local exception handler.
    pub exception: Option<ExcHandler>,
    /// HRT: event staged for the next slot.
    pub staged: Option<Event>,
    /// HRT: the slot currently in progress.
    pub active: Option<ActiveSlot>,
    /// Events published before the binding completed (flushed on bind).
    pub pending_publishes: VecDeque<Event>,
}

impl PublisherState {
    /// Fresh endpoint for an announced channel.
    pub fn new(subject: Subject, spec: ChannelSpec, exception: Option<ExcHandler>) -> Self {
        PublisherState {
            subject,
            spec,
            etag: None,
            exception,
            staged: None,
            active: None,
            pending_publishes: VecDeque::new(),
        }
    }

    /// Raise an exception on this channel's handler (if installed).
    pub fn raise(&mut self, exc: &ChannelException) {
        if let Some(h) = &mut self.exception {
            h(exc);
        }
    }
}

/// A subscription endpoint of a channel on one node.
pub struct SubscriptionState {
    /// The channel's subject.
    pub subject: Subject,
    /// Subscription attributes (filters).
    pub spec: SubscribeSpec,
    /// Bound etag (`None` while a dynamic binding is outstanding).
    pub etag: Option<u16>,
    /// Queue the application drains.
    pub queue: EventQueue,
    /// Asynchronous notification handler.
    pub notify: Option<NotifyHandler>,
    /// Local exception handler.
    pub exception: Option<ExcHandler>,
    /// Last delivery instant (true time) for inter-delivery jitter.
    pub last_delivery: Option<Time>,
    /// HRT: events received on the wire, held until the slot's delivery
    /// deadline, keyed by `(round, slot_idx)`.
    pub hrt_buffer: HashMap<(u64, usize), (Event, Time)>,
}

impl SubscriptionState {
    /// Fresh endpoint for a subscription.
    pub fn new(
        subject: Subject,
        spec: SubscribeSpec,
        notify: Option<NotifyHandler>,
        exception: Option<ExcHandler>,
    ) -> Self {
        SubscriptionState {
            subject,
            spec,
            etag: None,
            queue: EventQueue::new(),
            notify,
            exception,
            last_delivery: None,
            hrt_buffer: HashMap::new(),
        }
    }

    /// Raise an exception on this subscription's handler.
    pub fn raise(&mut self, exc: &ChannelException) {
        if let Some(h) = &mut self.exception {
            h(exc);
        }
    }
}

/// A queued soft real-time message.
#[derive(Clone, Debug)]
pub struct SrtMsg {
    /// Node-local sequence number (routes completions).
    pub seq: u32,
    /// Channel etag.
    pub etag: u16,
    /// Channel subject.
    pub subject: Subject,
    /// The event (content goes on the wire).
    pub event: Event,
    /// Absolute transmission deadline (global time).
    pub deadline: Time,
    /// Absolute expiration (global time), if any.
    pub expiration: Option<Time>,
    /// Whether the deadline-miss exception already fired.
    pub missed: bool,
    /// Publication instant (true time, for latency stats).
    pub published_at: Time,
}

impl EdfOrder for SrtMsg {
    fn deadline(&self) -> Time {
        self.deadline
    }
    fn seq(&self) -> u32 {
        self.seq
    }
}

/// The node's EDF send queue for soft real-time traffic.
///
/// Ordering lives in the shared [`EdfQueue`] policy (also used by the
/// live runtime); this wrapper adds the in-flight bookkeeping that ties
/// the queue head to a controller transmission.
#[derive(Default)]
pub struct SrtState {
    /// Pending messages (the head — earliest deadline — is submitted to
    /// the controller; the rest wait here).
    pub queue: EdfQueue<SrtMsg>,
    /// The submitted head: `(seq, controller handle, current priority)`.
    pub inflight: Option<(u32, TxHandle, u8)>,
    /// Sequence counter.
    pub next_seq: u32,
}

impl SrtState {
    /// Index of the earliest-deadline message, FIFO among equals.
    pub fn head_index(&self) -> Option<usize> {
        self.queue.head_index()
    }

    /// Find a message by sequence number.
    pub fn find(&self, seq: u32) -> Option<usize> {
        self.queue.find(seq)
    }

    /// Remove and return a message by sequence number.
    pub fn take(&mut self, seq: u32) -> Option<SrtMsg> {
        self.queue.take(seq)
    }

    /// High-water mark of the queue length (observability).
    pub fn peak_queue(&self) -> usize {
        self.queue.peak()
    }
}

/// One (possibly multi-fragment) NRT transmission.
#[derive(Clone, Debug)]
pub struct NrtTransfer {
    /// Channel etag.
    pub etag: u16,
    /// Channel subject.
    pub subject: Subject,
    /// CAN payloads to send, in order.
    pub payloads: Vec<Vec<u8>>,
    /// Next payload index to submit.
    pub next: usize,
    /// Fixed NRT priority.
    pub priority: u8,
    /// Controller handle of the fragment in flight.
    pub handle: Option<TxHandle>,
    /// Publication instant (true time).
    pub published_at: Time,
}

/// The node's NRT sender: one fragment outstanding at a time, transfers
/// served FIFO.
#[derive(Default)]
pub struct NrtState {
    /// Transfer currently being sent.
    pub active: Option<NrtTransfer>,
    /// Transfers waiting behind it.
    pub queue: VecDeque<NrtTransfer>,
}

/// An outstanding dynamic-binding request.
#[derive(Clone, Copy, Debug)]
pub struct PendingBind {
    /// Request sequence number.
    pub seq: u16,
    /// Subject being bound.
    pub subject: Subject,
}

/// All middleware state of one node.
pub struct NodeState {
    /// The node's bus identity (doubles as the TxNode field).
    pub id: NodeId,
    /// The node's view of global time.
    pub clock: LocalClock,
    /// Publisher endpoints by subject uid.
    pub publishers: HashMap<u64, PublisherState>,
    /// Subscription endpoints by subject uid.
    pub subscriptions: HashMap<u64, SubscriptionState>,
    /// Soft real-time send queue.
    pub srt: SrtState,
    /// Non real-time sender.
    pub nrt: NrtState,
    /// Reassembly of fragmented NRT messages, keyed by (TxNode, etag).
    pub reassembler: Reassembler<(u8, u16)>,
    /// Outstanding dynamic-binding requests (head is on the wire).
    pub bind_pending: VecDeque<PendingBind>,
    /// Binding request sequence counter.
    pub bind_seq: u16,
    /// Local clock reading latched at the completion of the last SYNC
    /// frame (clock-synchronization protocol).
    pub sync_latch: Option<Time>,
}

impl NodeState {
    /// Fresh middleware state for a node.
    pub fn new(id: NodeId, clock: LocalClock) -> Self {
        NodeState {
            id,
            clock,
            publishers: HashMap::new(),
            subscriptions: HashMap::new(),
            srt: SrtState::default(),
            nrt: NrtState::default(),
            reassembler: Reassembler::new(),
            bind_pending: VecDeque::new(),
            bind_seq: 0,
            sync_latch: None,
        }
    }

    /// The publisher endpoint bound to `etag`, if any.
    pub fn publisher_by_etag(&mut self, etag: u16) -> Option<&mut PublisherState> {
        self.publishers.values_mut().find(|p| p.etag == Some(etag))
    }

    /// The subscription endpoint bound to `etag`, if any.
    pub fn subscription_by_etag(&mut self, etag: u16) -> Option<&mut SubscriptionState> {
        self.subscriptions
            .values_mut()
            .find(|s| s.etag == Some(etag))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtec_sim::Duration;

    #[test]
    fn tag_roundtrip() {
        for kind in [
            TagKind::Hrt,
            TagKind::Srt,
            TagKind::Nrt,
            TagKind::Bind,
            TagKind::Sync,
        ] {
            let tag = pack_tag(kind, 0x3FFF, u32::MAX);
            assert_eq!(unpack_tag(tag), Some((kind, 0x3FFF, u32::MAX)));
            let tag2 = pack_tag(kind, 0, 0);
            assert_eq!(unpack_tag(tag2), Some((kind, 0, 0)));
        }
    }

    #[test]
    fn tag_rejects_unknown_kind() {
        assert_eq!(unpack_tag(0), None);
        assert_eq!(unpack_tag(0xFF << 56), None);
    }

    #[test]
    fn srt_head_is_earliest_deadline_fifo_on_ties() {
        let mut s = SrtState::default();
        let mk = |seq: u32, deadline_us: u64| SrtMsg {
            seq,
            etag: 5,
            subject: Subject::new(1),
            event: Event::new(Subject::new(1), vec![]),
            deadline: Time::from_us(deadline_us),
            expiration: None,
            missed: false,
            published_at: Time::ZERO,
        };
        s.queue.push(mk(0, 300));
        s.queue.push(mk(1, 100));
        s.queue.push(mk(2, 100));
        assert_eq!(s.head_index(), Some(1), "earliest deadline, lowest seq");
        let taken = s.take(1).unwrap();
        assert_eq!(taken.seq, 1);
        assert_eq!(s.head_index(), Some(1)); // now msg seq=2 at index 1
        assert_eq!(s.find(0), Some(0));
        assert_eq!(s.find(9), None);
        assert!(s.take(9).is_none());
    }

    #[test]
    fn node_lookup_by_etag() {
        let mut n = NodeState::new(NodeId(3), LocalClock::perfect());
        let subject = Subject::new(42);
        let mut p = PublisherState::new(
            subject,
            ChannelSpec::srt(crate::channel::SrtSpec::default()),
            None,
        );
        p.etag = Some(77);
        n.publishers.insert(subject.uid(), p);
        assert!(n.publisher_by_etag(77).is_some());
        assert!(n.publisher_by_etag(78).is_none());
        assert!(n.subscription_by_etag(77).is_none());

        let mut sub = SubscriptionState::new(subject, SubscribeSpec::default(), None, None);
        sub.etag = Some(99);
        n.subscriptions.insert(subject.uid(), sub);
        assert!(n.subscription_by_etag(99).is_some());
    }

    #[test]
    fn exception_handlers_fire() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let hits = Rc::new(RefCell::new(0));
        let h = hits.clone();
        let mut p = PublisherState::new(
            Subject::new(1),
            ChannelSpec::srt(crate::channel::SrtSpec::default()),
            Some(Box::new(move |_exc| *h.borrow_mut() += 1)),
        );
        p.raise(&ChannelException::DeadlineMissed {
            subject: Subject::new(1),
            deadline: Time::ZERO + Duration::from_us(5),
        });
        p.raise(&ChannelException::Expired {
            subject: Subject::new(1),
            expiration: Time::ZERO,
        });
        assert_eq!(*hits.borrow(), 2);

        // No handler installed: raise is a no-op.
        let mut q = PublisherState::new(
            Subject::new(2),
            ChannelSpec::srt(crate::channel::SrtSpec::default()),
            None,
        );
        q.raise(&ChannelException::Expired {
            subject: Subject::new(2),
            expiration: Time::ZERO,
        });
    }
}
