//! Multi-network event channels: a store-and-forward gateway between
//! two bus segments.
//!
//! The paper assumes "publishers and subscribers are connected by a
//! channel which spans multiple networks, e.g. a field bus, a wireless
//! network and a wired wide area network" (§2.2.1) — that is why
//! subscriptions carry origin filters ("receive events only from
//! publishers in the same network"). This module provides the smallest
//! faithful version of that architecture: two independent CAN segments
//! joined by a gateway that re-publishes selected subjects across the
//! boundary with a configurable store-and-forward latency.
//!
//! Each segment remains its own deterministic simulation; the bridge
//! advances them in lockstep quanta and relays deliveries collected on
//! one side into publications on the other (the way a real gateway
//! node's middleware would). Since the parallel execution layer landed,
//! the lockstep loop is hosted on the shared stepping machinery of
//! [`rtec_sim::parallel`] ([`step_boundary`]) — the same
//! collect/merge/flush discipline the per-segment-thread driver uses —
//! so this serial bridge doubles as the differential oracle for
//! [`crate::topology`]'s parallel runs. Output is byte-identical to
//! the pre-parallel bridge: envelopes are flushed in stable due-time
//! order, exactly the old single-buffer behaviour.
//!
//! On the far segment a relayed frame carries the *gateway's* TxNode
//! as its origin — so a subscriber that wants "events only from
//! publishers in the same network" simply excludes the gateway node
//! with an origin filter, exactly the paper's filtering example.
//!
//! Loops are impossible by construction: the gateway publishes and
//! subscribes with the same node identity on each segment, and CAN
//! controllers never receive their own frames.
//!
//! Timeliness: cross-network channels are soft real-time at best (the
//! gateway cannot extend a segment's HRT reservation across the
//! boundary), so the bridge republishes on SRT channels and the HRT
//! guarantees stay segment-local — matching the paper's note that
//! HRT filtering is segment-scoped.

use crate::channel::{ChannelSpec, SrtSpec, SubscribeSpec};
use crate::event::{EventQueue, Subject};
use crate::network::Network;
use crate::topology::{republish, Relay};
use rtec_can::NodeId;
use rtec_sim::parallel::{step_boundary, Envelope, RoutingTable, SegmentStep};
use rtec_sim::{Duration, Time};

/// Which side of the bridge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Segment {
    /// The first segment.
    A,
    /// The second segment.
    B,
}

impl Segment {
    fn other(self) -> Segment {
        match self {
            Segment::A => Segment::B,
            Segment::B => Segment::A,
        }
    }

    fn index(self) -> usize {
        match self {
            Segment::A => 0,
            Segment::B => 1,
        }
    }
}

/// A subject forwarded across the bridge.
struct Route {
    subject: Subject,
    /// Direction: deliveries on `from` are republished on its opposite.
    from: Segment,
    /// Queue collecting the gateway's subscription on `from`.
    queue: EventQueue,
    /// Events forwarded so far (the gateway republishes with its own
    /// node id; loop prevention).
    forwarded: u64,
}

/// One side of the bridge as a steppable segment: the network plus the
/// routes that *originate* on it. Borrowed out of the [`Bridge`] for
/// the duration of one lockstep boundary.
struct BridgeSide<'a> {
    net: &'a mut Network,
    gateway: NodeId,
    latency: Duration,
    /// (global route id, route) — ascending id order.
    routes: Vec<(u32, &'a mut Route)>,
}

impl SegmentStep for BridgeSide<'_> {
    type Relay = Relay;

    fn advance_to(&mut self, t: Time) {
        self.net.run_until(t);
    }

    fn collect(&mut self, now: Time, out: &mut Vec<Envelope<Relay>>) {
        for (id, route) in &mut self.routes {
            for delivery in route.queue.drain() {
                out.push(Envelope {
                    // Stamp with the wire completion plus gateway
                    // latency (both segments share the time base).
                    due: delivery.wire_completed_at + self.latency,
                    collected_at: now,
                    route: *id,
                    payload: Relay {
                        subject: route.subject,
                        event: delivery.event,
                    },
                });
                route.forwarded += 1;
            }
        }
    }

    fn apply(&mut self, env: Envelope<Relay>) {
        republish(self.net, self.gateway, env.payload);
    }
}

/// Two bus segments joined by a gateway node on each side.
pub struct Bridge {
    /// Segment A (e.g. the field bus).
    pub a: Network,
    /// Segment B (e.g. the backbone).
    pub b: Network,
    gateway_a: NodeId,
    gateway_b: NodeId,
    /// Store-and-forward latency of the gateway.
    latency: Duration,
    /// Lockstep quantum (must be ≤ latency so relays never go
    /// backwards in time).
    quantum: Duration,
    routes: Vec<Route>,
    routing: RoutingTable,
    /// Per-target relay buffers, indexed by [`Segment::index`].
    pending: Vec<Vec<Envelope<Relay>>>,
    now: Time,
}

impl Bridge {
    /// Join two networks. `gateway_a`/`gateway_b` are the gateway's
    /// node identities on each segment; `latency` is its
    /// store-and-forward delay (≥ 100 µs).
    pub fn new(
        a: Network,
        b: Network,
        gateway_a: NodeId,
        gateway_b: NodeId,
        latency: Duration,
    ) -> Self {
        assert!(
            latency >= Duration::from_us(100),
            "gateway latency below the lockstep quantum"
        );
        Bridge {
            a,
            b,
            gateway_a,
            gateway_b,
            latency,
            quantum: Duration::from_us(100),
            routes: Vec::new(),
            routing: RoutingTable::new(2),
            pending: vec![Vec::new(), Vec::new()],
            now: Time::ZERO,
        }
    }

    /// Current bridged time (both segments are at this instant).
    pub fn now(&self) -> Time {
        self.now
    }

    fn net(&mut self, seg: Segment) -> &mut Network {
        match seg {
            Segment::A => &mut self.a,
            Segment::B => &mut self.b,
        }
    }

    fn gateway(&self, seg: Segment) -> NodeId {
        match seg {
            Segment::A => self.gateway_a,
            Segment::B => self.gateway_b,
        }
    }

    /// Forward `subject` from one segment to the other: the gateway
    /// subscribes on `from` and announces an SRT channel on the far
    /// side. Call after the local publishers/subscribers exist.
    pub fn forward(
        &mut self,
        subject: Subject,
        from: Segment,
        spec: SrtSpec,
    ) -> Result<(), crate::channel::ChannelError> {
        let gw_from = self.gateway(from);
        let gw_to = self.gateway(from.other());
        let queue = {
            let net = self.net(from);
            let mut api = net.api();
            api.subscribe(gw_from, subject, SubscribeSpec::default())?
        };
        {
            let net = self.net(from.other());
            let mut api = net.api();
            api.announce(gw_to, subject, ChannelSpec::srt(spec))?;
        }
        self.routing.add_route(from.index(), from.other().index());
        self.routes.push(Route {
            subject,
            from,
            queue,
            forwarded: 0,
        });
        Ok(())
    }

    /// Number of events forwarded on a route so far.
    pub fn forwarded(&self, subject: Subject, from: Segment) -> u64 {
        self.routes
            .iter()
            .filter(|r| r.subject == subject && r.from == from)
            .map(|r| r.forwarded)
            .sum()
    }

    /// Advance both segments to `target` in lockstep quanta, relaying
    /// at each boundary through the shared stepping machinery of
    /// [`rtec_sim::parallel`].
    pub fn run_until(&mut self, target: Time) {
        while self.now < target {
            let step_end = (self.now + self.quantum).min(target);
            let latency = self.latency;
            let mut side_a_routes: Vec<(u32, &mut Route)> = Vec::new();
            let mut side_b_routes: Vec<(u32, &mut Route)> = Vec::new();
            for (i, route) in self.routes.iter_mut().enumerate() {
                match route.from {
                    Segment::A => side_a_routes.push((i as u32, route)),
                    Segment::B => side_b_routes.push((i as u32, route)),
                }
            }
            let mut side_a = BridgeSide {
                net: &mut self.a,
                gateway: self.gateway_a,
                latency,
                routes: side_a_routes,
            };
            let mut side_b = BridgeSide {
                net: &mut self.b,
                gateway: self.gateway_b,
                latency,
                routes: side_b_routes,
            };
            let mut segs: [&mut dyn SegmentStep<Relay = Relay>; 2] = [&mut side_a, &mut side_b];
            step_boundary(&mut segs, &self.routing, &mut self.pending, step_end);
            self.now = step_end;
        }
    }

    /// Advance both segments by `d`.
    pub fn run_for(&mut self, d: Duration) {
        let target = self.now + d;
        self.run_until(target);
    }
}
