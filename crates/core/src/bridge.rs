//! Multi-network event channels: a store-and-forward gateway between
//! two bus segments.
//!
//! The paper assumes "publishers and subscribers are connected by a
//! channel which spans multiple networks, e.g. a field bus, a wireless
//! network and a wired wide area network" (§2.2.1) — that is why
//! subscriptions carry origin filters ("receive events only from
//! publishers in the same network"). This module provides the smallest
//! faithful version of that architecture: two independent CAN segments
//! joined by a gateway that re-publishes selected subjects across the
//! boundary with a configurable store-and-forward latency.
//!
//! Each segment remains its own deterministic simulation; the bridge
//! advances them in lockstep quanta and relays deliveries collected on
//! one side into publications on the other (the way a real gateway
//! node's middleware would). On the far segment a relayed frame
//! carries the *gateway's* TxNode as its origin — so a subscriber that
//! wants "events only from publishers in the same network" simply
//! excludes the gateway node with an origin filter, exactly the
//! paper's filtering example.
//!
//! Loops are impossible by construction: the gateway publishes and
//! subscribes with the same node identity on each segment, and CAN
//! controllers never receive their own frames.
//!
//! Timeliness: cross-network channels are soft real-time at best (the
//! gateway cannot extend a segment's HRT reservation across the
//! boundary), so the bridge republishes on SRT channels and the HRT
//! guarantees stay segment-local — matching the paper's note that
//! HRT filtering is segment-scoped.

use crate::channel::{ChannelSpec, SrtSpec, SubscribeSpec};
use crate::event::{Event, EventQueue, Subject};
use crate::network::Network;
use rtec_can::NodeId;
use rtec_sim::{Duration, Time};

/// Which side of the bridge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Segment {
    /// The first segment.
    A,
    /// The second segment.
    B,
}

impl Segment {
    fn other(self) -> Segment {
        match self {
            Segment::A => Segment::B,
            Segment::B => Segment::A,
        }
    }
}

/// A subject forwarded across the bridge.
struct Route {
    subject: Subject,
    /// Direction: deliveries on `from` are republished on its opposite.
    from: Segment,
    /// Queue collecting the gateway's subscription on `from`.
    queue: EventQueue,
    /// Events published on the far side before this instant are drops
    /// (the gateway republishes with its own node id; loop prevention).
    forwarded: u64,
}

/// Two bus segments joined by a gateway node on each side.
pub struct Bridge {
    /// Segment A (e.g. the field bus).
    pub a: Network,
    /// Segment B (e.g. the backbone).
    pub b: Network,
    gateway_a: NodeId,
    gateway_b: NodeId,
    /// Store-and-forward latency of the gateway.
    latency: Duration,
    /// Lockstep quantum (must be ≤ latency so relays never go
    /// backwards in time).
    quantum: Duration,
    routes: Vec<Route>,
    /// Relay buffer: (due time, target segment, subject, event).
    pending: Vec<(Time, Segment, Subject, Event)>,
    now: Time,
}

impl Bridge {
    /// Join two networks. `gateway_a`/`gateway_b` are the gateway's
    /// node identities on each segment; `latency` is its
    /// store-and-forward delay (≥ 100 µs).
    pub fn new(
        a: Network,
        b: Network,
        gateway_a: NodeId,
        gateway_b: NodeId,
        latency: Duration,
    ) -> Self {
        assert!(
            latency >= Duration::from_us(100),
            "gateway latency below the lockstep quantum"
        );
        Bridge {
            a,
            b,
            gateway_a,
            gateway_b,
            latency,
            quantum: Duration::from_us(100),
            routes: Vec::new(),
            pending: Vec::new(),
            now: Time::ZERO,
        }
    }

    /// Current bridged time (both segments are at this instant).
    pub fn now(&self) -> Time {
        self.now
    }

    fn net(&mut self, seg: Segment) -> &mut Network {
        match seg {
            Segment::A => &mut self.a,
            Segment::B => &mut self.b,
        }
    }

    fn gateway(&self, seg: Segment) -> NodeId {
        match seg {
            Segment::A => self.gateway_a,
            Segment::B => self.gateway_b,
        }
    }

    /// Forward `subject` from one segment to the other: the gateway
    /// subscribes on `from` and announces an SRT channel on the far
    /// side. Call after the local publishers/subscribers exist.
    pub fn forward(
        &mut self,
        subject: Subject,
        from: Segment,
        spec: SrtSpec,
    ) -> Result<(), crate::channel::ChannelError> {
        let gw_from = self.gateway(from);
        let gw_to = self.gateway(from.other());
        let queue = {
            let net = self.net(from);
            let mut api = net.api();
            api.subscribe(gw_from, subject, SubscribeSpec::default())?
        };
        {
            let net = self.net(from.other());
            let mut api = net.api();
            api.announce(gw_to, subject, ChannelSpec::srt(spec))?;
        }
        self.routes.push(Route {
            subject,
            from,
            queue,
            forwarded: 0,
        });
        Ok(())
    }

    /// Number of events forwarded on a route so far.
    pub fn forwarded(&self, subject: Subject, from: Segment) -> u64 {
        self.routes
            .iter()
            .filter(|r| r.subject == subject && r.from == from)
            .map(|r| r.forwarded)
            .sum()
    }

    fn collect_and_flush(&mut self) {
        // Collect fresh deliveries at the gateways into the relay
        // buffer.
        let latency = self.latency;
        let mut new_pending = Vec::new();
        for route in &mut self.routes {
            for delivery in route.queue.drain() {
                new_pending.push((
                    // Stamp with the wire completion plus gateway
                    // latency (both segments share the time base).
                    delivery.wire_completed_at + latency,
                    route.from.other(),
                    route.subject,
                    delivery.event,
                ));
                route.forwarded += 1;
            }
        }
        self.pending.extend(new_pending);
        // Flush everything due by `now` into the target segments.
        let now = self.now;
        let mut due: Vec<(Time, Segment, Subject, Event)> = Vec::new();
        self.pending.retain(|entry| {
            if entry.0 <= now {
                due.push(entry.clone());
                false
            } else {
                true
            }
        });
        due.sort_by_key(|e| e.0);
        for (_, seg, subject, mut event) in due {
            let gw = self.gateway(seg);
            // Per-segment timing attributes do not survive the hop;
            // publish() restamps the origin with the gateway's node id,
            // which is what far-side origin filters key on.
            event.attributes.deadline = None;
            event.attributes.expiration = None;
            let net = self.net(seg);
            let mut api = net.api();
            let _ = api.publish(gw, subject, event);
        }
    }

    /// Advance both segments to `target` in lockstep quanta, relaying
    /// at each boundary.
    pub fn run_until(&mut self, target: Time) {
        while self.now < target {
            let step_end = (self.now + self.quantum).min(target);
            self.a.run_until(step_end);
            self.b.run_until(step_end);
            self.now = step_end;
            self.collect_and_flush();
        }
    }

    /// Advance both segments by `d`.
    pub fn run_for(&mut self, d: Duration) {
        let target = self.now + d;
        self.run_until(target);
    }
}
