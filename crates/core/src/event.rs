//! Events, subjects and delivery queues (§2).
//!
//! An event is an instance of an event type:
//!
//! ```text
//!   event := <subject, attribute_list, content>
//! ```
//!
//! The *subject* is the unique tag that content-based routing is
//! reduced to (subject-based addressing); *attributes* carry context and
//! quality parameters (origin, timestamp, deadline, expiration); the
//! *content* is the functional payload.

use rtec_can::NodeId;
use rtec_sim::Time;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;

/// A subject: the system-wide unique identifier of an event type.
///
/// Subjects are application-level names (here: 64-bit identifiers,
/// standing in for the hierarchical names of [13]); the binding
/// protocol maps each subject to a short network-level *etag*.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Subject(pub u64);

impl Subject {
    /// Create a subject from its unique identifier.
    pub const fn new(uid: u64) -> Self {
        Subject(uid)
    }
    /// The raw unique identifier.
    pub const fn uid(self) -> u64 {
        self.0
    }

    /// Map this subject onto one of `shards` fanout shards.
    ///
    /// Off-bus consumers (the gateway) partition their subscription
    /// tables by subject so every event of one subject is handled by
    /// exactly one worker — per-subject FIFO order is then free. The
    /// hash is a fixed splitmix64 finalizer, so the shard assignment is
    /// stable across runs, platforms and shard-count-preserving
    /// restarts; nearby uids land on different shards.
    pub fn shard_of(self, shards: usize) -> usize {
        if shards <= 1 {
            return 0;
        }
        let mut z = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z % shards as u64) as usize
    }
}

impl fmt::Debug for Subject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Subject({:#x})", self.0)
    }
}

impl fmt::Display for Subject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// Non-functional attributes of a single event occurrence (§2).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventAttributes {
    /// Transmission deadline (global time) — SRT events only: the
    /// latest point at which the message should be transmitted.
    pub deadline: Option<Time>,
    /// Expiration (validity end, global time): after this instant the
    /// event may be dropped entirely.
    pub expiration: Option<Time>,
    /// Creation timestamp (set by the publisher middleware).
    pub timestamp: Option<Time>,
    /// Originating node (set by the middleware; used by origin
    /// filters).
    pub origin: Option<NodeId>,
    /// Application mode-of-operation tag.
    pub mode: Option<u8>,
}

/// An event: subject + attributes + content.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Event {
    /// The subject this event belongs to.
    pub subject: Subject,
    /// Context and quality attributes.
    pub attributes: EventAttributes,
    /// Functional payload. HRT/SRT channels carry at most 8 bytes (one
    /// CAN frame); NRT channels may carry arbitrary lengths, which the
    /// middleware fragments.
    pub content: Vec<u8>,
}

impl Event {
    /// Create an event with default attributes.
    pub fn new(subject: Subject, content: impl Into<Vec<u8>>) -> Self {
        Event {
            subject,
            attributes: EventAttributes::default(),
            content: content.into(),
        }
    }

    /// Set the SRT transmission deadline.
    pub fn with_deadline(mut self, deadline: Time) -> Self {
        self.attributes.deadline = Some(deadline);
        self
    }

    /// Set the expiration (validity end).
    pub fn with_expiration(mut self, expiration: Time) -> Self {
        self.attributes.expiration = Some(expiration);
        self
    }

    /// Set the application mode tag.
    pub fn with_mode(mut self, mode: u8) -> Self {
        self.attributes.mode = Some(mode);
        self
    }
}

/// A delivered event with its delivery metadata.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Delivery {
    /// The event as reconstructed at the subscriber.
    pub event: Event,
    /// Instant the middleware delivered it (global time).
    pub delivered_at: Time,
    /// Instant the frame completed on the wire (for HRT this precedes
    /// `delivered_at`: delivery is deferred to the slot deadline to
    /// cancel jitter).
    pub wire_completed_at: Time,
}

/// The subscriber-visible event queue (the `event_queue` argument of
/// the paper's `subscribe()`): the middleware pushes deliveries, the
/// application drains them. Cheap to clone — clones share the queue.
#[derive(Clone, Default)]
pub struct EventQueue {
    inner: Rc<RefCell<VecDeque<Delivery>>>,
}

impl EventQueue {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Push a delivery (middleware side).
    pub fn push(&self, delivery: Delivery) {
        self.inner.borrow_mut().push_back(delivery);
    }

    /// Pop the oldest delivery, if any (the paper's `getEvent()`).
    pub fn pop(&self) -> Option<Delivery> {
        self.inner.borrow_mut().pop_front()
    }

    /// Drain all pending deliveries.
    pub fn drain(&self) -> Vec<Delivery> {
        self.inner.borrow_mut().drain(..).collect()
    }

    /// Number of pending deliveries.
    pub fn len(&self) -> usize {
        self.inner.borrow().len()
    }

    /// `true` when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.inner.borrow().is_empty()
    }
}

impl fmt::Debug for EventQueue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "EventQueue(len={})", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subject_identity() {
        let a = Subject::new(0x1001);
        let b = Subject::new(0x1001);
        let c = Subject::new(0x1002);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.uid(), 0x1001);
        assert_eq!(format!("{a}"), "0x1001");
    }

    #[test]
    fn event_builders() {
        let e = Event::new(Subject::new(1), vec![1u8, 2, 3])
            .with_deadline(Time::from_ms(5))
            .with_expiration(Time::from_ms(8))
            .with_mode(2);
        assert_eq!(e.content, vec![1, 2, 3]);
        assert_eq!(e.attributes.deadline, Some(Time::from_ms(5)));
        assert_eq!(e.attributes.expiration, Some(Time::from_ms(8)));
        assert_eq!(e.attributes.mode, Some(2));
        assert_eq!(e.attributes.origin, None);
    }

    #[test]
    fn queue_fifo_order() {
        let q = EventQueue::new();
        assert!(q.is_empty());
        for i in 0..3u8 {
            q.push(Delivery {
                event: Event::new(Subject::new(1), vec![i]),
                delivered_at: Time::from_us(u64::from(i)),
                wire_completed_at: Time::from_us(u64::from(i)),
            });
        }
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().event.content, vec![0]);
        let rest = q.drain();
        assert_eq!(rest.len(), 2);
        assert_eq!(rest[1].event.content, vec![2]);
        assert!(q.is_empty());
    }

    #[test]
    fn shard_of_is_stable_in_range_and_spreads() {
        // In range for any shard count, including the degenerate ones.
        for shards in [0usize, 1, 2, 4, 16] {
            for uid in 0..64u64 {
                let s = Subject::new(uid).shard_of(shards);
                assert!(s < shards.max(1));
            }
        }
        // Stable: same uid, same shard, every time.
        assert_eq!(
            Subject::new(0xdead_beef).shard_of(16),
            Subject::new(0xdead_beef).shard_of(16)
        );
        // Sequential uids do not all pile onto one shard.
        let hit: std::collections::HashSet<usize> = (0..16u64)
            .map(|uid| Subject::new(uid).shard_of(4))
            .collect();
        assert!(hit.len() > 1, "splitmix must spread sequential uids");
    }

    #[test]
    fn queue_clones_share_storage() {
        let q = EventQueue::new();
        let clone = q.clone();
        q.push(Delivery {
            event: Event::new(Subject::new(1), vec![]),
            delivered_at: Time::ZERO,
            wire_completed_at: Time::ZERO,
        });
        assert_eq!(clone.len(), 1);
        assert!(clone.pop().is_some());
        assert!(q.is_empty());
    }
}
