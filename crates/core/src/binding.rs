//! Subject → etag binding (dynamic binding, §2.1 and [13]).
//!
//! Content-based routing is reduced to subject-based addressing, and
//! subjects are *bound* to short network-level tags (the 14-bit etag
//! field of the CAN identifier) so that the CAN controllers' hardware
//! acceptance filters perform the subject filtering — no protocol work
//! on the host CPU of a smart sensor.
//!
//! Two binding modes are supported:
//!
//! * **static** (default for experiments): the registry assigns etags
//!   deterministically when channels are created, standing in for an
//!   out-of-band configuration tool;
//! * **dynamic**: a binding agent on a designated node answers
//!   BIND_REQUEST frames with BIND_REPLY frames over reserved etags, as
//!   in the configuration/binding protocol of [13]. Channel operations
//!   that arrive before the reply are queued by the middleware.
//!
//! Wire formats (8-byte CAN payloads):
//!
//! ```text
//!   BIND_REQUEST: [seq: u16 LE][subject_lo48: 6 bytes LE]
//!   BIND_REPLY:   [requester: u8][seq: u16 LE][etag: u16 LE][status: u8]
//! ```
//!
//! Replies are broadcast; the `requester` byte (the TxNode of the
//! request frame) disambiguates, since sequence numbers are only unique
//! per requester.
//!
//! Subjects are identified on the wire by the low 48 bits of their UID;
//! the registry rejects subject sets that collide in those bits.

use crate::event::Subject;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Reserved etag: clock sync (see `rtec-clock`).
pub const ETAG_SYNC: u16 = 0;
/// Reserved etag: clock sync follow-up.
pub const ETAG_FOLLOW_UP: u16 = 1;
/// Reserved etag: binding requests (any node → agent).
pub const ETAG_BIND_REQUEST: u16 = 2;
/// Reserved etag: binding replies (agent → all).
pub const ETAG_BIND_REPLY: u16 = 3;
/// First etag available for dynamic assignment to subjects.
pub const ETAG_FIRST_DYNAMIC: u16 = 4;
/// Largest etag (14-bit field).
pub const ETAG_LAST: u16 = (1 << 14) - 1;

/// Status codes carried in BIND_REPLY.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BindStatus {
    /// Binding succeeded; the etag field is valid.
    Ok,
    /// The agent ran out of etags.
    Exhausted,
}

impl BindStatus {
    fn to_byte(self) -> u8 {
        match self {
            BindStatus::Ok => 0,
            BindStatus::Exhausted => 1,
        }
    }
    fn from_byte(b: u8) -> Option<Self> {
        match b {
            0 => Some(BindStatus::Ok),
            1 => Some(BindStatus::Exhausted),
            _ => None,
        }
    }
}

/// A decoded BIND_REQUEST.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BindRequest {
    /// Requester-local sequence number echoed in the reply.
    pub seq: u16,
    /// Low 48 bits of the subject UID.
    pub subject48: u64,
}

impl BindRequest {
    /// Build a request for a subject.
    pub fn new(seq: u16, subject: Subject) -> Self {
        BindRequest {
            seq,
            subject48: subject.uid() & 0xFFFF_FFFF_FFFF,
        }
    }

    /// Encode to a CAN payload.
    pub fn encode(&self) -> [u8; 8] {
        let mut out = [0u8; 8];
        out[..2].copy_from_slice(&self.seq.to_le_bytes());
        out[2..8].copy_from_slice(&self.subject48.to_le_bytes()[..6]);
        out
    }

    /// Decode from a CAN payload.
    pub fn decode(payload: &[u8]) -> Option<Self> {
        if payload.len() != 8 {
            return None;
        }
        let seq = u16::from_le_bytes([payload[0], payload[1]]);
        let mut sub = [0u8; 8];
        sub[..6].copy_from_slice(&payload[2..8]);
        Some(BindRequest {
            seq,
            subject48: u64::from_le_bytes(sub),
        })
    }
}

/// A decoded BIND_REPLY.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BindReply {
    /// TxNode of the node whose request is being answered.
    pub requester: u8,
    /// Echoed request sequence number.
    pub seq: u16,
    /// Assigned etag (valid when `status == Ok`).
    pub etag: u16,
    /// Outcome.
    pub status: BindStatus,
}

impl BindReply {
    /// Encode to a CAN payload.
    pub fn encode(&self) -> [u8; 6] {
        let mut out = [0u8; 6];
        out[0] = self.requester;
        out[1..3].copy_from_slice(&self.seq.to_le_bytes());
        out[3..5].copy_from_slice(&self.etag.to_le_bytes());
        out[5] = self.status.to_byte();
        out
    }

    /// Decode from a CAN payload.
    pub fn decode(payload: &[u8]) -> Option<Self> {
        if payload.len() != 6 {
            return None;
        }
        Some(BindReply {
            requester: payload[0],
            seq: u16::from_le_bytes([payload[1], payload[2]]),
            etag: u16::from_le_bytes([payload[3], payload[4]]),
            status: BindStatus::from_byte(payload[5])?,
        })
    }
}

/// The etag registry: the state behind both the static binding mode and
/// the dynamic binding agent.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SubjectRegistry {
    by_subject48: HashMap<u64, u16>,
    by_etag: HashMap<u16, u64>,
    next: u16,
}

impl SubjectRegistry {
    /// An empty registry starting at the first dynamic etag.
    pub fn new() -> Self {
        SubjectRegistry {
            by_subject48: HashMap::new(),
            by_etag: HashMap::new(),
            next: ETAG_FIRST_DYNAMIC,
        }
    }

    /// Bind a subject, returning its etag. Idempotent: rebinding an
    /// already-bound subject returns the existing etag.
    pub fn bind(&mut self, subject: Subject) -> Result<u16, BindStatus> {
        let key = subject.uid() & 0xFFFF_FFFF_FFFF;
        if let Some(&etag) = self.by_subject48.get(&key) {
            return Ok(etag);
        }
        if self.next > ETAG_LAST {
            return Err(BindStatus::Exhausted);
        }
        let etag = self.next;
        self.next += 1;
        self.by_subject48.insert(key, etag);
        self.by_etag.insert(etag, key);
        Ok(etag)
    }

    /// Look up a subject's etag without binding.
    pub fn etag_of(&self, subject: Subject) -> Option<u16> {
        self.by_subject48
            .get(&(subject.uid() & 0xFFFF_FFFF_FFFF))
            .copied()
    }

    /// Reverse lookup: the subject (low 48 bits) bound to an etag.
    pub fn subject48_of(&self, etag: u16) -> Option<u64> {
        self.by_etag.get(&etag).copied()
    }

    /// Number of bound subjects.
    pub fn len(&self) -> usize {
        self.by_subject48.len()
    }

    /// `true` when nothing is bound.
    pub fn is_empty(&self) -> bool {
        self.by_subject48.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let req = BindRequest::new(42, Subject::new(0xDEAD_BEEF_CAFE));
        let decoded = BindRequest::decode(&req.encode()).unwrap();
        assert_eq!(decoded, req);
        assert_eq!(decoded.subject48, 0xDEAD_BEEF_CAFE);
    }

    #[test]
    fn request_truncates_to_48_bits() {
        let req = BindRequest::new(1, Subject::new(0xFFFF_0000_0000_0001));
        assert_eq!(req.subject48, 0x0000_0000_0001);
    }

    #[test]
    fn reply_roundtrip() {
        for status in [BindStatus::Ok, BindStatus::Exhausted] {
            let rep = BindReply {
                requester: 17,
                seq: 9,
                etag: 1234,
                status,
            };
            assert_eq!(BindReply::decode(&rep.encode()).unwrap(), rep);
        }
    }

    #[test]
    fn decode_rejects_bad_lengths_and_status() {
        assert!(BindRequest::decode(&[0; 7]).is_none());
        assert!(BindReply::decode(&[0; 8]).is_none());
        let mut bad = BindReply {
            requester: 0,
            seq: 0,
            etag: 0,
            status: BindStatus::Ok,
        }
        .encode();
        bad[5] = 99;
        assert!(BindReply::decode(&bad).is_none());
    }

    #[test]
    fn registry_assigns_sequential_etags() {
        let mut reg = SubjectRegistry::new();
        let a = reg.bind(Subject::new(10)).unwrap();
        let b = reg.bind(Subject::new(20)).unwrap();
        assert_eq!(a, ETAG_FIRST_DYNAMIC);
        assert_eq!(b, ETAG_FIRST_DYNAMIC + 1);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn registry_is_idempotent() {
        let mut reg = SubjectRegistry::new();
        let a1 = reg.bind(Subject::new(10)).unwrap();
        let a2 = reg.bind(Subject::new(10)).unwrap();
        assert_eq!(a1, a2);
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.etag_of(Subject::new(10)), Some(a1));
        assert_eq!(reg.etag_of(Subject::new(11)), None);
        assert_eq!(reg.subject48_of(a1), Some(10));
    }

    #[test]
    fn registry_exhaustion() {
        let mut reg = SubjectRegistry::new();
        // Fast-forward next to the end of the space.
        for i in 0..(ETAG_LAST - ETAG_FIRST_DYNAMIC + 1) {
            reg.bind(Subject::new(u64::from(i) + 1_000_000)).unwrap();
        }
        assert_eq!(reg.bind(Subject::new(5)), Err(BindStatus::Exhausted));
    }

    #[test]
    fn reserved_etags_below_dynamic_range() {
        const {
            assert!(ETAG_SYNC < ETAG_FIRST_DYNAMIC);
            assert!(ETAG_FOLLOW_UP < ETAG_FIRST_DYNAMIC);
            assert!(ETAG_BIND_REQUEST < ETAG_FIRST_DYNAMIC);
            assert!(ETAG_BIND_REPLY < ETAG_FIRST_DYNAMIC);
        }
    }
}
