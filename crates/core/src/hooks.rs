//! Runtime-agnostic hooks between the middleware state machines and the
//! runtime that hosts them.
//!
//! The deterministic simulator drives its node state through
//! [`crate::network::NetWorld`] (which owns the bus model directly);
//! the live runtime (`rtec-live`) hosts the same per-channel logic on
//! real threads behind a bus-broker. These traits are the seam: a
//! middleware state machine asks its runtime for the current global
//! time ([`RuntimeClock`]) and for transmission service and timers
//! ([`TxHook`]) without knowing whether frames travel through a
//! simulated bus or over IPC.

use rtec_can::{CanId, Frame};
use rtec_sim::Time;

/// A read-only view of the runtime's notion of global time.
pub trait RuntimeClock {
    /// The current global-time instant.
    fn now(&self) -> Time;
}

/// Transmission service offered by a runtime to a node's middleware.
///
/// Handles returned by [`TxHook::submit`] are runtime-scoped request
/// identifiers; completion (or failed abort) is reported back through
/// whatever completion path the runtime uses, carrying the opaque `tag`
/// (see [`crate::node::pack_tag`]) so the middleware can route it.
pub trait TxHook {
    /// Queue a frame for transmission; returns a handle for later
    /// [`TxHook::abort`] / [`TxHook::update_id`] calls.
    fn submit(&mut self, frame: Frame, tag: u64) -> u32;

    /// Request cancellation of a pending transmission. The request is
    /// best-effort: a frame already on the wire completes normally and
    /// the runtime reports which outcome happened.
    fn abort(&mut self, handle: u32);

    /// Rewrite the identifier (and thus arbitration priority) of a
    /// pending transmission — the SRTEC dynamic-promotion primitive. A
    /// frame already on the wire is unaffected.
    fn update_id(&mut self, handle: u32, id: CanId);

    /// Arm a one-shot timer at absolute global time `at`; the runtime
    /// calls back with `token` when it fires.
    fn set_timer(&mut self, at: Time, token: u64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct MockPort {
        submitted: Vec<(Frame, u64)>,
        aborted: Vec<u32>,
        updates: Vec<(u32, CanId)>,
        timers: Vec<(Time, u64)>,
        now: Time,
    }
    impl RuntimeClock for MockPort {
        fn now(&self) -> Time {
            self.now
        }
    }
    impl TxHook for MockPort {
        fn submit(&mut self, frame: Frame, tag: u64) -> u32 {
            self.submitted.push((frame, tag));
            self.submitted.len() as u32 - 1
        }
        fn abort(&mut self, handle: u32) {
            self.aborted.push(handle);
        }
        fn update_id(&mut self, handle: u32, id: CanId) {
            self.updates.push((handle, id));
        }
        fn set_timer(&mut self, at: Time, token: u64) {
            self.timers.push((at, token));
        }
    }

    #[test]
    fn hooks_are_object_safe_and_mockable() {
        let mut port = MockPort {
            now: Time::from_us(7),
            ..MockPort::default()
        };
        {
            let dyn_port: &mut dyn TxHook = &mut port;
            let id = CanId::new(10, 1, 4);
            let h = dyn_port.submit(Frame::try_new(id, &[1, 2]).unwrap(), 42);
            dyn_port.update_id(h, CanId::new(0, 1, 4));
            dyn_port.abort(h);
            dyn_port.set_timer(Time::from_us(9), 7);
        }
        let dyn_clock: &dyn RuntimeClock = &port;
        assert_eq!(dyn_clock.now(), Time::from_us(7));
        assert_eq!(port.submitted.len(), 1);
        assert_eq!(port.submitted[0].1, 42);
        assert_eq!(port.updates[0].1.priority(), 0);
        assert_eq!(port.aborted, vec![0]);
        assert_eq!(port.timers, vec![(Time::from_us(9), 7)]);
    }
}
