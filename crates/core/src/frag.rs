//! Fragmentation and reassembly for NRT bulk transfers (§2.2.3).
//!
//! CAN frames carry at most 8 payload bytes, so configuration and
//! maintenance data (memory images, electronic data sheets, test
//! patterns) must be chained over many frames. Fragmentation is an
//! inherent attribute of an NRT channel, fixed at announcement.
//!
//! Wire format of one fragment (CAN payload):
//!
//! ```text
//!   byte 0      flags: bit7 = FIRST, bit6 = LAST
//!   bytes 1..3  fragment index (u16 LE)
//!   FIRST:      bytes 3..5 = total message length (u16 LE), bytes 5.. data
//!   otherwise:  bytes 3..  data
//! ```
//!
//! A reassembler keyed by `(TxNode, etag)` rebuilds messages; because
//! CAN delivers one sender's frames in order, a sequence gap means a
//! frame was lost (possible on NRT channels, which have no redundancy)
//! and the partial message is discarded with an error.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

const FLAG_FIRST: u8 = 0x80;
const FLAG_LAST: u8 = 0x40;
/// Data bytes carried by a FIRST fragment.
pub const FIRST_FRAGMENT_DATA: usize = 3;
/// Data bytes carried by a non-first fragment.
pub const LATER_FRAGMENT_DATA: usize = 5;
/// Largest message the u16 length field can describe.
pub const MAX_MESSAGE_LEN: usize = u16::MAX as usize;

/// Split a message into CAN payloads, rejecting messages the u16
/// length field cannot describe.
pub fn try_fragment(data: &[u8]) -> Result<Vec<Vec<u8>>, FragError> {
    if data.len() > MAX_MESSAGE_LEN {
        return Err(FragError::MessageTooLong { len: data.len() });
    }
    Ok(fragment_unchecked(data))
}

/// Split a message into CAN payloads.
///
/// # Panics
/// If `data` exceeds [`MAX_MESSAGE_LEN`]; use [`try_fragment`] for a
/// fallible variant.
pub fn fragment(data: &[u8]) -> Vec<Vec<u8>> {
    match try_fragment(data) {
        Ok(frags) => frags,
        Err(e) => panic!("{e}"),
    }
}

fn fragment_unchecked(data: &[u8]) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    let total = data.len() as u16;
    let first_take = data.len().min(FIRST_FRAGMENT_DATA);
    let mut payload = Vec::with_capacity(8);
    let last_in_first = first_take == data.len();
    payload.push(FLAG_FIRST | if last_in_first { FLAG_LAST } else { 0 });
    payload.extend_from_slice(&0u16.to_le_bytes());
    payload.extend_from_slice(&total.to_le_bytes());
    payload.extend_from_slice(&data[..first_take]);
    out.push(payload);
    let mut offset = first_take;
    let mut index: u16 = 1;
    while offset < data.len() {
        let take = (data.len() - offset).min(LATER_FRAGMENT_DATA);
        let last = offset + take == data.len();
        let mut p = Vec::with_capacity(3 + take);
        p.push(if last { FLAG_LAST } else { 0 });
        p.extend_from_slice(&index.to_le_bytes());
        p.extend_from_slice(&data[offset..offset + take]);
        out.push(p);
        offset += take;
        index = index
            .checked_add(1)
            .expect("message length bound keeps the index in range");
    }
    out
}

/// Number of fragments a message of `len` bytes produces.
pub fn fragment_count(len: usize) -> usize {
    if len <= FIRST_FRAGMENT_DATA {
        1
    } else {
        1 + (len - FIRST_FRAGMENT_DATA).div_ceil(LATER_FRAGMENT_DATA)
    }
}

/// Fragmentation or reassembly failure.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FragError {
    /// The message exceeds [`MAX_MESSAGE_LEN`] and cannot be described
    /// by the u16 length field.
    MessageTooLong {
        /// Offending message length.
        len: usize,
    },
    /// A non-first fragment arrived with no transfer in progress.
    NoTransferInProgress,
    /// Fragment index skipped — a frame was lost; the partial message
    /// was discarded.
    SequenceGap {
        /// Index that was expected next.
        expected: u16,
        /// Index that arrived.
        got: u16,
    },
    /// Payload malformed (too short, bad flags).
    Malformed,
    /// More data arrived than the announced total length.
    Overflow,
    /// The LAST fragment completed a message whose length disagrees
    /// with the announced total.
    LengthMismatch {
        /// Announced total length.
        announced: u16,
        /// Actually received byte count.
        received: usize,
    },
}

impl std::fmt::Display for FragError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FragError::MessageTooLong { len } => write!(
                f,
                "NRT message of {len} bytes exceeds the 64 KiB fragmentation limit"
            ),
            FragError::NoTransferInProgress => {
                write!(f, "non-first fragment with no transfer in progress")
            }
            FragError::SequenceGap { expected, got } => {
                write!(f, "fragment index gap: expected {expected}, got {got}")
            }
            FragError::Malformed => write!(f, "malformed fragment payload"),
            FragError::Overflow => write!(f, "more data than the announced total length"),
            FragError::LengthMismatch {
                announced,
                received,
            } => write!(
                f,
                "reassembled {received} byte(s) but {announced} were announced"
            ),
        }
    }
}

impl std::error::Error for FragError {}

#[derive(Clone, Debug)]
struct Partial {
    total: u16,
    next_index: u16,
    data: Vec<u8>,
}

/// Retired transfer buffers kept for reuse. A handful is plenty: the
/// live set is bounded by concurrent transfers, and anything beyond
/// the limit is genuinely surplus and returned to the allocator.
const SCRATCH_LIMIT: usize = 32;

/// Stateful reassembler for concurrent transfers from many senders.
///
/// Reassembly is allocation-free in steady state: each transfer grows
/// into a scratch buffer whose full capacity is reserved up front from
/// the FIRST fragment's announced total (so later fragments never
/// reallocate), and finished buffers can be handed back with
/// [`Reassembler::recycle`] for the next transfer to reuse (buffers of
/// failed transfers are reclaimed internally). The bench harness
/// asserts the zero-allocation property with a counting allocator.
#[derive(Clone, Debug, Default)]
pub struct Reassembler<K: std::hash::Hash + Eq + Clone> {
    partials: HashMap<K, Partial>,
    scratch: Vec<Vec<u8>>,
}

impl<K: std::hash::Hash + Eq + Clone> Reassembler<K> {
    /// An empty reassembler.
    pub fn new() -> Self {
        Reassembler {
            partials: HashMap::new(),
            scratch: Vec::new(),
        }
    }

    /// Take a scratch buffer with at least `cap` bytes of capacity.
    fn take_buf(&mut self, cap: usize) -> Vec<u8> {
        let mut buf = self.scratch.pop().unwrap_or_default();
        buf.clear();
        buf.reserve(cap);
        buf
    }

    /// Hand a completed message's buffer back for reuse by later
    /// transfers. Optional: skipping it only costs a fresh allocation
    /// per transfer, never correctness.
    pub fn recycle(&mut self, mut buf: Vec<u8>) {
        if self.scratch.len() < SCRATCH_LIMIT && buf.capacity() > 0 {
            buf.clear();
            self.scratch.push(buf);
        }
    }

    /// Discard a partial transfer, reclaiming its buffer.
    fn discard(&mut self, key: &K) {
        if let Some(partial) = self.partials.remove(key) {
            self.recycle(partial.data);
        }
    }

    /// Feed one fragment for stream `key`. Returns the completed
    /// message when the LAST fragment arrives.
    pub fn push(&mut self, key: K, payload: &[u8]) -> Result<Option<Vec<u8>>, FragError> {
        if payload.len() < 3 {
            return Err(FragError::Malformed);
        }
        let flags = payload[0];
        let index = u16::from_le_bytes([payload[1], payload[2]]);
        let first = flags & FLAG_FIRST != 0;
        let last = flags & FLAG_LAST != 0;
        if first {
            if payload.len() < 5 {
                return Err(FragError::Malformed);
            }
            let total = u16::from_le_bytes([payload[3], payload[4]]);
            let body = &payload[5..];
            if body.len() > total as usize {
                return Err(FragError::Overflow);
            }
            if last {
                if body.len() != total as usize {
                    return Err(FragError::LengthMismatch {
                        announced: total,
                        received: body.len(),
                    });
                }
                self.discard(&key);
                let mut data = self.take_buf(total as usize);
                data.extend_from_slice(body);
                return Ok(Some(data));
            }
            // A new FIRST silently replaces any stale partial transfer
            // (the sender restarted); reserving the announced total up
            // front means later fragments never reallocate.
            self.discard(&key);
            let mut data = self.take_buf(total as usize);
            data.extend_from_slice(body);
            self.partials.insert(
                key,
                Partial {
                    total,
                    next_index: 1,
                    data,
                },
            );
            return Ok(None);
        }
        let Some(partial) = self.partials.get_mut(&key) else {
            return Err(FragError::NoTransferInProgress);
        };
        if index != partial.next_index {
            let expected = partial.next_index;
            self.discard(&key);
            return Err(FragError::SequenceGap {
                expected,
                got: index,
            });
        }
        partial.next_index += 1;
        partial.data.extend_from_slice(&payload[3..]);
        if partial.data.len() > partial.total as usize {
            self.discard(&key);
            return Err(FragError::Overflow);
        }
        if last {
            let partial = self.partials.remove(&key).expect("checked above");
            if partial.data.len() != partial.total as usize {
                let announced = partial.total;
                let received = partial.data.len();
                self.recycle(partial.data);
                return Err(FragError::LengthMismatch {
                    announced,
                    received,
                });
            }
            return Ok(Some(partial.data));
        }
        Ok(None)
    }

    /// Number of in-progress transfers.
    pub fn in_progress(&self) -> usize {
        self.partials.len()
    }

    /// Discard an in-progress transfer (e.g. the sender crashed). Its
    /// buffer is reclaimed for later transfers.
    pub fn reset(&mut self, key: &K) {
        self.discard(key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> Vec<u8> {
        let mut r: Reassembler<u8> = Reassembler::new();
        let mut result = None;
        for frag in fragment(data) {
            result = r.push(0, &frag).unwrap();
        }
        assert_eq!(r.in_progress(), 0);
        result.expect("last fragment completes the message")
    }

    #[test]
    fn roundtrip_various_sizes() {
        for len in [0usize, 1, 2, 3, 4, 7, 8, 9, 13, 100, 1000, 4096] {
            let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            assert_eq!(roundtrip(&data), data, "len={len}");
        }
    }

    #[test]
    fn fragment_count_matches() {
        for len in [0usize, 3, 4, 8, 9, 100, 65_535] {
            let data: Vec<u8> = vec![0xA5; len];
            assert_eq!(fragment(&data).len(), fragment_count(len), "len={len}");
        }
        assert_eq!(fragment_count(0), 1);
        assert_eq!(fragment_count(3), 1);
        assert_eq!(fragment_count(4), 2);
        assert_eq!(fragment_count(8), 2);
        assert_eq!(fragment_count(9), 3);
    }

    #[test]
    fn payloads_fit_in_can_frames() {
        let data = vec![7u8; 1234];
        for p in fragment(&data) {
            assert!(p.len() <= 8, "fragment of {} bytes", p.len());
            assert!(p.len() >= 3);
        }
    }

    #[test]
    #[should_panic(expected = "64 KiB")]
    fn oversized_message_panics() {
        let _ = fragment(&vec![0u8; MAX_MESSAGE_LEN + 1]);
    }

    #[test]
    fn interleaved_senders_reassemble_independently() {
        let a: Vec<u8> = (0..50).collect();
        let b: Vec<u8> = (100..180).collect();
        let fa = fragment(&a);
        let fb = fragment(&b);
        let mut r: Reassembler<u8> = Reassembler::new();
        let mut done_a = None;
        let mut done_b = None;
        for i in 0..fa.len().max(fb.len()) {
            if let Some(f) = fa.get(i) {
                if let Some(msg) = r.push(1, f).unwrap() {
                    done_a = Some(msg);
                }
            }
            if let Some(f) = fb.get(i) {
                if let Some(msg) = r.push(2, f).unwrap() {
                    done_b = Some(msg);
                }
            }
        }
        assert_eq!(done_a.unwrap(), a);
        assert_eq!(done_b.unwrap(), b);
    }

    #[test]
    fn lost_fragment_is_detected() {
        let data = vec![9u8; 40];
        let frags = fragment(&data);
        let mut r: Reassembler<u8> = Reassembler::new();
        r.push(0, &frags[0]).unwrap();
        r.push(0, &frags[1]).unwrap();
        // Skip fragment 2.
        let err = r.push(0, &frags[3]).unwrap_err();
        assert_eq!(
            err,
            FragError::SequenceGap {
                expected: 2,
                got: 3
            }
        );
        // Transfer was discarded.
        assert_eq!(r.in_progress(), 0);
        assert_eq!(
            r.push(0, &frags[4]).unwrap_err(),
            FragError::NoTransferInProgress
        );
    }

    #[test]
    fn restart_replaces_partial_transfer() {
        let first = vec![1u8; 40];
        let second = vec![2u8; 10];
        let mut r: Reassembler<u8> = Reassembler::new();
        let f1 = fragment(&first);
        r.push(0, &f1[0]).unwrap();
        r.push(0, &f1[1]).unwrap();
        // Sender restarts with a new message.
        let f2 = fragment(&second);
        let mut done = None;
        for f in &f2 {
            done = r.push(0, f).unwrap();
        }
        assert_eq!(done.unwrap(), second);
    }

    #[test]
    fn malformed_payloads_rejected() {
        let mut r: Reassembler<u8> = Reassembler::new();
        assert_eq!(r.push(0, &[0x80]).unwrap_err(), FragError::Malformed);
        assert_eq!(
            r.push(0, &[0x80, 0, 0, 5]).unwrap_err(),
            FragError::Malformed
        );
        assert_eq!(
            r.push(0, &[0x00, 0, 0, 1, 2]).unwrap_err(),
            FragError::NoTransferInProgress
        );
    }

    #[test]
    fn reset_discards_partial() {
        let data = vec![3u8; 40];
        let frags = fragment(&data);
        let mut r: Reassembler<u8> = Reassembler::new();
        r.push(0, &frags[0]).unwrap();
        assert_eq!(r.in_progress(), 1);
        r.reset(&0);
        assert_eq!(r.in_progress(), 0);
    }

    #[test]
    fn single_fragment_message_has_both_flags() {
        let frags = fragment(&[1, 2, 3]);
        assert_eq!(frags.len(), 1);
        assert_eq!(frags[0][0] & FLAG_FIRST, FLAG_FIRST);
        assert_eq!(frags[0][0] & FLAG_LAST, FLAG_LAST);
    }

    #[test]
    fn empty_message_roundtrips() {
        assert_eq!(roundtrip(&[]), Vec::<u8>::new());
    }

    #[test]
    fn recycled_buffers_are_reused_without_regrowing() {
        let data = vec![0x5Au8; 1000];
        let frags = fragment(&data);
        let mut r: Reassembler<u8> = Reassembler::new();
        // Warm-up transfer allocates the one buffer the loop reuses.
        let mut done = None;
        for f in &frags {
            done = r.push(0, f).unwrap();
        }
        let buf = done.unwrap();
        let warm_ptr = buf.as_ptr();
        let warm_cap = buf.capacity();
        r.recycle(buf);
        for round in 0..50 {
            let mut done = None;
            for f in &frags {
                done = r.push(0, f).unwrap();
            }
            let buf = done.unwrap();
            assert_eq!(buf, data, "round {round}");
            assert_eq!(
                (buf.as_ptr(), buf.capacity()),
                (warm_ptr, warm_cap),
                "round {round}: transfer did not reuse the recycled buffer"
            );
            r.recycle(buf);
        }
    }

    #[test]
    fn failed_transfers_reclaim_their_buffers() {
        let data = vec![9u8; 40];
        let frags = fragment(&data);
        let mut r: Reassembler<u8> = Reassembler::new();
        r.push(0, &frags[0]).unwrap();
        r.push(0, &frags[1]).unwrap();
        r.push(0, &frags[3]).unwrap_err(); // gap discards the partial
        assert_eq!(r.in_progress(), 0);
        // The reclaimed buffer serves the next transfer.
        let mut done = None;
        for f in &frags {
            done = r.push(0, f).unwrap();
        }
        assert_eq!(done.unwrap(), data);
    }
}
