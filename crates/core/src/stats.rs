//! Measurement collection for network runs.
//!
//! The experiment harness reads these counters and histograms after a
//! run; every quantity the paper's claims are stated in (latency,
//! jitter, deadline-miss ratio, redundant transmissions, reclaimed
//! bandwidth) is collected here per channel.

use rtec_sim::{Duration, Histogram};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Per-channel counters and distributions (keyed by etag in
/// [`NetStats`]).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ChannelStats {
    /// Events handed to `publish()`.
    pub published: u64,
    /// Deliveries into subscriber queues (counted once per subscriber).
    pub delivered: u64,
    /// Events dropped by middleware-level attribute filters (origin).
    pub filtered: u64,
    /// SRT: transmission deadlines missed (exception raised; message
    /// kept best-effort).
    pub deadline_misses: u64,
    /// SRT: events dropped from the send queue at expiration.
    pub expired_drops: u64,
    /// HRT subscriber: slots whose delivery deadline passed without an
    /// event on a periodic channel.
    pub missing_events: u64,
    /// HRT publisher: slots where redundancy was exhausted without
    /// all-node reception.
    pub redundancy_exhausted: u64,
    /// HRT publisher: publishes that arrived too late for a slot that
    /// then went empty.
    pub not_ready: u64,
    /// Wire transmissions that completed for this channel (including
    /// redundant and error-retried ones).
    pub wire_transmissions: u64,
    /// HRT: redundant (middleware-initiated repeat) transmissions.
    pub redundant_transmissions: u64,
    /// Publish → delivery latency per delivery (ns, true time).
    pub latency_ns: Histogram,
    /// Publish → wire completion per first successful transmission
    /// (ns, true time).
    pub wire_latency_ns: Histogram,
    /// Inter-delivery spacing per subscriber (ns) — for a periodic HRT
    /// channel its spread is the period jitter the paper bounds.
    pub inter_delivery_ns: Histogram,
}

impl ChannelStats {
    /// Deadline-miss ratio over published events.
    pub fn miss_ratio(&self) -> f64 {
        if self.published == 0 {
            0.0
        } else {
            self.deadline_misses as f64 / self.published as f64
        }
    }

    /// Drop (expiration) ratio over published events.
    pub fn drop_ratio(&self) -> f64 {
        if self.published == 0 {
            0.0
        } else {
            self.expired_drops as f64 / self.published as f64
        }
    }

    /// Peak-to-peak delivery jitter (ns): spread of inter-delivery
    /// spacing.
    pub fn delivery_jitter_ns(&self) -> u64 {
        self.inter_delivery_ns.spread().unwrap_or(0)
    }
}

/// Network-wide measurement state.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct NetStats {
    /// Per-channel statistics, keyed by etag.
    pub channels: HashMap<u16, ChannelStats>,
    /// HRT: delay from a slot's LST to the first transmission attempt
    /// actually starting (ns) — bounded by `ΔT_wait` (§3.2, Fig. 3).
    pub hrt_lst_blocking_ns: Histogram,
    /// HRT: offset of the wire completion inside the slot, measured
    /// from the slot's LST (ns) — the *on-bus* jitter that the
    /// deferred delivery hides from applications.
    pub hrt_wire_offset_ns: Histogram,
    /// Exceptions raised, by coarse kind.
    pub exceptions: u64,
    /// Frames that could not be attributed to a known channel.
    pub unknown_frames: u64,
    /// Bus notifications about an identifier contended by several nodes
    /// at once — TxNode uniqueness (§3.5) violated by the configuration.
    pub duplicate_ids: u64,
}

impl NetStats {
    /// Get or create the stats slot for a channel.
    pub fn channel_mut(&mut self, etag: u16) -> &mut ChannelStats {
        self.channels.entry(etag).or_default()
    }

    /// Read-only access; default (empty) stats if the channel never
    /// appeared.
    pub fn channel(&self, etag: u16) -> ChannelStats {
        self.channels.get(&etag).cloned().unwrap_or_default()
    }

    /// Sum of deliveries across all channels.
    pub fn total_delivered(&self) -> u64 {
        self.channels.values().map(|c| c.delivered).sum()
    }

    /// Sum of publishes across all channels.
    pub fn total_published(&self) -> u64 {
        self.channels.values().map(|c| c.published).sum()
    }

    /// Worst observed LST blocking as a duration.
    pub fn max_lst_blocking(&self) -> Duration {
        Duration::from_ns(self.hrt_lst_blocking_ns.max().unwrap_or(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_zero_published() {
        let s = ChannelStats::default();
        assert_eq!(s.miss_ratio(), 0.0);
        assert_eq!(s.drop_ratio(), 0.0);
        assert_eq!(s.delivery_jitter_ns(), 0);
    }

    #[test]
    fn ratios_compute() {
        let mut s = ChannelStats {
            published: 10,
            deadline_misses: 3,
            expired_drops: 2,
            ..Default::default()
        };
        assert!((s.miss_ratio() - 0.3).abs() < 1e-12);
        assert!((s.drop_ratio() - 0.2).abs() < 1e-12);
        s.inter_delivery_ns.record(10_000);
        s.inter_delivery_ns.record(10_700);
        assert_eq!(s.delivery_jitter_ns(), 700);
    }

    #[test]
    fn netstats_aggregation() {
        let mut n = NetStats::default();
        n.channel_mut(5).published = 4;
        n.channel_mut(5).delivered = 8;
        n.channel_mut(6).published = 1;
        assert_eq!(n.total_published(), 5);
        assert_eq!(n.total_delivered(), 8);
        assert_eq!(n.channel(99).published, 0);
        n.hrt_lst_blocking_ns.record(154_000);
        assert_eq!(n.max_lst_blocking(), Duration::from_us(154));
    }
}
