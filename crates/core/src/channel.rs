//! Channel classes, their attribute lists and exceptions (§2.2).
//!
//! An event channel is an instance of
//!
//! ```text
//!   event_channel := <subject, attribute_list>
//! ```
//!
//! where the attributes describe the dissemination properties (class,
//! period, reliability, priority, fragmentation...). Announcing a
//! publication or subscribing creates the channel's local data
//! structures and triggers the subject → etag binding.

use crate::event::Subject;
use rtec_can::{NodeId, PRIO_NRT_MAX, PRIO_NRT_MIN};
use rtec_sim::{Duration, Time};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The three timeliness classes of §2.2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChannelClass {
    /// Hard real-time: reservation-based, guaranteed under the fault
    /// assumption.
    Hrt,
    /// Soft real-time: EDF-scheduled by transmission deadline,
    /// best-effort under overload.
    Srt,
    /// Non real-time: fixed low priority, bulk transfers.
    Nrt,
}

/// Attributes of a hard real-time channel (per publisher).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HrtSpec {
    /// Slot period: one reserved slot per period for this publisher.
    pub period: Duration,
    /// Payload length the channel transports (0..=8 bytes).
    pub dlc: u8,
    /// Assumed omission degree `k`: up to `k` transmissions of an event
    /// may be lost and it is still delivered in time.
    pub omission_degree: u32,
    /// `true` for sporadic channels: slots are reserved (worst case) but
    /// may legitimately go unused, and the subscriber raises no
    /// missing-event exception for an empty slot. Periodic channels
    /// (`false`) expect an event every slot.
    pub sporadic: bool,
}

impl HrtSpec {
    /// A typical sensor channel: 8-byte payload every 10 ms, tolerating
    /// 2 omissions.
    pub fn periodic_10ms() -> Self {
        HrtSpec {
            period: Duration::from_ms(10),
            dlc: 8,
            omission_degree: 2,
            sporadic: false,
        }
    }

    /// A sporadic alarm channel with the same reservation shape.
    pub fn sporadic_10ms() -> Self {
        HrtSpec {
            sporadic: true,
            ..HrtSpec::periodic_10ms()
        }
    }
}

/// Attributes of a soft real-time channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SrtSpec {
    /// Default relative transmission deadline applied when a published
    /// event carries none.
    pub default_deadline: Duration,
    /// Default relative expiration applied when an event carries none
    /// (measured from publication; `None` = never expires, the event
    /// stays queued best-effort).
    pub default_expiration: Option<Duration>,
}

impl Default for SrtSpec {
    fn default() -> Self {
        SrtSpec {
            default_deadline: Duration::from_ms(10),
            default_expiration: Some(Duration::from_ms(50)),
        }
    }
}

/// Attributes of a non real-time channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NrtSpec {
    /// Fixed CAN priority; must lie in the NRT band (251..=255). The
    /// middleware rigorously enforces the band (§3.3).
    pub priority: u8,
    /// Whether events may exceed 8 bytes and are fragmented (§2.2.3).
    /// Fragmentation is a channel attribute fixed at announcement.
    pub fragmented: bool,
}

impl Default for NrtSpec {
    fn default() -> Self {
        NrtSpec {
            priority: PRIO_NRT_MIN,
            fragmented: false,
        }
    }
}

impl NrtSpec {
    /// A fragmented bulk-transfer channel at the lowest priority.
    pub fn bulk() -> Self {
        NrtSpec {
            priority: PRIO_NRT_MAX,
            fragmented: true,
        }
    }
}

/// The attribute list passed to `announce()`: the channel class plus
/// its class-specific parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChannelSpec {
    /// Hard real-time channel.
    Hrt(HrtSpec),
    /// Soft real-time channel.
    Srt(SrtSpec),
    /// Non real-time channel.
    Nrt(NrtSpec),
}

impl ChannelSpec {
    /// Shorthand constructor.
    pub fn hrt(spec: HrtSpec) -> Self {
        ChannelSpec::Hrt(spec)
    }
    /// Shorthand constructor.
    pub fn srt(spec: SrtSpec) -> Self {
        ChannelSpec::Srt(spec)
    }
    /// Shorthand constructor.
    pub fn nrt(spec: NrtSpec) -> Self {
        ChannelSpec::Nrt(spec)
    }

    /// The channel class of this spec.
    pub fn class(&self) -> ChannelClass {
        match self {
            ChannelSpec::Hrt(_) => ChannelClass::Hrt,
            ChannelSpec::Srt(_) => ChannelClass::Srt,
            ChannelSpec::Nrt(_) => ChannelClass::Nrt,
        }
    }
}

/// Subscription attribute list: used for resource allocation and
/// event filtering (§2.2.1).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubscribeSpec {
    /// Accept only events originating from these nodes (`None` = any).
    /// The paper's example filter — "a subscriber may be interested in
    /// receiving events only from publishers in the same network"; the
    /// origin is read from the identifier's TxNode field, so the filter
    /// costs nothing on the wire.
    pub origin_allow: Option<Vec<NodeId>>,
}

impl SubscribeSpec {
    /// Restrict to events from the given origins.
    pub fn from_origins(origins: impl Into<Vec<NodeId>>) -> Self {
        SubscribeSpec {
            origin_allow: Some(origins.into()),
        }
    }

    /// `true` if an event with the given origin passes the filter.
    pub fn passes(&self, origin: Option<NodeId>) -> bool {
        if let Some(allow) = &self.origin_allow {
            match origin {
                Some(o) if allow.contains(&o) => {}
                _ => return false,
            }
        }
        true
    }
}

/// Exceptional situations reported to the local exception handlers
/// (§2.2: "this local notification allows the application to react and
/// adapt").
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChannelException {
    /// SRT: the transmission deadline passed before the event was sent;
    /// transmission continues best-effort until expiration.
    DeadlineMissed {
        /// Subject of the affected channel.
        subject: Subject,
        /// The missed deadline.
        deadline: Time,
    },
    /// SRT: the event's validity expired; it was removed from the send
    /// queue without being transmitted.
    Expired {
        /// Subject of the affected channel.
        subject: Subject,
        /// The expiration instant.
        expiration: Time,
    },
    /// HRT subscriber: no event arrived in a slot where one was
    /// expected (detectable because reservation times are known).
    MissingEvent {
        /// Subject of the affected channel.
        subject: Subject,
        /// The delivery deadline of the empty slot.
        expected_at: Time,
    },
    /// HRT publisher: the event was still not received by all
    /// operational nodes when the slot's redundancy budget was
    /// exhausted — the fault assumption was violated.
    RedundancyExhausted {
        /// Subject of the affected channel.
        subject: Subject,
        /// Transmission attempts spent.
        attempts: u32,
    },
    /// HRT publisher: `publish()` arrived too late to be staged for the
    /// upcoming slot (the message was not ready at the slot's latest
    /// ready time).
    NotReady {
        /// Subject of the affected channel.
        subject: Subject,
        /// The slot's ready instant that was missed.
        slot_ready_at: Time,
    },
    /// The middleware propagated a lower-level failure (e.g. a crashed
    /// binding agent).
    Fault {
        /// Subject of the affected channel.
        subject: Subject,
        /// Human-readable description.
        reason: String,
    },
}

impl ChannelException {
    /// The subject the exception concerns.
    pub fn subject(&self) -> Subject {
        match self {
            ChannelException::DeadlineMissed { subject, .. }
            | ChannelException::Expired { subject, .. }
            | ChannelException::MissingEvent { subject, .. }
            | ChannelException::RedundancyExhausted { subject, .. }
            | ChannelException::NotReady { subject, .. }
            | ChannelException::Fault { subject, .. } => *subject,
        }
    }
}

impl fmt::Display for ChannelException {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelException::DeadlineMissed { subject, deadline } => {
                write!(f, "{subject}: transmission deadline {deadline} missed")
            }
            ChannelException::Expired {
                subject,
                expiration,
            } => {
                write!(
                    f,
                    "{subject}: expired at {expiration}, dropped from send queue"
                )
            }
            ChannelException::MissingEvent {
                subject,
                expected_at,
            } => {
                write!(f, "{subject}: no event in slot delivering at {expected_at}")
            }
            ChannelException::RedundancyExhausted { subject, attempts } => {
                write!(
                    f,
                    "{subject}: redundancy exhausted after {attempts} attempts"
                )
            }
            ChannelException::NotReady {
                subject,
                slot_ready_at,
            } => {
                write!(
                    f,
                    "{subject}: publish missed slot ready time {slot_ready_at}"
                )
            }
            ChannelException::Fault { subject, reason } => {
                write!(f, "{subject}: {reason}")
            }
        }
    }
}

/// Errors returned synchronously by the channel API.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChannelError {
    /// `announce` for a subject this node already publishes.
    AlreadyAnnounced(Subject),
    /// Operation on a subject this node never announced/subscribed.
    NotAnnounced(Subject),
    /// Duplicate subscription by the same node.
    AlreadySubscribed(Subject),
    /// Not subscribed.
    NotSubscribed(Subject),
    /// NRT priority outside the allowed band — the middleware enforces
    /// `P_HRT < P_SRT < P_NRT` (§3.3).
    PriorityOutOfBand {
        /// The rejected priority value.
        priority: u8,
    },
    /// Payload too long for a non-fragmented channel.
    PayloadTooLong {
        /// Offending payload length.
        len: usize,
        /// Maximum allowed.
        max: usize,
    },
    /// Publishing on an HRT channel before the calendar was installed,
    /// or announcing an HRT channel after it.
    CalendarState(&'static str),
    /// The class of the operation does not match the announced channel.
    WrongClass {
        /// The channel's class.
        expected: ChannelClass,
    },
    /// The etag space is exhausted (14-bit field).
    EtagsExhausted,
    /// A different node already publishes this subject with an
    /// incompatible spec.
    SpecMismatch(Subject),
}

impl fmt::Display for ChannelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelError::AlreadyAnnounced(s) => write!(f, "{s}: already announced"),
            ChannelError::NotAnnounced(s) => write!(f, "{s}: not announced"),
            ChannelError::AlreadySubscribed(s) => write!(f, "{s}: already subscribed"),
            ChannelError::NotSubscribed(s) => write!(f, "{s}: not subscribed"),
            ChannelError::PriorityOutOfBand { priority } => {
                write!(f, "priority {priority} outside the NRT band (251..=255)")
            }
            ChannelError::PayloadTooLong { len, max } => {
                write!(f, "payload of {len} bytes exceeds {max}")
            }
            ChannelError::CalendarState(msg) => write!(f, "calendar: {msg}"),
            ChannelError::WrongClass { expected } => {
                write!(f, "operation does not match channel class {expected:?}")
            }
            ChannelError::EtagsExhausted => write!(f, "no free etags"),
            ChannelError::SpecMismatch(s) => {
                write!(f, "{s}: conflicting channel spec from another publisher")
            }
        }
    }
}

impl std::error::Error for ChannelError {}

/// Validate an NRT spec against the priority-band partition.
pub fn validate_nrt_priority(spec: &NrtSpec) -> Result<(), ChannelError> {
    if (PRIO_NRT_MIN..=PRIO_NRT_MAX).contains(&spec.priority) {
        Ok(())
    } else {
        Err(ChannelError::PriorityOutOfBand {
            priority: spec.priority,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_classes() {
        assert_eq!(
            ChannelSpec::hrt(HrtSpec::periodic_10ms()).class(),
            ChannelClass::Hrt
        );
        assert_eq!(
            ChannelSpec::srt(SrtSpec::default()).class(),
            ChannelClass::Srt
        );
        assert_eq!(
            ChannelSpec::nrt(NrtSpec::default()).class(),
            ChannelClass::Nrt
        );
    }

    #[test]
    fn nrt_band_enforced() {
        assert!(validate_nrt_priority(&NrtSpec {
            priority: 251,
            fragmented: false
        })
        .is_ok());
        assert!(validate_nrt_priority(&NrtSpec {
            priority: 255,
            fragmented: true
        })
        .is_ok());
        // An NRT channel must never be able to claim an SRT or HRT
        // priority — that would break P_HRT < P_SRT < P_NRT.
        let err = validate_nrt_priority(&NrtSpec {
            priority: 250,
            fragmented: false,
        });
        assert_eq!(err, Err(ChannelError::PriorityOutOfBand { priority: 250 }));
        let err0 = validate_nrt_priority(&NrtSpec {
            priority: 0,
            fragmented: false,
        });
        assert!(err0.is_err());
    }

    #[test]
    fn subscribe_filter_origin() {
        let spec = SubscribeSpec::from_origins(vec![NodeId(1), NodeId(2)]);
        assert!(spec.passes(Some(NodeId(1))));
        assert!(!spec.passes(Some(NodeId(3))));
        assert!(!spec.passes(None), "unknown origin rejected when filtering");
    }

    #[test]
    fn subscribe_filter_default_accepts_all() {
        let spec = SubscribeSpec::default();
        assert!(spec.passes(None));
        assert!(spec.passes(Some(NodeId(9))));
    }

    #[test]
    fn hrt_spec_sporadic_variant() {
        let p = HrtSpec::periodic_10ms();
        let s = HrtSpec::sporadic_10ms();
        assert!(!p.sporadic);
        assert!(s.sporadic);
        assert_eq!(p.period, s.period);
    }

    #[test]
    fn exception_subject_and_display() {
        let exc = ChannelException::Expired {
            subject: Subject::new(0xAB),
            expiration: Time::from_ms(3),
        };
        assert_eq!(exc.subject(), Subject::new(0xAB));
        assert!(format!("{exc}").contains("expired"));
        let exc2 = ChannelException::MissingEvent {
            subject: Subject::new(1),
            expected_at: Time::ZERO,
        };
        assert!(format!("{exc2}").contains("no event"));
    }

    #[test]
    fn error_display() {
        let e = ChannelError::PayloadTooLong { len: 12, max: 8 };
        assert!(format!("{e}").contains("12"));
    }
}
