//! Runtime-agnostic scheduling policy shared by the simulator and the
//! live runtime.
//!
//! The SRTEC send queue is EDF-ordered: the head is the entry with the
//! earliest transmission deadline, FIFO among equal deadlines (lowest
//! sequence number wins). The deterministic simulator
//! ([`crate::network::NetWorld`]) and the multi-threaded live runtime
//! (`rtec-live`) both drive their soft real-time dispatch off this one
//! queue type, so the paper's §3.2 dispatch rule cannot drift between
//! the two.

use std::ops::{Index, IndexMut};

use rtec_sim::Time;

/// Ordering key for entries in an [`EdfQueue`]: an absolute deadline
/// plus a node-local sequence number that breaks ties FIFO.
pub trait EdfOrder {
    /// Absolute transmission deadline (global time).
    fn deadline(&self) -> Time;
    /// Node-local sequence number (monotonic at enqueue).
    fn seq(&self) -> u32;
}

/// An earliest-deadline-first send queue.
///
/// Entries stay at stable indices between mutations (the backing store
/// is a plain `Vec`), so callers may hold an index across inspection
/// calls; [`EdfQueue::head_index`] recomputes the EDF head on demand.
/// The queue tracks its own high-water mark for observability.
#[derive(Debug, Clone)]
pub struct EdfQueue<M> {
    items: Vec<M>,
    peak: usize,
}

impl<M> Default for EdfQueue<M> {
    fn default() -> Self {
        EdfQueue {
            items: Vec::new(),
            peak: 0,
        }
    }
}

impl<M: EdfOrder> EdfQueue<M> {
    /// An empty queue.
    pub fn new() -> Self {
        EdfQueue::default()
    }

    /// Enqueue an entry (position is insertion order; EDF order is
    /// imposed by [`EdfQueue::head_index`], not by the storage).
    pub fn push(&mut self, m: M) {
        self.items.push(m);
        self.peak = self.peak.max(self.items.len());
    }

    /// Index of the earliest-deadline entry, FIFO among equals.
    pub fn head_index(&self) -> Option<usize> {
        (0..self.items.len()).min_by_key(|&i| (self.items[i].deadline(), self.items[i].seq()))
    }

    /// The earliest-deadline entry, FIFO among equals.
    pub fn head(&self) -> Option<&M> {
        self.head_index().map(|i| &self.items[i])
    }

    /// Find an entry by sequence number.
    pub fn find(&self, seq: u32) -> Option<usize> {
        self.items.iter().position(|m| m.seq() == seq)
    }

    /// Remove and return an entry by sequence number.
    pub fn take(&mut self, seq: u32) -> Option<M> {
        self.find(seq).map(|i| self.items.remove(i))
    }

    /// Remove and return the entry at `idx` (panics when out of range,
    /// like `Vec::remove`).
    pub fn remove(&mut self, idx: usize) -> M {
        self.items.remove(idx)
    }

    /// Number of queued entries.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// High-water mark of the queue length since creation.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Iterate entries in storage (insertion) order.
    pub fn iter(&self) -> impl Iterator<Item = &M> {
        self.items.iter()
    }

    /// Among queued entries, the index of the one that would be dropped
    /// by an overflow policy: the *latest* deadline, newest among equals
    /// (the entry EDF would serve last).
    pub fn overflow_victim(&self) -> Option<usize> {
        (0..self.items.len()).max_by_key(|&i| (self.items[i].deadline(), self.items[i].seq()))
    }
}

impl<M> Index<usize> for EdfQueue<M> {
    type Output = M;
    fn index(&self, idx: usize) -> &M {
        &self.items[idx]
    }
}

impl<M> IndexMut<usize> for EdfQueue<M> {
    fn index_mut(&mut self, idx: usize) -> &mut M {
        &mut self.items[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct E {
        seq: u32,
        deadline: Time,
    }
    impl EdfOrder for E {
        fn deadline(&self) -> Time {
            self.deadline
        }
        fn seq(&self) -> u32 {
            self.seq
        }
    }
    fn e(seq: u32, us: u64) -> E {
        E {
            seq,
            deadline: Time::from_us(us),
        }
    }

    #[test]
    fn head_is_earliest_deadline_fifo_on_ties() {
        let mut q = EdfQueue::new();
        q.push(e(0, 300));
        q.push(e(1, 100));
        q.push(e(2, 100));
        assert_eq!(q.head_index(), Some(1));
        assert_eq!(q.head().unwrap().seq, 1);
        assert_eq!(q.take(1).unwrap().seq, 1);
        assert_eq!(q.head_index(), Some(1)); // seq=2 shifted to index 1
        assert_eq!(q.find(0), Some(0));
        assert_eq!(q.find(9), None);
        assert!(q.take(9).is_none());
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut q = EdfQueue::new();
        q.push(e(0, 1));
        q.push(e(1, 2));
        q.take(0);
        q.push(e(2, 3));
        assert_eq!(q.len(), 2);
        assert_eq!(q.peak(), 2);
        q.push(e(3, 4));
        assert_eq!(q.peak(), 3);
    }

    #[test]
    fn overflow_victim_is_latest_deadline_newest_on_ties() {
        let mut q = EdfQueue::new();
        assert_eq!(q.overflow_victim(), None);
        q.push(e(0, 300));
        q.push(e(1, 500));
        q.push(e(2, 500));
        assert_eq!(q.overflow_victim(), Some(2));
        q.remove(2);
        assert_eq!(q.overflow_victim(), Some(1));
    }

    #[test]
    fn indexing_and_iteration() {
        let mut q = EdfQueue::new();
        q.push(e(7, 10));
        q.push(e(8, 20));
        assert_eq!(q[0].seq, 7);
        q[1].deadline = Time::from_us(5);
        assert_eq!(q.head_index(), Some(1));
        let seqs: Vec<u32> = q.iter().map(|m| m.seq).collect();
        assert_eq!(seqs, vec![7, 8]);
        assert!(!q.is_empty());
    }
}
