//! The application-programming interface of the event channels
//! (Figs. 1–2 of the paper).
//!
//! The paper declares per-class C++ channel objects:
//!
//! ```c++
//! class hrtec {
//!   int announce(subject, attribute_list, exception_handler);
//!   int publish(event);
//!   int subscribe(subject, attribute_list, event_queue, not_handler,
//!                 exception_handler);
//!   int cancelSubscription(void);
//! };
//! ```
//!
//! [`NetApi`] is the Rust rendering: the same five operations (plus the
//! SRTEC-only `cancelPublication`), with the channel class selected by
//! the `attribute_list` ([`ChannelSpec`]) and the node made explicit
//! because one simulation hosts every node of the distributed system.
//! `event_queue`, `not_handler` and `exception_handler` appear exactly
//! as in the paper: subscribing returns the queue the middleware fills,
//! and the optional handlers are invoked asynchronously on delivery and
//! on exceptions.

use crate::channel::{ChannelError, ChannelException, ChannelSpec, SubscribeSpec};
use crate::event::{Delivery, Event, EventQueue, Subject};
use crate::network::{CalendarError, NetEvent, NetWorld};
use crate::node::{ExcHandler, NotifyHandler};
use crate::stats::NetStats;
use rtec_can::NodeId;
use rtec_sim::{Ctx, Time};

/// Live access to the middleware of every node, valid at one simulated
/// instant (inside a scheduled closure, or between runs via
/// [`crate::network::Network::api`]).
pub struct NetApi<'a> {
    pub(crate) world: &'a mut NetWorld,
    pub(crate) ctx: &'a mut Ctx<NetEvent>,
}

impl NetApi<'_> {
    /// Current simulated (true) time.
    pub fn now(&self) -> Time {
        self.ctx.now()
    }

    /// `node`'s current estimate of global time.
    pub fn now_global(&self, node: NodeId) -> Time {
        self.world.global_now(node, self.ctx.now())
    }

    /// `channel.announce(subject, attribute_list, exception_handler)` —
    /// create the publisher-side channel data structures and bind the
    /// subject to a network address.
    pub fn announce(
        &mut self,
        node: NodeId,
        subject: Subject,
        spec: ChannelSpec,
    ) -> Result<(), ChannelError> {
        self.world.announce(self.ctx, node, subject, spec, None)
    }

    /// [`NetApi::announce`] with a local exception handler.
    pub fn announce_with_handler(
        &mut self,
        node: NodeId,
        subject: Subject,
        spec: ChannelSpec,
        handler: impl FnMut(&ChannelException) + 'static,
    ) -> Result<(), ChannelError> {
        let h: ExcHandler = Box::new(handler);
        self.world.announce(self.ctx, node, subject, spec, Some(h))
    }

    /// `channel.publish(event)` — disseminate an event on the announced
    /// channel. For an HRT channel the event is *staged* for the next
    /// reserved slot; for SRT it enters the EDF queue; for NRT the FIFO
    /// sender.
    pub fn publish(
        &mut self,
        node: NodeId,
        subject: Subject,
        event: Event,
    ) -> Result<(), ChannelError> {
        self.world.publish(self.ctx, node, subject, event)
    }

    /// `channel.subscribe(subject, attribute_list, event_queue,
    /// not_handler, exception_handler)` — returns the event queue the
    /// middleware fills (the paper's `getEvent()` is
    /// [`EventQueue::pop`]).
    pub fn subscribe(
        &mut self,
        node: NodeId,
        subject: Subject,
        spec: SubscribeSpec,
    ) -> Result<EventQueue, ChannelError> {
        self.world
            .subscribe(self.ctx, node, subject, spec, None, None)
    }

    /// [`NetApi::subscribe`] with notification and exception handlers.
    pub fn subscribe_with(
        &mut self,
        node: NodeId,
        subject: Subject,
        spec: SubscribeSpec,
        not_handler: impl FnMut(&Delivery) + 'static,
        exception_handler: impl FnMut(&ChannelException) + 'static,
    ) -> Result<EventQueue, ChannelError> {
        let nh: NotifyHandler = Box::new(not_handler);
        let eh: ExcHandler = Box::new(exception_handler);
        self.world
            .subscribe(self.ctx, node, subject, spec, Some(nh), Some(eh))
    }

    /// `channel.cancelSubscription()` — a strictly local operation
    /// releasing the subscriber-side resources.
    pub fn cancel_subscription(
        &mut self,
        node: NodeId,
        subject: Subject,
    ) -> Result<(), ChannelError> {
        self.world.cancel_subscription(node, subject)
    }

    /// `channel.cancelPublication()` (SRTEC/NRTEC) — withdraw the
    /// publisher endpoint. HRT publications cannot be cancelled while
    /// the calendar is active (reservations are off-line, §3.1).
    pub fn cancel_publication(
        &mut self,
        node: NodeId,
        subject: Subject,
    ) -> Result<(), ChannelError> {
        self.world.cancel_publication(node, subject)
    }

    /// Run the off-line admission test over all announced HRT channels
    /// and start the calendar (§3.1). Must be called after every HRT
    /// `announce` and before HRT `publish`.
    pub fn install_calendar(&mut self) -> Result<(), CalendarError> {
        self.world.install_calendar(self.ctx)
    }

    /// Crash or revive a node's CAN controller. A crashed node neither
    /// transmits nor receives nor counts towards the all-received check
    /// — the temporary-node-fault case of the paper's fault assumption.
    /// Subscribers of its periodic HRT channels detect the failure
    /// through missing-event exceptions (§2.2.1).
    pub fn set_node_operational(&mut self, node: NodeId, operational: bool) {
        self.world
            .bus
            .controller_mut(node)
            .set_operational(operational);
    }

    /// Statistics collected so far.
    pub fn stats(&self) -> &NetStats {
        &self.world.stats
    }

    /// The world (bus, calendar, registry) — read-only.
    pub fn world(&self) -> &NetWorld {
        self.world
    }

    /// Mutable world access (e.g. swapping the fault model mid-run).
    pub fn world_mut(&mut self) -> &mut NetWorld {
        self.world
    }
}
