//! The network world: bus + clocks + per-node middleware, driven by the
//! discrete-event engine.
//!
//! [`Network`] is the top-level object applications construct. It owns
//! an [`Engine`] whose model, [`NetWorld`], implements all three channel
//! classes:
//!
//! * **HRT** — [`NetWorld::install_calendar`] runs the off-line
//!   admission test over every announced HRT channel and then replays
//!   the calendar round by round: each slot raises `SlotReady` (stage
//!   the published event), `SlotLst` (submit at the reserved priority
//!   0 — the CAN arbitration now guarantees the next transmission), and
//!   `SlotDeliver` per subscriber (deliver exactly at the slot's
//!   delivery deadline, cancelling jitter). Redundant retransmissions
//!   are issued only while the bus reports a receiver missed the frame
//!   (`all_received == false`) and stop as soon as reception is
//!   consistent — the bandwidth-reclaiming behaviour of §3.2.
//! * **SRT** — per-node EDF queues; the head message is submitted with
//!   a priority derived from its transmission deadline
//!   ([`rtec_analysis::edf::priority_for_deadline`]) and promoted as
//!   its laxity shrinks. Misses and expirations raise local exceptions.
//! * **NRT** — fixed-priority FIFO senders with optional fragmentation.

use crate::api::NetApi;
use crate::binding::{
    BindReply, BindRequest, BindStatus, SubjectRegistry, ETAG_BIND_REPLY, ETAG_BIND_REQUEST,
    ETAG_FOLLOW_UP, ETAG_SYNC,
};
use crate::channel::{
    validate_nrt_priority, ChannelClass, ChannelError, ChannelException, ChannelSpec, SubscribeSpec,
};
use crate::event::{Delivery, Event, EventQueue, Subject};
use crate::node::{
    pack_tag, unpack_tag, ActiveSlot, ExcHandler, NodeState, NotifyHandler, NrtTransfer,
    PublisherState, SrtMsg, SubscriptionState, TagKind,
};
use crate::stats::NetStats;
use rtec_analysis::admission::{AdmissionError, CalendarPlan, SlotRequest};
use rtec_analysis::edf::{next_promotion_time, priority_for_deadline, PrioritySlotConfig};
use rtec_analysis::wctt::wcct_single;
use rtec_can::{
    AcceptanceFilter, BusConfig, CanBus, CanEvent, CanId, FaultInjector, FaultModel, Frame,
    MapScheduler, NodeId, Notification, TxRequest, PRIO_HRT, PRIO_NRT_MIN,
};
use rtec_clock::{ClockParams, LocalClock};
use rtec_sim::{Ctx, Duration, Engine, Model, RngStreams, SourceId, Time, TraceSink};
use std::collections::{HashMap, VecDeque};

/// Maximum inline (single-frame) event content.
pub const MAX_INLINE_CONTENT: usize = 8;

/// Events of the network world.
#[derive(Clone, Copy, Debug)]
pub enum NetEvent {
    /// Bus activity.
    Can(CanEvent),
    /// A calendar round begins.
    RoundStart {
        /// Round number (0-based).
        round: u64,
    },
    /// A slot's ready instant (publisher side).
    SlotReady {
        /// Round number.
        round: u64,
        /// Slot index within the calendar.
        slot: usize,
    },
    /// A slot's Latest Start Time (publisher side).
    SlotLst {
        /// Round number.
        round: u64,
        /// Slot index within the calendar.
        slot: usize,
    },
    /// A slot's delivery deadline at one node.
    SlotDeliver {
        /// Round number.
        round: u64,
        /// Slot index within the calendar.
        slot: usize,
        /// Node performing delivery (subscriber) or cleanup (publisher).
        node: NodeId,
    },
    /// Dynamic priority promotion check for an SRT message.
    SrtPromote {
        /// Owning node.
        node: NodeId,
        /// Message sequence number.
        seq: u32,
    },
    /// Transmission-deadline check for an SRT message.
    SrtDeadline {
        /// Owning node.
        node: NodeId,
        /// Message sequence number.
        seq: u32,
    },
    /// Expiration check for an SRT message.
    SrtExpire {
        /// Owning node.
        node: NodeId,
        /// Message sequence number.
        seq: u32,
    },
    /// The sync master emits the next SYNC frame.
    SyncTick,
    /// A one-shot application closure.
    App(usize),
    /// A recurring application closure.
    Recurring(usize),
}

/// Configuration of the in-network clock-synchronization service (the
/// Gergeleit/Streich two-frame scheme the paper adopts as its time
/// base, [9]).
#[derive(Clone, Copy, Debug)]
pub struct ClockSyncConfig {
    /// Resynchronization period (master time).
    pub period: Duration,
    /// The node whose clock defines global time. Its own drift shifts
    /// the whole time base; pick a good oscillator for it.
    pub master: NodeId,
    /// CAN priority of sync frames (top of the SRT band by default —
    /// infrastructure traffic must not starve).
    pub priority: u8,
}

impl Default for ClockSyncConfig {
    fn default() -> Self {
        ClockSyncConfig {
            period: Duration::from_ms(50),
            master: NodeId(0),
            priority: rtec_can::PRIO_SRT_MIN,
        }
    }
}

/// Static configuration of a network world.
#[derive(Clone, Debug)]
pub struct NetworkConfig {
    /// Number of nodes on the bus.
    pub nodes: usize,
    /// Bus parameters (bit rate).
    pub bus: BusConfig,
    /// Inter-slot gap `ΔG_min` (paper: 40 µs).
    pub gap: Duration,
    /// Deadline → priority mapping for SRT traffic.
    pub priority_slots: PrioritySlotConfig,
    /// Per-node oscillator parameters (`None` = perfect clocks).
    pub clocks: Option<Vec<ClockParams>>,
    /// Run the clock-synchronization protocol over the bus (`None` =
    /// clocks free-run; fine for perfect clocks, required for drifting
    /// clocks on long runs).
    pub clock_sync: Option<ClockSyncConfig>,
    /// Run the binding protocol over the bus instead of binding
    /// instantaneously.
    pub dynamic_binding: bool,
    /// Node hosting the binding agent.
    pub binding_agent: NodeId,
    /// Calendar round length.
    pub round: Duration,
    /// Delay from `install_calendar` to the first round.
    pub calendar_start_delay: Duration,
    /// Fault model installed on the bus.
    pub fault_model: FaultModel,
    /// Seed for all randomness.
    pub seed: u64,
    /// Deliver HRT events at the slot deadline (paper behaviour). Set
    /// `false` for the jitter ablation: deliver on wire completion.
    pub hrt_deferred_delivery: bool,
    /// Dynamically promote SRT priorities as deadlines near (paper
    /// behaviour). Set `false` for the ablation: priority fixed at
    /// enqueue time.
    pub srt_dynamic_promotion: bool,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            nodes: 4,
            bus: BusConfig::default(),
            gap: Duration::from_us(40),
            priority_slots: PrioritySlotConfig::paper_default(),
            clocks: None,
            clock_sync: None,
            dynamic_binding: false,
            binding_agent: NodeId(0),
            round: Duration::from_ms(10),
            calendar_start_delay: Duration::from_ms(1),
            fault_model: FaultModel::None,
            seed: 42,
            hrt_deferred_delivery: true,
            srt_dynamic_promotion: true,
        }
    }
}

/// Errors from [`NetWorld::install_calendar`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CalendarError {
    /// The admission test rejected the reservation set.
    Admission(AdmissionError),
    /// An HRT channel has no etag yet (dynamic binding still pending).
    Unbound(Subject),
    /// The calendar was already installed.
    AlreadyInstalled,
}

impl std::fmt::Display for CalendarError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CalendarError::Admission(e) => write!(f, "admission refused: {e}"),
            CalendarError::Unbound(s) => write!(f, "HRT channel {s} not bound yet"),
            CalendarError::AlreadyInstalled => write!(f, "calendar already installed"),
        }
    }
}
impl std::error::Error for CalendarError {}

#[derive(Clone, Copy, Debug)]
pub(crate) struct ChannelMeta {
    pub subject: Subject,
    pub class: ChannelClass,
    pub sporadic: bool,
    pub fragmented: bool,
}

/// A boxed recurring application closure.
type RecurringFn = Box<dyn FnMut(&mut NetApi<'_>)>;
/// A boxed one-shot application closure.
type OneShotFn = Box<dyn FnOnce(&mut NetApi<'_>)>;

struct RecurringTask {
    period: Duration,
    f: Option<RecurringFn>,
}

/// The simulation model: everything on (and above) the bus.
pub struct NetWorld {
    /// The shared bus.
    pub bus: CanBus,
    /// Measurements.
    pub stats: NetStats,
    pub(crate) nodes: Vec<NodeState>,
    pub(crate) registry: SubjectRegistry,
    pub(crate) channel_table: HashMap<u16, ChannelMeta>,
    pub(crate) subscribers: HashMap<u16, Vec<NodeId>>,
    pub(crate) calendar: Option<CalendarPlan>,
    pub(crate) calendar_start: Time,
    pub(crate) config: NetworkConfig,
    trace: TraceSink,
    /// Per-node interned trace sources, indexed `[node][Tec]`. Rebuilt
    /// whenever the sink is replaced; hot emit sites pass these handles
    /// instead of formatting a `String` source per event.
    trace_srcs: Vec<[SourceId; 3]>,
    one_shots: Vec<Option<OneShotFn>>,
    recurring: Vec<RecurringTask>,
    /// Slots that went empty: (node, etag) → (ready, deadline) in true
    /// time, for the NotReady exception.
    empty_slots: HashMap<(u8, u16), (Time, Time)>,
    /// Publish instants of staged HRT events, for latency accounting.
    hrt_publish_times: HashMap<(u16, u64, usize), Time>,
}

fn wrap_can(ev: CanEvent) -> NetEvent {
    NetEvent::Can(ev)
}

/// Which of a node's event-channel handlers a trace record comes from
/// (index into `NetWorld::trace_srcs`).
#[derive(Clone, Copy)]
enum Tec {
    Hrt = 0,
    Srt = 1,
    Nrt = 2,
}

impl NetWorld {
    /// (Re)intern the per-node trace source names (`"node3.hrtec"`, ...)
    /// on the current sink.
    fn rebuild_trace_srcs(&mut self) {
        self.trace_srcs = self
            .nodes
            .iter()
            .map(|ns| {
                let n = ns.id;
                [
                    self.trace.intern(&format!("{n}.hrtec")),
                    self.trace.intern(&format!("{n}.srtec")),
                    self.trace.intern(&format!("{n}.nrtec")),
                ]
            })
            .collect();
    }

    /// Cached interned trace source for one of `node`'s channel handlers.
    #[inline]
    fn tec_src(&mut self, node: NodeId, tec: Tec) -> SourceId {
        if self.trace_srcs.len() != self.nodes.len() {
            self.rebuild_trace_srcs();
        }
        self.trace_srcs[node.index()][tec as usize]
    }

    fn new(config: NetworkConfig) -> Self {
        let streams = RngStreams::new(config.seed);
        let injector = FaultInjector::new(config.fault_model.clone(), streams.stream("bus-faults"));
        let mut bus = CanBus::new(config.bus, config.nodes, injector);
        if config.dynamic_binding {
            // The agent listens for requests; everyone listens for the
            // broadcast replies.
            bus.controller_mut(config.binding_agent)
                .add_filter(AcceptanceFilter::for_etag(ETAG_BIND_REQUEST));
            for i in 0..config.nodes {
                bus.controller_mut(NodeId(i as u8))
                    .add_filter(AcceptanceFilter::for_etag(ETAG_BIND_REPLY));
            }
        }
        if config.clock_sync.is_some() {
            for i in 0..config.nodes {
                let c = bus.controller_mut(NodeId(i as u8));
                c.add_filter(AcceptanceFilter::for_etag(ETAG_SYNC));
                c.add_filter(AcceptanceFilter::for_etag(ETAG_FOLLOW_UP));
            }
        }
        let nodes = (0..config.nodes)
            .map(|i| {
                let params = config
                    .clocks
                    .as_ref()
                    .and_then(|c| c.get(i).copied())
                    .unwrap_or(ClockParams::PERFECT);
                NodeState::new(NodeId(i as u8), LocalClock::new(params))
            })
            .collect();
        NetWorld {
            bus,
            stats: NetStats::default(),
            nodes,
            registry: SubjectRegistry::new(),
            channel_table: HashMap::new(),
            subscribers: HashMap::new(),
            calendar: None,
            calendar_start: Time::ZERO,
            config,
            trace: TraceSink::disabled(),
            trace_srcs: Vec::new(),
            one_shots: Vec::new(),
            recurring: Vec::new(),
            empty_slots: HashMap::new(),
            hrt_publish_times: HashMap::new(),
        }
    }

    /// The installed calendar, if any.
    pub fn calendar(&self) -> Option<&CalendarPlan> {
        self.calendar.as_ref()
    }

    /// First round start (true time) of the installed calendar, if any.
    pub fn calendar_start(&self) -> Option<Time> {
        self.calendar.as_ref().map(|_| self.calendar_start)
    }

    /// The network configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// The subject→etag registry.
    pub fn registry(&self) -> &SubjectRegistry {
        &self.registry
    }

    /// The subject a bound etag belongs to, if a channel exists for it.
    pub fn channel_subject(&self, etag: u16) -> Option<Subject> {
        self.channel_table.get(&etag).map(|m| m.subject)
    }

    /// Enumerate all bound channels: `(etag, subject, class)`, sorted by
    /// etag — the directory a monitoring or configuration tool would
    /// display.
    pub fn channels(&self) -> Vec<(u16, Subject, ChannelClass)> {
        let mut out: Vec<(u16, Subject, ChannelClass)> = self
            .channel_table
            .iter()
            .map(|(&etag, m)| (etag, m.subject, m.class))
            .collect();
        out.sort_by_key(|&(etag, _, _)| etag);
        out
    }

    /// All nodes currently subscribed to an etag (borrowed — delivery
    /// paths iterate this per event, so no clone).
    pub fn subscribers_of(&self, etag: u16) -> &[NodeId] {
        self.subscribers.get(&etag).map_or(&[], Vec::as_slice)
    }

    /// Enumerate all bound publications: `(etag, publishing node, spec)`,
    /// sorted by etag — the input a configuration linter needs.
    pub fn publications(&self) -> Vec<(u16, NodeId, ChannelSpec)> {
        let mut out: Vec<(u16, NodeId, ChannelSpec)> = Vec::new();
        for ns in &self.nodes {
            for p in ns.publishers.values() {
                if let Some(etag) = p.etag {
                    out.push((etag, ns.id, p.spec));
                }
            }
        }
        out.sort_by_key(|&(etag, node, _)| (etag, node.0));
        out
    }

    /// Peak SRT queue length observed on a node.
    pub fn srt_peak_queue(&self, node: NodeId) -> usize {
        self.nodes[node.index()].srt.peak_queue()
    }

    /// Current SRT queue length on a node.
    pub fn srt_queue_len(&self, node: NodeId) -> usize {
        self.nodes[node.index()].srt.queue.len()
    }

    // ------------------------------------------------------------------
    // Time helpers
    // ------------------------------------------------------------------

    /// A node's current estimate of global time.
    pub(crate) fn global_now(&self, node: NodeId, true_now: Time) -> Time {
        self.nodes[node.index()].clock.read(true_now)
    }

    /// The true instant at which `node` acts for global instant `g`
    /// (clamped so it is never in the past).
    pub(crate) fn true_at(&self, node: NodeId, g: Time, true_now: Time) -> Time {
        self.nodes[node.index()]
            .clock
            .true_time_when_reads(g)
            .max(true_now)
    }

    // ------------------------------------------------------------------
    // Channel API (called through NetApi)
    // ------------------------------------------------------------------

    pub(crate) fn announce(
        &mut self,
        ctx: &mut Ctx<NetEvent>,
        node: NodeId,
        subject: Subject,
        spec: ChannelSpec,
        exception: Option<ExcHandler>,
    ) -> Result<(), ChannelError> {
        if self.nodes[node.index()]
            .publishers
            .contains_key(&subject.uid())
        {
            return Err(ChannelError::AlreadyAnnounced(subject));
        }
        match &spec {
            ChannelSpec::Hrt(_) => {
                if self.calendar.is_some() {
                    return Err(ChannelError::CalendarState(
                        "HRT channels must be announced before the calendar is installed",
                    ));
                }
            }
            ChannelSpec::Nrt(n) => validate_nrt_priority(n)?,
            ChannelSpec::Srt(_) => {}
        }
        // Cross-publisher consistency: a subject has at most one channel
        // class.
        if let Some(etag) = self.registry.etag_of(subject) {
            if let Some(meta) = self.channel_table.get(&etag) {
                if meta.class != spec.class() {
                    return Err(ChannelError::SpecMismatch(subject));
                }
            }
        }
        self.nodes[node.index()]
            .publishers
            .insert(subject.uid(), PublisherState::new(subject, spec, exception));
        self.bind(ctx, node, subject)
    }

    pub(crate) fn subscribe(
        &mut self,
        ctx: &mut Ctx<NetEvent>,
        node: NodeId,
        subject: Subject,
        spec: SubscribeSpec,
        notify: Option<NotifyHandler>,
        exception: Option<ExcHandler>,
    ) -> Result<EventQueue, ChannelError> {
        if self.nodes[node.index()]
            .subscriptions
            .contains_key(&subject.uid())
        {
            return Err(ChannelError::AlreadySubscribed(subject));
        }
        let sub = SubscriptionState::new(subject, spec, notify, exception);
        let queue = sub.queue.clone();
        self.nodes[node.index()]
            .subscriptions
            .insert(subject.uid(), sub);
        self.bind(ctx, node, subject)?;
        Ok(queue)
    }

    pub(crate) fn cancel_subscription(
        &mut self,
        node: NodeId,
        subject: Subject,
    ) -> Result<(), ChannelError> {
        let sub = self.nodes[node.index()]
            .subscriptions
            .remove(&subject.uid())
            .ok_or(ChannelError::NotSubscribed(subject))?;
        if let Some(etag) = sub.etag {
            // Release the hardware filter and the dissemination entry —
            // a strictly local operation (§2.2.1).
            self.bus
                .controller_mut(node)
                .remove_filters(|f| *f == AcceptanceFilter::for_etag(etag));
            if let Some(list) = self.subscribers.get_mut(&etag) {
                list.retain(|&n| n != node);
            }
        }
        Ok(())
    }

    pub(crate) fn cancel_publication(
        &mut self,
        node: NodeId,
        subject: Subject,
    ) -> Result<(), ChannelError> {
        let pub_state = self.nodes[node.index()]
            .publishers
            .get(&subject.uid())
            .ok_or(ChannelError::NotAnnounced(subject))?;
        if matches!(pub_state.spec, ChannelSpec::Hrt(_)) && self.calendar.is_some() {
            return Err(ChannelError::CalendarState(
                "HRT publications cannot be cancelled while the calendar is active",
            ));
        }
        self.nodes[node.index()].publishers.remove(&subject.uid());
        Ok(())
    }

    pub(crate) fn publish(
        &mut self,
        ctx: &mut Ctx<NetEvent>,
        node: NodeId,
        subject: Subject,
        mut event: Event,
    ) -> Result<(), ChannelError> {
        let n = node.index();
        let now_true = ctx.now();
        let now_global = self.global_now(node, now_true);
        let pub_state = self.nodes[n]
            .publishers
            .get_mut(&subject.uid())
            .ok_or(ChannelError::NotAnnounced(subject))?;
        event.attributes.origin = Some(node);
        if event.attributes.timestamp.is_none() {
            event.attributes.timestamp = Some(now_global);
        }
        let Some(etag) = pub_state.etag else {
            // Binding still in flight: queue the publication.
            pub_state.pending_publishes.push_back(event);
            return Ok(());
        };
        let spec = pub_state.spec;
        match spec {
            ChannelSpec::Hrt(h) => {
                if event.content.len() > usize::from(h.dlc) {
                    return Err(ChannelError::PayloadTooLong {
                        len: event.content.len(),
                        max: usize::from(h.dlc),
                    });
                }
                if self.calendar.is_none() {
                    return Err(ChannelError::CalendarState(
                        "publish on an HRT channel requires an installed calendar",
                    ));
                }
                self.stats.channel_mut(etag).published += 1;
                let pub_state = self.nodes[n]
                    .publishers
                    .get_mut(&subject.uid())
                    .expect("exists");
                pub_state.staged = Some(event);
                // If the current slot just went empty and this publish
                // missed it, tell the application (§2.2.1 awareness).
                if let Some(&(ready, deadline)) = self.empty_slots.get(&(node.0, etag)) {
                    if now_true > ready && now_true <= deadline {
                        self.empty_slots.remove(&(node.0, etag));
                        let exc = ChannelException::NotReady {
                            subject,
                            slot_ready_at: ready,
                        };
                        self.stats.exceptions += 1;
                        self.nodes[n]
                            .publishers
                            .get_mut(&subject.uid())
                            .expect("exists")
                            .raise(&exc);
                    }
                }
                Ok(())
            }
            ChannelSpec::Srt(s) => {
                if event.content.len() > MAX_INLINE_CONTENT {
                    return Err(ChannelError::PayloadTooLong {
                        len: event.content.len(),
                        max: MAX_INLINE_CONTENT,
                    });
                }
                self.stats.channel_mut(etag).published += 1;
                let deadline = event
                    .attributes
                    .deadline
                    .unwrap_or(now_global + s.default_deadline);
                let expiration = event
                    .attributes
                    .expiration
                    .or_else(|| s.default_expiration.map(|d| now_global + d));
                let srt = &mut self.nodes[n].srt;
                let seq = srt.next_seq;
                srt.next_seq += 1;
                srt.queue.push(SrtMsg {
                    seq,
                    etag,
                    subject,
                    event,
                    deadline,
                    expiration,
                    missed: false,
                    published_at: now_true,
                });
                // Deadline and expiration supervision.
                let t_deadline = self.true_at(node, deadline, now_true);
                ctx.at(t_deadline, NetEvent::SrtDeadline { node, seq });
                if let Some(exp) = expiration {
                    let t_exp = self.true_at(node, exp, now_true);
                    ctx.at(t_exp, NetEvent::SrtExpire { node, seq });
                }
                self.srt_reconsider(ctx, node);
                Ok(())
            }
            ChannelSpec::Nrt(nrt) => {
                let payloads = if nrt.fragmented {
                    crate::frag::try_fragment(&event.content).map_err(|_| {
                        ChannelError::PayloadTooLong {
                            len: event.content.len(),
                            max: crate::frag::MAX_MESSAGE_LEN,
                        }
                    })?
                } else {
                    if event.content.len() > MAX_INLINE_CONTENT {
                        return Err(ChannelError::PayloadTooLong {
                            len: event.content.len(),
                            max: MAX_INLINE_CONTENT,
                        });
                    }
                    vec![event.content.clone()]
                };
                self.stats.channel_mut(etag).published += 1;
                let (frags, bytes) = (payloads.len(), event.content.len());
                let transfer = NrtTransfer {
                    etag,
                    subject,
                    payloads,
                    next: 0,
                    priority: nrt.priority,
                    handle: None,
                    published_at: now_true,
                };
                self.nodes[n].nrt.queue.push_back(transfer);
                if self.trace.is_enabled() {
                    let src = self.tec_src(node, Tec::Nrt);
                    self.trace.emit_fields(
                        now_true,
                        src,
                        "nrt_enqueue",
                        &[
                            ("etag", u64::from(etag)),
                            ("node", u64::from(node.0)),
                            ("frags", frags as u64),
                            ("bytes", bytes as u64),
                            ("fragmented", u64::from(nrt.fragmented)),
                        ],
                    );
                }
                self.nrt_dispatch(ctx, node);
                Ok(())
            }
        }
    }

    // ------------------------------------------------------------------
    // Binding
    // ------------------------------------------------------------------

    fn bind(
        &mut self,
        ctx: &mut Ctx<NetEvent>,
        node: NodeId,
        subject: Subject,
    ) -> Result<(), ChannelError> {
        if !self.config.dynamic_binding || node == self.config.binding_agent {
            // Static binding (or the agent binding its own subjects):
            // assign immediately.
            let etag = self
                .registry
                .bind(subject)
                .map_err(|_| ChannelError::EtagsExhausted)?;
            self.complete_binding(ctx, node, subject, etag);
            return Ok(());
        }
        // Dynamic: enqueue a BIND_REQUEST; one outstanding at a time.
        let node_state = &mut self.nodes[node.index()];
        let seq = node_state.bind_seq;
        node_state.bind_seq = node_state.bind_seq.wrapping_add(1);
        node_state
            .bind_pending
            .push_back(crate::node::PendingBind { seq, subject });
        if node_state.bind_pending.len() == 1 {
            self.send_bind_request(ctx, node);
        }
        Ok(())
    }

    fn send_bind_request(&mut self, ctx: &mut Ctx<NetEvent>, node: NodeId) {
        let Some(pending) = self.nodes[node.index()].bind_pending.front().copied() else {
            return;
        };
        let req = BindRequest::new(pending.seq, pending.subject);
        let frame = Frame::new(
            CanId::new(PRIO_NRT_MIN, node.0, ETAG_BIND_REQUEST),
            &req.encode(),
        );
        let mut sched = MapScheduler::new(ctx, wrap_can);
        self.bus.submit(
            &mut sched,
            node,
            TxRequest {
                frame,
                single_shot: false,
                tag: pack_tag(TagKind::Bind, ETAG_BIND_REQUEST, u32::from(pending.seq)),
            },
        );
    }

    fn complete_binding(
        &mut self,
        ctx: &mut Ctx<NetEvent>,
        node: NodeId,
        subject: Subject,
        etag: u16,
    ) {
        let n = node.index();
        let mut flush: VecDeque<Event> = VecDeque::new();
        if let Some(p) = self.nodes[n].publishers.get_mut(&subject.uid()) {
            p.etag = Some(etag);
            flush = std::mem::take(&mut p.pending_publishes);
            let (class, sporadic, fragmented) = match p.spec {
                ChannelSpec::Hrt(h) => (ChannelClass::Hrt, h.sporadic, false),
                ChannelSpec::Srt(_) => (ChannelClass::Srt, false, false),
                ChannelSpec::Nrt(nr) => (ChannelClass::Nrt, false, nr.fragmented),
            };
            let meta = ChannelMeta {
                subject,
                class,
                sporadic,
                fragmented,
            };
            let entry = self.channel_table.entry(etag).or_insert(meta);
            if entry.class != meta.class {
                let exc = ChannelException::Fault {
                    subject,
                    reason: "channel class conflicts with an existing publisher".into(),
                };
                self.stats.exceptions += 1;
                self.nodes[n]
                    .publishers
                    .get_mut(&subject.uid())
                    .expect("exists")
                    .raise(&exc);
            }
        }
        if let Some(s) = self.nodes[n].subscriptions.get_mut(&subject.uid()) {
            s.etag = Some(etag);
            // Dynamic binding delegates the subject filtering to the
            // controller hardware (§2.1).
            self.bus
                .controller_mut(node)
                .add_filter(AcceptanceFilter::for_etag(etag));
            let subs = self.subscribers.entry(etag).or_default();
            if !subs.contains(&node) {
                subs.push(node);
            }
        }
        self.stats.channels.entry(etag).or_default();
        for event in flush {
            // Re-enter publish now that the etag is known; errors
            // surface as exceptions because the original call returned
            // long ago.
            if let Err(e) = self.publish(ctx, node, subject, event) {
                let exc = ChannelException::Fault {
                    subject,
                    reason: format!("deferred publish failed: {e}"),
                };
                self.stats.exceptions += 1;
                if let Some(p) = self.nodes[n].publishers.get_mut(&subject.uid()) {
                    p.raise(&exc);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Calendar / HRT
    // ------------------------------------------------------------------

    pub(crate) fn install_calendar(
        &mut self,
        ctx: &mut Ctx<NetEvent>,
    ) -> Result<(), CalendarError> {
        if self.calendar.is_some() {
            return Err(CalendarError::AlreadyInstalled);
        }
        let mut requests = Vec::new();
        for node in &self.nodes {
            for p in node.publishers.values() {
                if let ChannelSpec::Hrt(h) = p.spec {
                    let etag = p.etag.ok_or(CalendarError::Unbound(p.subject))?;
                    requests.push(SlotRequest {
                        etag,
                        publisher: node.id,
                        dlc: h.dlc,
                        omission_degree: h.omission_degree,
                        period: h.period,
                    });
                }
            }
        }
        let plan = CalendarPlan::plan(
            self.config.round,
            &requests,
            self.config.bus.timing,
            self.config.gap,
        )
        .map_err(CalendarError::Admission)?;
        self.calendar_start = ctx.now() + self.config.calendar_start_delay;
        ctx.at(self.calendar_start, NetEvent::RoundStart { round: 0 });
        self.calendar = Some(plan);
        Ok(())
    }

    fn on_round_start(&mut self, ctx: &mut Ctx<NetEvent>, round: u64) {
        let now = ctx.now();
        let plan = self.calendar.as_ref().expect("round without calendar");
        let base = self.calendar_start + plan.round * round;
        let mut to_schedule: Vec<(Time, NetEvent)> = Vec::new();
        for (idx, slot) in plan.slots.iter().enumerate() {
            let ready_g = base + slot.start;
            let lst_g = base + slot.lst();
            let deadline_g = base + slot.deadline();
            let publisher = slot.publisher;
            to_schedule.push((
                self.true_at(publisher, ready_g, now),
                NetEvent::SlotReady { round, slot: idx },
            ));
            to_schedule.push((
                self.true_at(publisher, lst_g, now),
                NetEvent::SlotLst { round, slot: idx },
            ));
            // Publisher-side cleanup at the deadline.
            to_schedule.push((
                self.true_at(publisher, deadline_g, now),
                NetEvent::SlotDeliver {
                    round,
                    slot: idx,
                    node: publisher,
                },
            ));
            // Subscriber-side delivery at the deadline.
            if let Some(subs) = self.subscribers.get(&slot.etag) {
                for &sub_node in subs {
                    if sub_node != publisher {
                        to_schedule.push((
                            self.true_at(sub_node, deadline_g, now),
                            NetEvent::SlotDeliver {
                                round,
                                slot: idx,
                                node: sub_node,
                            },
                        ));
                    }
                }
            }
        }
        let next_round_at = base + plan.round;
        for (t, ev) in to_schedule {
            ctx.at(t, ev);
        }
        ctx.at(next_round_at, NetEvent::RoundStart { round: round + 1 });
    }

    fn slot_info(&self, slot: usize) -> (u16, NodeId, bool) {
        let plan = self.calendar.as_ref().expect("calendar installed");
        let s = &plan.slots[slot];
        let sporadic = self
            .channel_table
            .get(&s.etag)
            .map(|m| m.sporadic)
            .unwrap_or(false);
        (s.etag, s.publisher, sporadic)
    }

    fn on_slot_ready(&mut self, ctx: &mut Ctx<NetEvent>, round: u64, slot: usize) {
        let now = ctx.now();
        let (etag, publisher, _) = self.slot_info(slot);
        let plan = self.calendar.as_ref().expect("calendar installed");
        let s = &plan.slots[slot];
        let base = self.calendar_start + plan.round * round;
        let lst_true = self.true_at(publisher, base + s.lst(), now);
        let deadline_true = self.true_at(publisher, base + s.deadline(), now);
        let n = publisher.index();
        let Some(p) = self.nodes[n].publisher_by_etag(etag) else {
            return; // publication cancelled
        };
        if let Some(event) = p.staged.take() {
            let publish_time = event
                .attributes
                .timestamp
                .map(|_| now) // latency measured from staging consumption
                .unwrap_or(now);
            p.active = Some(ActiveSlot {
                round,
                slot_idx: slot,
                event,
                handle: None,
                submitted: false,
                succeeded: false,
                middleware_retx: 0,
                lst_true,
                deadline_true,
                first_completion: None,
            });
            self.hrt_publish_times
                .insert((etag, round, slot), publish_time);
            self.empty_slots.remove(&(publisher.0, etag));
        } else {
            // Slot goes unused: the reservation is simply reclaimed by
            // lower-priority traffic (nothing is submitted).
            self.empty_slots
                .insert((publisher.0, etag), (now, deadline_true));
        }
        if self.trace.is_enabled() {
            let src = self.tec_src(publisher, Tec::Hrt);
            self.trace.emit_fields(
                now,
                src,
                "slot_ready",
                &[
                    ("etag", u64::from(etag)),
                    ("round", round),
                    ("slot", slot as u64),
                    ("node", u64::from(publisher.0)),
                ],
            );
        }
    }

    fn on_slot_lst(&mut self, ctx: &mut Ctx<NetEvent>, round: u64, slot: usize) {
        let (etag, publisher, _) = self.slot_info(slot);
        let n = publisher.index();
        let Some(p) = self.nodes[n].publisher_by_etag(etag) else {
            return;
        };
        let Some(active) = p.active.as_mut() else {
            return; // empty slot
        };
        if active.round != round || active.slot_idx != slot || active.submitted {
            return;
        }
        active.submitted = true;
        let frame = Frame::new(
            CanId::new(PRIO_HRT, publisher.0, etag),
            &active.event.content,
        );
        let tag = pack_tag(TagKind::Hrt, etag, slot as u32);
        let mut sched = MapScheduler::new(ctx, wrap_can);
        let handle = self.bus.submit(
            &mut sched,
            publisher,
            TxRequest {
                frame,
                single_shot: false,
                tag,
            },
        );
        if let Some(p) = self.nodes[n].publisher_by_etag(etag) {
            if let Some(active) = p.active.as_mut() {
                active.handle = Some(handle);
            }
        }
    }

    fn on_slot_deliver(&mut self, ctx: &mut Ctx<NetEvent>, round: u64, slot: usize, node: NodeId) {
        let now = ctx.now();
        let (etag, publisher, sporadic) = self.slot_info(slot);
        if node == publisher {
            // Publisher-side slot cleanup.
            let n = node.index();
            let Some(p) = self.nodes[n].publisher_by_etag(etag) else {
                return;
            };
            let Some(active) = p.active.take() else {
                self.empty_slots.remove(&(node.0, etag));
                return;
            };
            if active.round != round || active.slot_idx != slot {
                p.active = Some(active); // belongs to a different slot
                return;
            }
            let subject = p.subject;
            if !active.succeeded {
                if let Some(handle) = active.handle {
                    // Withdraw whatever is still pending; the slot is
                    // over.
                    self.bus.abort(node, handle);
                }
                let exc = ChannelException::RedundancyExhausted {
                    subject,
                    attempts: active.middleware_retx + 1,
                };
                self.stats.exceptions += 1;
                self.stats.channel_mut(etag).redundancy_exhausted += 1;
                if let Some(p) = self.nodes[n].publisher_by_etag(etag) {
                    p.raise(&exc);
                }
            }
            return;
        }
        // Subscriber-side delivery at the deadline (jitter removal).
        if !self.config.hrt_deferred_delivery {
            // Immediate-delivery ablation: events were delivered on
            // reception; there is no deferred buffer to check.
            return;
        }
        let publish_time = self.hrt_publish_times.remove(&(etag, round, slot));
        let global_deadline = self.global_now(node, now);
        let n = node.index();
        let Some(sub) = self.nodes[n].subscription_by_etag(etag) else {
            return;
        };
        match sub.hrt_buffer.remove(&(round, slot)) {
            Some((event, wire_t)) => {
                let subject = sub.subject;
                let origin = event.attributes.origin;
                if !sub.spec.passes(origin) {
                    self.stats.channel_mut(etag).filtered += 1;
                    return;
                }
                let delivery = Delivery {
                    event,
                    delivered_at: global_deadline,
                    wire_completed_at: wire_t,
                };
                // Clone only when a notify handler needs a borrow after
                // the queue takes ownership; the common path moves.
                match sub.notify.as_mut() {
                    Some(h) => {
                        sub.queue.push(delivery.clone());
                        h(&delivery);
                    }
                    None => sub.queue.push(delivery),
                }
                let last = sub.last_delivery.replace(now);
                let _ = subject;
                let ch = self.stats.channel_mut(etag);
                ch.delivered += 1;
                if let Some(pt) = publish_time {
                    ch.latency_ns.record(now.saturating_since(pt).as_ns());
                }
                if let Some(last) = last {
                    ch.inter_delivery_ns
                        .record(now.saturating_since(last).as_ns());
                }
                if self.trace.is_enabled() {
                    let src = self.tec_src(node, Tec::Hrt);
                    self.trace.emit_fields(
                        now,
                        src,
                        "hrt_deliver",
                        &[
                            ("etag", u64::from(etag)),
                            ("round", round),
                            ("slot", slot as u64),
                            ("node", u64::from(node.0)),
                            ("wire", wire_t.as_ns()),
                        ],
                    );
                }
            }
            None => {
                if !sporadic {
                    let subject = sub.subject;
                    let exc = ChannelException::MissingEvent {
                        subject,
                        expected_at: global_deadline,
                    };
                    self.stats.exceptions += 1;
                    self.stats.channel_mut(etag).missing_events += 1;
                    if let Some(sub) = self.nodes[n].subscription_by_etag(etag) {
                        sub.raise(&exc);
                    }
                }
            }
        }
    }

    /// Which (round, slot) window an HRT frame with `etag` from
    /// `publisher` completing at global time `g` belongs to.
    fn hrt_window(&self, etag: u16, publisher: u8, g: Time) -> Option<(u64, usize)> {
        let plan = self.calendar.as_ref()?;
        if g < self.calendar_start {
            return None;
        }
        let offset = g.saturating_since(self.calendar_start);
        let round = offset / plan.round;
        let in_round = offset % plan.round;
        for (idx, s) in plan.slots.iter().enumerate() {
            if s.etag == etag
                && s.publisher.0 == publisher
                && in_round >= s.start
                && in_round <= s.deadline()
            {
                return Some((round, idx));
            }
        }
        None
    }

    // ------------------------------------------------------------------
    // SRT
    // ------------------------------------------------------------------

    /// Re-evaluate the EDF head after an enqueue: if a newly published
    /// message is more urgent than the one currently submitted to the
    /// controller, withdraw the submitted frame (possible while it has
    /// not won arbitration) and dispatch the new head.
    fn srt_reconsider(&mut self, ctx: &mut Ctx<NetEvent>, node: NodeId) {
        let n = node.index();
        if let Some((seq, handle, _)) = self.nodes[n].srt.inflight {
            if let Some(h) = self.nodes[n].srt.head_index() {
                if self.nodes[n].srt.queue[h].seq != seq && self.bus.abort(node, handle) {
                    self.nodes[n].srt.inflight = None;
                }
            }
        }
        self.srt_dispatch(ctx, node);
    }

    fn srt_dispatch(&mut self, ctx: &mut Ctx<NetEvent>, node: NodeId) {
        let n = node.index();
        if self.nodes[n].srt.inflight.is_some() {
            return;
        }
        let Some(head) = self.nodes[n].srt.head_index() else {
            return;
        };
        let now_true = ctx.now();
        let now_global = self.global_now(node, now_true);
        let msg = &self.nodes[n].srt.queue[head];
        let prio = priority_for_deadline(msg.deadline, now_global, &self.config.priority_slots);
        let frame = Frame::new(CanId::new(prio, node.0, msg.etag), &msg.event.content);
        let tag = pack_tag(TagKind::Srt, msg.etag, msg.seq);
        let (seq, deadline) = (msg.seq, msg.deadline);
        let mut sched = MapScheduler::new(ctx, wrap_can);
        let handle = self.bus.submit(
            &mut sched,
            node,
            TxRequest {
                frame,
                single_shot: false,
                tag,
            },
        );
        self.nodes[n].srt.inflight = Some((seq, handle, prio));
        if self.config.srt_dynamic_promotion {
            if let Some(t_g) =
                next_promotion_time(deadline, now_global, &self.config.priority_slots)
            {
                let t = self.true_at(node, t_g, now_true);
                ctx.at(t, NetEvent::SrtPromote { node, seq });
            }
        }
    }

    fn on_srt_promote(&mut self, ctx: &mut Ctx<NetEvent>, node: NodeId, seq: u32) {
        let n = node.index();
        let Some((cur_seq, handle, cur_prio)) = self.nodes[n].srt.inflight else {
            return;
        };
        if cur_seq != seq {
            return;
        }
        let Some(idx) = self.nodes[n].srt.find(seq) else {
            return;
        };
        let now_true = ctx.now();
        let now_global = self.global_now(node, now_true);
        let msg = &self.nodes[n].srt.queue[idx];
        let (etag, deadline) = (msg.etag, msg.deadline);
        let new_prio = priority_for_deadline(deadline, now_global, &self.config.priority_slots);
        if new_prio != cur_prio {
            // Rewrite the pending identifier; fails harmlessly if the
            // frame is on the wire right now (it is about to complete).
            if self
                .bus
                .update_id(node, handle, CanId::new(new_prio, node.0, etag))
            {
                self.nodes[n].srt.inflight = Some((seq, handle, new_prio));
            }
        }
        if let Some(t_g) = next_promotion_time(deadline, now_global, &self.config.priority_slots) {
            let t = self.true_at(node, t_g, now_true);
            ctx.at(t, NetEvent::SrtPromote { node, seq });
        }
    }

    fn on_srt_deadline(&mut self, ctx: &mut Ctx<NetEvent>, node: NodeId, seq: u32) {
        let _ = ctx;
        let n = node.index();
        let Some(idx) = self.nodes[n].srt.find(seq) else {
            return; // already transmitted
        };
        let msg = &mut self.nodes[n].srt.queue[idx];
        if msg.missed {
            return;
        }
        msg.missed = true;
        let (etag, subject, deadline) = (msg.etag, msg.subject, msg.deadline);
        let exc = ChannelException::DeadlineMissed { subject, deadline };
        self.stats.exceptions += 1;
        self.stats.channel_mut(etag).deadline_misses += 1;
        if let Some(p) = self.nodes[n].publishers.get_mut(&subject.uid()) {
            p.raise(&exc);
        }
    }

    fn on_srt_expire(&mut self, ctx: &mut Ctx<NetEvent>, node: NodeId, seq: u32) {
        let n = node.index();
        let Some(idx) = self.nodes[n].srt.find(seq) else {
            return; // already transmitted
        };
        if let Some((cur_seq, handle, _)) = self.nodes[n].srt.inflight {
            if cur_seq == seq {
                if !self.bus.abort(node, handle) {
                    // On the wire right now: let it complete.
                    return;
                }
                self.nodes[n].srt.inflight = None;
            }
        }
        let msg = self.nodes[n].srt.queue.remove(idx);
        if self.trace.is_enabled() {
            let src = self.tec_src(node, Tec::Srt);
            self.trace.emit_fields(
                ctx.now(),
                src,
                "srt_expire",
                &[
                    ("etag", u64::from(msg.etag)),
                    ("seq", u64::from(seq)),
                    ("node", u64::from(node.0)),
                    ("tag", pack_tag(TagKind::Srt, msg.etag, seq)),
                ],
            );
        }
        let exc = ChannelException::Expired {
            subject: msg.subject,
            expiration: msg.expiration.unwrap_or(msg.deadline),
        };
        self.stats.exceptions += 1;
        self.stats.channel_mut(msg.etag).expired_drops += 1;
        if let Some(p) = self.nodes[n].publishers.get_mut(&msg.subject.uid()) {
            p.raise(&exc);
        }
        self.srt_dispatch(ctx, node);
    }

    // ------------------------------------------------------------------
    // NRT
    // ------------------------------------------------------------------

    fn nrt_dispatch(&mut self, ctx: &mut Ctx<NetEvent>, node: NodeId) {
        let n = node.index();
        if self.nodes[n]
            .nrt
            .active
            .as_ref()
            .is_some_and(|t| t.handle.is_some())
        {
            return;
        }
        if self.nodes[n].nrt.active.is_none() {
            let Some(next) = self.nodes[n].nrt.queue.pop_front() else {
                return;
            };
            self.nodes[n].nrt.active = Some(next);
        }
        let t = self.nodes[n].nrt.active.as_ref().expect("set above");
        let frame = Frame::new(CanId::new(t.priority, node.0, t.etag), &t.payloads[t.next]);
        let tag = pack_tag(TagKind::Nrt, t.etag, t.next as u32);
        let mut sched = MapScheduler::new(ctx, wrap_can);
        let handle = self.bus.submit(
            &mut sched,
            node,
            TxRequest {
                frame,
                single_shot: false,
                tag,
            },
        );
        self.nodes[n].nrt.active.as_mut().expect("set above").handle = Some(handle);
    }

    // ------------------------------------------------------------------
    // Clock synchronization (in-network service)
    // ------------------------------------------------------------------

    fn on_sync_tick(&mut self, ctx: &mut Ctx<NetEvent>) {
        let Some(sync) = self.config.clock_sync else {
            return;
        };
        let frame = Frame::new(
            CanId::new(sync.priority, sync.master.0, ETAG_SYNC),
            &[0u8; 8],
        );
        let mut sched = MapScheduler::new(ctx, wrap_can);
        self.bus.submit(
            &mut sched,
            sync.master,
            TxRequest {
                frame,
                single_shot: false,
                tag: pack_tag(TagKind::Sync, ETAG_SYNC, 0),
            },
        );
        // Next tick by the master's own clock.
        let now = ctx.now();
        let next_global = self.global_now(sync.master, now) + sync.period;
        let t = self.true_at(sync.master, next_global, now + Duration::from_ns(1));
        ctx.at(t, NetEvent::SyncTick);
    }

    /// Largest disagreement between any two node clocks right now (ns).
    pub fn clock_spread(&self, true_now: Time) -> u64 {
        let readings: Vec<u64> = self
            .nodes
            .iter()
            .map(|n| n.clock.read(true_now).as_ns())
            .collect();
        match (readings.iter().max(), readings.iter().min()) {
            (Some(max), Some(min)) => max - min,
            _ => 0,
        }
    }

    // ------------------------------------------------------------------
    // Bus notification routing
    // ------------------------------------------------------------------

    fn on_notification(&mut self, ctx: &mut Ctx<NetEvent>, note: Notification) {
        match note {
            Notification::Rx {
                node,
                frame,
                completed_at,
            } => self.on_rx(ctx, node, frame, completed_at),
            Notification::TxCompleted {
                node,
                tag,
                frame,
                all_received,
                started,
                ..
            } => self.on_tx_completed(ctx, node, tag, frame, all_received, started),
            Notification::TxError { .. } => {
                // Corruption: the controller retransmits automatically.
            }
            Notification::TxFailed { node, tag, .. } => {
                // Single-shot loss (only baselines use single-shot).
                let _ = (node, tag);
            }
            Notification::ErrorStateChanged { node, state } => {
                // Fault confinement is below the middleware; surface it
                // to every channel endpoint of the affected node so
                // applications learn about degraded connectivity.
                self.stats.exceptions += 1;
                let n = node.index();
                let subjects: Vec<Subject> = self.nodes[n]
                    .publishers
                    .values()
                    .map(|p| p.subject)
                    .collect();
                for subject in subjects {
                    let exc = ChannelException::Fault {
                        subject,
                        reason: format!("controller fault-confinement state: {state:?}"),
                    };
                    if let Some(p) = self.nodes[n].publishers.get_mut(&subject.uid()) {
                        p.raise(&exc);
                    }
                }
            }
            Notification::DuplicateId { id, nodes } => {
                // TxNode uniqueness violated — a configuration bug the
                // static linter catches ahead of time. Surface it as an
                // exception on every implicated node instead of tearing
                // the whole simulation down.
                self.stats.duplicate_ids += 1;
                self.stats.exceptions += 1;
                for node in nodes {
                    let n = node.index();
                    if n >= self.nodes.len() {
                        continue;
                    }
                    let subjects: Vec<Subject> = self.nodes[n]
                        .publishers
                        .values()
                        .filter(|p| p.etag == Some(id.etag()))
                        .map(|p| p.subject)
                        .collect();
                    for subject in subjects {
                        let exc = ChannelException::Fault {
                            subject,
                            reason: format!(
                                "identifier {id} used by multiple nodes: TxNode \
                                 uniqueness violated"
                            ),
                        };
                        if let Some(p) = self.nodes[n].publishers.get_mut(&subject.uid()) {
                            p.raise(&exc);
                        }
                    }
                }
            }
        }
    }

    fn on_tx_completed(
        &mut self,
        ctx: &mut Ctx<NetEvent>,
        node: NodeId,
        tag: u64,
        frame: Frame,
        all_received: bool,
        started: Time,
    ) {
        let now = ctx.now();
        let Some((kind, etag, seq)) = unpack_tag(tag) else {
            self.stats.unknown_frames += 1;
            return;
        };
        let n = node.index();
        match kind {
            TagKind::Hrt => {
                let Some(p) = self.nodes[n].publisher_by_etag(etag) else {
                    return;
                };
                let Some(active) = p.active.as_mut() else {
                    return;
                };
                let dlc = match p.spec {
                    ChannelSpec::Hrt(h) => h.dlc,
                    _ => 8,
                };
                let first_attempt =
                    active.first_completion.is_none() && active.middleware_retx == 0;
                let lst_true = active.lst_true;
                let deadline_true = active.deadline_true;
                let subject = p.subject;
                let published_at = self
                    .hrt_publish_times
                    .get(&(etag, active.round, active.slot_idx))
                    .copied();
                if first_attempt {
                    self.stats
                        .hrt_lst_blocking_ns
                        .record(started.saturating_since(lst_true).as_ns());
                }
                self.stats
                    .hrt_wire_offset_ns
                    .record(now.saturating_since(lst_true).as_ns());
                let ch = self.stats.channel_mut(etag);
                ch.wire_transmissions += 1;
                let p = self.nodes[n].publisher_by_etag(etag).expect("exists");
                let active = p.active.as_mut().expect("exists");
                if all_received {
                    active.succeeded = true;
                    active.handle = None;
                    if active.first_completion.is_none() {
                        active.first_completion = Some(now);
                        if let Some(pt) = published_at {
                            self.stats
                                .channel_mut(etag)
                                .wire_latency_ns
                                .record(now.saturating_since(pt).as_ns());
                        }
                    }
                    // Early stop: no further redundant transmissions —
                    // the remaining slot time is reclaimed by SRT/NRT
                    // traffic through plain priority arbitration.
                } else {
                    // Spend a redundant transmission if the slot still
                    // has room for a worst-case attempt.
                    let k = match p.spec {
                        ChannelSpec::Hrt(h) => h.omission_degree,
                        _ => 0,
                    };
                    let c = wcct_single(dlc, self.config.bus.timing);
                    if active.middleware_retx < k && now + c <= deadline_true {
                        active.middleware_retx += 1;
                        let content = active.event.content.clone();
                        let retx_frame = Frame::new(CanId::new(PRIO_HRT, node.0, etag), &content);
                        let mut sched = MapScheduler::new(ctx, wrap_can);
                        let handle = self.bus.submit(
                            &mut sched,
                            node,
                            TxRequest {
                                frame: retx_frame,
                                single_shot: false,
                                tag,
                            },
                        );
                        let p = self.nodes[n].publisher_by_etag(etag).expect("exists");
                        if let Some(a) = p.active.as_mut() {
                            a.handle = Some(handle);
                        }
                        self.stats.channel_mut(etag).redundant_transmissions += 1;
                    } else {
                        // Give up; the publisher-side cleanup at the
                        // deadline raises RedundancyExhausted.
                        let p = self.nodes[n].publisher_by_etag(etag).expect("exists");
                        if let Some(a) = p.active.as_mut() {
                            a.handle = None;
                        }
                        let _ = subject;
                    }
                }
            }
            TagKind::Srt => {
                if let Some(msg) = self.nodes[n].srt.take(seq) {
                    let ch = self.stats.channel_mut(etag);
                    ch.wire_transmissions += 1;
                    ch.wire_latency_ns
                        .record(now.saturating_since(msg.published_at).as_ns());
                }
                if self.nodes[n].srt.inflight.is_some_and(|(s, _, _)| s == seq) {
                    self.nodes[n].srt.inflight = None;
                }
                self.srt_dispatch(ctx, node);
            }
            TagKind::Nrt => {
                let done = {
                    let Some(t) = self.nodes[n].nrt.active.as_mut() else {
                        return;
                    };
                    t.handle = None;
                    t.next += 1;
                    t.next >= t.payloads.len()
                };
                self.stats.channel_mut(etag).wire_transmissions += 1;
                if done {
                    let t = self.nodes[n].nrt.active.take().expect("checked");
                    self.stats
                        .channel_mut(etag)
                        .wire_latency_ns
                        .record(now.saturating_since(t.published_at).as_ns());
                }
                self.nrt_dispatch(ctx, node);
            }
            TagKind::Bind => {
                // Request or reply left the wire; nothing to do — the
                // requester acts on the reply's Rx.
                let _ = frame;
            }
            TagKind::Sync => {
                // The master latches its clock at the SYNC completion
                // and distributes that timestamp in a FOLLOW-UP (the
                // completion instant is the event all nodes observed
                // simultaneously).
                let Some(sync) = self.config.clock_sync else {
                    return;
                };
                if node != sync.master || etag != ETAG_SYNC {
                    return;
                }
                let stamp = self.global_now(sync.master, now);
                let follow = Frame::new(
                    CanId::new(sync.priority, sync.master.0, ETAG_FOLLOW_UP),
                    &stamp.as_ns().to_le_bytes(),
                );
                let mut sched = MapScheduler::new(ctx, wrap_can);
                self.bus.submit(
                    &mut sched,
                    sync.master,
                    TxRequest {
                        frame: follow,
                        single_shot: false,
                        tag: pack_tag(TagKind::Sync, ETAG_FOLLOW_UP, 0),
                    },
                );
            }
        }
    }

    fn on_rx(&mut self, ctx: &mut Ctx<NetEvent>, node: NodeId, frame: Frame, completed_at: Time) {
        let etag = frame.id.etag();
        // Clock-synchronization frames.
        if etag == ETAG_SYNC {
            let latch = self.global_now(node, completed_at);
            self.nodes[node.index()].sync_latch = Some(latch);
            return;
        }
        if etag == ETAG_FOLLOW_UP {
            if frame.payload().len() == 8 {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(frame.payload());
                let master_time = u64::from_le_bytes(bytes) as f64;
                if let Some(latch) = self.nodes[node.index()].sync_latch.take() {
                    let delta = master_time - latch.as_ns() as f64;
                    self.nodes[node.index()].clock.slew(delta);
                }
            }
            return;
        }
        // Binding protocol frames.
        if etag == ETAG_BIND_REQUEST {
            if node == self.config.binding_agent {
                self.agent_handle_request(ctx, frame);
            }
            return;
        }
        if etag == ETAG_BIND_REPLY {
            if let Some(reply) = BindReply::decode(frame.payload()) {
                if reply.requester == node.0 {
                    self.on_bind_reply(ctx, node, reply);
                }
            }
            return;
        }
        // Channel traffic.
        let meta = self.channel_table.get(&etag).copied();
        let origin = NodeId(frame.id.txnode());
        let n = node.index();
        let Some(_) = self.nodes[n].subscription_by_etag(etag) else {
            return; // e.g. the binding agent in AcceptAll mode
        };
        match meta.map(|m| m.class) {
            Some(ChannelClass::Hrt) if self.config.hrt_deferred_delivery => {
                let g = self.global_now(node, completed_at);
                if let Some((round, slot)) = self.hrt_window(etag, origin.0, g) {
                    let sub = self.nodes[n].subscription_by_etag(etag).expect("exists");
                    let event = Event {
                        subject: sub.subject,
                        attributes: crate::event::EventAttributes {
                            origin: Some(origin),
                            timestamp: Some(g),
                            ..Default::default()
                        },
                        content: frame.payload().to_vec(),
                    };
                    sub.hrt_buffer.insert((round, slot), (event, completed_at));
                } else {
                    // Outside any slot window (overrun past the fault
                    // assumption): fall back to immediate delivery.
                    self.deliver_immediate(node, etag, origin, frame.payload(), completed_at, None);
                }
            }
            Some(ChannelClass::Nrt) if meta.is_some_and(|m| m.fragmented) => {
                match self.nodes[n]
                    .reassembler
                    .push((origin.0, etag), frame.payload())
                {
                    Ok(Some(data)) => {
                        if self.trace.is_enabled() {
                            let src = self.tec_src(node, Tec::Nrt);
                            self.trace.emit_fields(
                                completed_at,
                                src,
                                "nrt_complete",
                                &[
                                    ("etag", u64::from(etag)),
                                    ("node", u64::from(node.0)),
                                    ("origin", u64::from(origin.0)),
                                    ("bytes", data.len() as u64),
                                ],
                            );
                        }
                        let publish_time = self.nrt_publish_time(origin, etag);
                        self.deliver_immediate(
                            node,
                            etag,
                            origin,
                            &data,
                            completed_at,
                            publish_time,
                        );
                    }
                    Ok(None) => {}
                    Err(e) => {
                        if self.trace.is_enabled() {
                            let src = self.tec_src(node, Tec::Nrt);
                            self.trace.emit_fields(
                                completed_at,
                                src,
                                "frag_error",
                                &[
                                    ("etag", u64::from(etag)),
                                    ("node", u64::from(node.0)),
                                    ("origin", u64::from(origin.0)),
                                ],
                            );
                        }
                        let sub = self.nodes[n].subscription_by_etag(etag).expect("exists");
                        let subject = sub.subject;
                        let exc = ChannelException::Fault {
                            subject,
                            reason: format!("fragment reassembly failed: {e:?}"),
                        };
                        self.stats.exceptions += 1;
                        if let Some(sub) = self.nodes[n].subscription_by_etag(etag) {
                            sub.raise(&exc);
                        }
                    }
                }
            }
            _ => {
                // SRT, non-fragmented NRT, HRT in the immediate-delivery
                // ablation, or unknown class: deliver now.
                let publish_time = self.srt_publish_time(origin, etag);
                self.deliver_immediate(
                    node,
                    etag,
                    origin,
                    frame.payload(),
                    completed_at,
                    publish_time,
                );
            }
        }
    }

    /// Publish instant of the SRT message from `origin` currently on
    /// the wire for `etag` (omniscient-stats helper).
    fn srt_publish_time(&self, origin: NodeId, etag: u16) -> Option<Time> {
        let sender = self.nodes.get(origin.index())?;
        let (seq, _, _) = sender.srt.inflight?;
        let idx = sender.srt.find(seq)?;
        let msg = &sender.srt.queue[idx];
        (msg.etag == etag).then_some(msg.published_at)
    }

    fn nrt_publish_time(&self, origin: NodeId, etag: u16) -> Option<Time> {
        let sender = self.nodes.get(origin.index())?;
        let t = sender.nrt.active.as_ref()?;
        (t.etag == etag).then_some(t.published_at)
    }

    fn deliver_immediate(
        &mut self,
        node: NodeId,
        etag: u16,
        origin: NodeId,
        content: &[u8],
        completed_at: Time,
        publish_time: Option<Time>,
    ) {
        let g = self.global_now(node, completed_at);
        let n = node.index();
        let Some(sub) = self.nodes[n].subscription_by_etag(etag) else {
            return;
        };
        if !sub.spec.passes(Some(origin)) {
            self.stats.channel_mut(etag).filtered += 1;
            return;
        }
        let event = Event {
            subject: sub.subject,
            attributes: crate::event::EventAttributes {
                origin: Some(origin),
                timestamp: Some(g),
                ..Default::default()
            },
            content: content.to_vec(),
        };
        let delivery = Delivery {
            event,
            delivered_at: g,
            wire_completed_at: completed_at,
        };
        // As in slot delivery: move into the queue unless a notify
        // handler still needs to borrow the delivery afterwards.
        match sub.notify.as_mut() {
            Some(h) => {
                sub.queue.push(delivery.clone());
                h(&delivery);
            }
            None => sub.queue.push(delivery),
        }
        let last = sub.last_delivery.replace(completed_at);
        let ch = self.stats.channel_mut(etag);
        ch.delivered += 1;
        if let Some(pt) = publish_time {
            ch.latency_ns
                .record(completed_at.saturating_since(pt).as_ns());
        }
        if let Some(last) = last {
            ch.inter_delivery_ns
                .record(completed_at.saturating_since(last).as_ns());
        }
    }

    fn agent_handle_request(&mut self, ctx: &mut Ctx<NetEvent>, frame: Frame) {
        let Some(req) = BindRequest::decode(frame.payload()) else {
            return;
        };
        let requester = frame.id.txnode();
        let (etag, status) = match self.registry.bind(Subject::new(req.subject48)) {
            Ok(etag) => (etag, BindStatus::Ok),
            Err(_) => (0, BindStatus::Exhausted),
        };
        let reply = BindReply {
            requester,
            seq: req.seq,
            etag,
            status,
        };
        let agent = self.config.binding_agent;
        let reply_frame = Frame::new(
            CanId::new(PRIO_NRT_MIN, agent.0, ETAG_BIND_REPLY),
            &reply.encode(),
        );
        let mut sched = MapScheduler::new(ctx, wrap_can);
        self.bus.submit(
            &mut sched,
            agent,
            TxRequest {
                frame: reply_frame,
                single_shot: false,
                tag: pack_tag(TagKind::Bind, ETAG_BIND_REPLY, u32::from(req.seq)),
            },
        );
    }

    fn on_bind_reply(&mut self, ctx: &mut Ctx<NetEvent>, node: NodeId, reply: BindReply) {
        let n = node.index();
        let Some(head) = self.nodes[n].bind_pending.front().copied() else {
            return;
        };
        if head.seq != reply.seq {
            return;
        }
        self.nodes[n].bind_pending.pop_front();
        if reply.status == BindStatus::Ok {
            self.complete_binding(ctx, node, head.subject, reply.etag);
        } else {
            let exc = ChannelException::Fault {
                subject: head.subject,
                reason: "binding agent exhausted the etag space".into(),
            };
            self.stats.exceptions += 1;
            if let Some(p) = self.nodes[n].publishers.get_mut(&head.subject.uid()) {
                p.raise(&exc);
            }
            if let Some(s) = self.nodes[n].subscriptions.get_mut(&head.subject.uid()) {
                s.raise(&exc);
            }
        }
        if !self.nodes[n].bind_pending.is_empty() {
            self.send_bind_request(ctx, node);
        }
    }
}

impl Model for NetWorld {
    type Event = NetEvent;

    fn handle(&mut self, ctx: &mut Ctx<NetEvent>, ev: NetEvent) {
        match ev {
            NetEvent::Can(can_ev) => {
                let notes = {
                    let mut sched = MapScheduler::new(ctx, wrap_can);
                    self.bus.handle(&mut sched, can_ev)
                };
                for note in notes {
                    self.on_notification(ctx, note);
                }
            }
            NetEvent::RoundStart { round } => self.on_round_start(ctx, round),
            NetEvent::SlotReady { round, slot } => self.on_slot_ready(ctx, round, slot),
            NetEvent::SlotLst { round, slot } => self.on_slot_lst(ctx, round, slot),
            NetEvent::SlotDeliver { round, slot, node } => {
                self.on_slot_deliver(ctx, round, slot, node)
            }
            NetEvent::SrtPromote { node, seq } => self.on_srt_promote(ctx, node, seq),
            NetEvent::SrtDeadline { node, seq } => self.on_srt_deadline(ctx, node, seq),
            NetEvent::SrtExpire { node, seq } => self.on_srt_expire(ctx, node, seq),
            NetEvent::SyncTick => self.on_sync_tick(ctx),
            NetEvent::App(idx) => {
                if let Some(f) = self.one_shots.get_mut(idx).and_then(Option::take) {
                    let mut api = NetApi { world: self, ctx };
                    f(&mut api);
                }
            }
            NetEvent::Recurring(idx) => {
                let mut f = self.recurring[idx].f.take();
                let period = self.recurring[idx].period;
                if let Some(func) = f.as_mut() {
                    let mut api = NetApi { world: self, ctx };
                    func(&mut api);
                }
                self.recurring[idx].f = f;
                ctx.after(period, NetEvent::Recurring(idx));
            }
        }
    }
}

/// Builder for [`Network`].
#[derive(Clone, Debug, Default)]
pub struct NetworkBuilder {
    config: NetworkConfig,
}

impl NetworkBuilder {
    /// Number of nodes on the bus.
    pub fn nodes(mut self, n: usize) -> Self {
        self.config.nodes = n;
        self
    }
    /// Bus bit timing.
    pub fn bus(mut self, bus: BusConfig) -> Self {
        self.config.bus = bus;
        self
    }
    /// Inter-slot gap `ΔG_min`.
    pub fn gap(mut self, gap: Duration) -> Self {
        self.config.gap = gap;
        self
    }
    /// SRT priority-slot configuration.
    pub fn priority_slots(mut self, cfg: PrioritySlotConfig) -> Self {
        self.config.priority_slots = cfg;
        self
    }
    /// Per-node clock parameters.
    pub fn clocks(mut self, clocks: Vec<ClockParams>) -> Self {
        self.config.clocks = Some(clocks);
        self
    }
    /// Enable the in-network clock-synchronization service.
    pub fn clock_sync(mut self, cfg: ClockSyncConfig) -> Self {
        self.config.clock_sync = Some(cfg);
        self
    }
    /// Enable the dynamic binding protocol.
    pub fn dynamic_binding(mut self, on: bool) -> Self {
        self.config.dynamic_binding = on;
        self
    }
    /// Calendar round length.
    pub fn round(mut self, round: Duration) -> Self {
        self.config.round = round;
        self
    }
    /// Fault model for the bus.
    pub fn faults(mut self, model: FaultModel) -> Self {
        self.config.fault_model = model;
        self
    }
    /// Run seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }
    /// Toggle HRT deferred delivery (ablation).
    pub fn hrt_deferred_delivery(mut self, on: bool) -> Self {
        self.config.hrt_deferred_delivery = on;
        self
    }
    /// Toggle SRT dynamic promotion (ablation).
    pub fn srt_dynamic_promotion(mut self, on: bool) -> Self {
        self.config.srt_dynamic_promotion = on;
        self
    }
    /// Override the full configuration.
    pub fn config(mut self, config: NetworkConfig) -> Self {
        self.config = config;
        self
    }
    /// Build the network.
    pub fn build(self) -> Network {
        Network::with_config(self.config)
    }
}

/// The user-facing simulation handle: a [`NetWorld`] plus its engine.
pub struct Network {
    engine: Engine<NetWorld>,
}

impl Network {
    /// Start building a network.
    pub fn builder() -> NetworkBuilder {
        NetworkBuilder::default()
    }

    /// Build with an explicit configuration.
    pub fn with_config(config: NetworkConfig) -> Self {
        let sync_enabled = config.clock_sync.is_some();
        let mut engine = Engine::new(NetWorld::new(config));
        if sync_enabled {
            engine.schedule_at(Time::ZERO, NetEvent::SyncTick);
        }
        Network { engine }
    }

    /// Current simulated (true) time.
    pub fn now(&self) -> Time {
        self.engine.now()
    }

    /// Access the middleware API at the current instant.
    pub fn api(&mut self) -> NetApi<'_> {
        let (world, ctx) = self.engine.split();
        NetApi { world, ctx }
    }

    /// The world model (stats, bus, calendar).
    pub fn world(&self) -> &NetWorld {
        &self.engine.model
    }

    /// Mutable world access (fault-model changes mid-run, etc.).
    pub fn world_mut(&mut self) -> &mut NetWorld {
        &mut self.engine.model
    }

    /// Enable structured tracing; the returned sink collects bus and
    /// slot events (`tx_start`, `tx_end`, `slot_ready`, ...) for
    /// inspection or printing.
    pub fn enable_trace(&mut self) -> TraceSink {
        let sink = TraceSink::enabled();
        self.engine.model.trace = sink.clone();
        self.engine.model.rebuild_trace_srcs();
        self.engine.model.bus.set_trace(sink.clone());
        sink
    }

    /// Network statistics collected so far.
    pub fn stats(&self) -> &NetStats {
        &self.engine.model.stats
    }

    /// Total events dispatched by the underlying engine — the
    /// scheduler-level work metric the benchmark harness uses to hold
    /// serial and parallel topology runs to equal event counts.
    pub fn dispatched(&self) -> u64 {
        self.engine.dispatched()
    }

    /// Run until an absolute simulated time.
    pub fn run_until(&mut self, t: Time) {
        self.engine.run_until(t);
    }

    /// Run for a span of simulated time.
    pub fn run_for(&mut self, d: Duration) {
        self.engine.run_for(d);
    }

    /// Schedule a one-shot application closure at an absolute time.
    pub fn at(&mut self, t: Time, f: impl FnOnce(&mut NetApi<'_>) + 'static) {
        let idx = self.engine.model.one_shots.len();
        self.engine.model.one_shots.push(Some(Box::new(f)));
        self.engine.schedule_at(t, NetEvent::App(idx));
    }

    /// Schedule a one-shot application closure after a delay.
    pub fn after(&mut self, d: Duration, f: impl FnOnce(&mut NetApi<'_>) + 'static) {
        let t = self.engine.now() + d;
        self.at(t, f);
    }

    /// Schedule a recurring application closure with the given period,
    /// first firing after `phase`.
    pub fn every(
        &mut self,
        period: Duration,
        phase: Duration,
        f: impl FnMut(&mut NetApi<'_>) + 'static,
    ) {
        let idx = self.engine.model.recurring.len();
        self.engine.model.recurring.push(RecurringTask {
            period,
            f: Some(Box::new(f)),
        });
        self.engine.schedule_after(phase, NetEvent::Recurring(idx));
    }
}
