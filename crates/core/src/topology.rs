//! N-segment network topologies with per-edge gateway latency, runnable
//! serially or with one OS thread per segment.
//!
//! [`crate::bridge`] is the paper's two-segment architecture in its
//! smallest form; this module generalizes it: a [`Topology`] holds any
//! number of bus segments (each an independent deterministic
//! [`Network`]) joined by store-and-forward gateway routes with a
//! per-route latency. The whole topology can then be executed two
//! ways, with **byte-identical** results:
//!
//! * [`Topology::run_serial`] — all segments advance in lockstep
//!   quanta on the calling thread (the differential oracle, the same
//!   discipline as [`crate::bridge::Bridge::run_until`]);
//! * [`Topology::run_parallel`] — one named OS thread per segment,
//!   synchronized by conservative windows whose width is the minimum
//!   gateway latency (the PDES lookahead); see [`rtec_sim::parallel`].
//!
//! Byte identity is the contract, not an aspiration: both drivers feed
//! the same segment factories through the same
//! [`rtec_sim::parallel::SegmentStep`] stepping discipline, and the
//! differential proptest in `crates/core/tests/parallel_vs_serial.rs`
//! holds their traces, delivery logs, and audit verdicts equal over
//! random topologies, seeds, and fault plans.
//!
//! As in the bridge, relays are republished on SRT channels under the
//! gateway's node identity (HRT guarantees stay segment-local;
//! far-side origin filters can exclude the gateway — §2.2.1's
//! "same network" filter).

use crate::channel::{ChannelSpec, SrtSpec, SubscribeSpec};
use crate::event::{Event, EventQueue, Subject};
use crate::network::{Network, NetworkConfig};
use rtec_can::NodeId;
use rtec_sim::parallel::{
    run_parallel, run_serial_windows, Envelope, ParallelSegment, ParallelStats, RoutingTable,
    SegmentStep, WindowConfig,
};
use rtec_sim::{Duration, Time, TraceEvent};

/// A delivery crossing a segment boundary: the payload type of the
/// topology's [`Envelope`]s.
#[derive(Clone, Debug)]
pub struct Relay {
    /// Subject republished on the target segment.
    pub subject: Subject,
    /// The relayed event. Per-segment timing attributes are stripped
    /// when it is republished (they do not survive the hop).
    pub event: Event,
}

/// Apply one relayed event to a network: strip the per-segment timing
/// attributes and republish under the gateway's identity. Shared by
/// the topology segments and the two-segment [`crate::bridge`].
pub(crate) fn republish(net: &mut Network, gateway: NodeId, relay: Relay) {
    let Relay { subject, mut event } = relay;
    event.attributes.deadline = None;
    event.attributes.expiration = None;
    let mut api = net.api();
    let _ = api.publish(gateway, subject, event);
}

/// A one-shot setup closure run against a segment's network at build
/// time (announce/subscribe/schedule publishers).
type SetupFn = Box<dyn FnOnce(&mut Network) + Send>;
/// A one-shot probe closure run after the horizon; its bytes go into
/// the segment report verbatim (the drivers must agree on them).
type ProbeFn = Box<dyn FnOnce(&mut Network) -> Vec<u8> + Send>;

/// Per-segment definition collected by the [`Topology`] builder.
struct SegmentDef {
    config: NetworkConfig,
    gateway: NodeId,
    setup: Vec<SetupFn>,
    probe: Option<ProbeFn>,
}

/// One gateway route between two segments. `ingress` is the gateway's
/// node identity on the source segment (it subscribes there); `egress`
/// its identity on the target segment (it announces and republishes
/// there). On a multi-hop segment the two directions must use
/// *different* node identities, because CAN controllers never receive
/// their own frames.
#[derive(Clone)]
struct RouteDef {
    subject: Subject,
    from: usize,
    to: usize,
    ingress: NodeId,
    egress: NodeId,
    latency: Duration,
    spec: SrtSpec,
}

/// Result of running one segment to the horizon.
#[derive(Clone, Debug, PartialEq)]
pub struct SegmentReport {
    /// Engine events dispatched on this segment.
    pub dispatched: u64,
    /// The segment's full structured trace.
    pub trace: Vec<TraceEvent>,
    /// Trace records dropped by the ring (0 in a healthy run).
    pub trace_dropped: u64,
    /// Events forwarded per global route index (0 for routes that do
    /// not originate on this segment).
    pub forwarded: Vec<u64>,
    /// Output of the segment's probe closure (empty if none was set).
    pub probe: Vec<u8>,
}

/// Result of running a whole topology.
#[derive(Debug)]
pub struct TopologyReport {
    /// Per-segment reports, in segment index order.
    pub segments: Vec<SegmentReport>,
    /// Thread/barrier accounting — `None` for serial runs.
    pub parallel: Option<ParallelStats>,
}

impl TopologyReport {
    /// Total engine events dispatched across all segments.
    pub fn total_dispatched(&self) -> u64 {
        self.segments.iter().map(|s| s.dispatched).sum()
    }

    /// Events forwarded on a global route.
    pub fn forwarded(&self, route: u32) -> u64 {
        self.segments
            .iter()
            .map(|s| s.forwarded.get(route as usize).copied().unwrap_or(0))
            .sum()
    }

    /// All segment traces merged on one time axis, each event's source
    /// prefixed with `segN.` — the form the conformance auditor
    /// consumes for multi-segment invariant checks. The merge is a
    /// stable sort by time, so same-instant events keep segment-index
    /// order and the result is identical for serial and parallel runs.
    pub fn merged_trace(&self) -> Vec<TraceEvent> {
        let mut merged: Vec<TraceEvent> = Vec::new();
        for (i, seg) in self.segments.iter().enumerate() {
            merged.extend(seg.trace.iter().map(|ev| {
                let mut ev = ev.clone();
                ev.source = format!("seg{i}.{}", ev.source);
                ev
            }));
        }
        merged.sort_by_key(|ev| ev.time);
        merged
    }
}

/// A live topology segment: a [`Network`] plus its gateway's relay
/// endpoints, stepped by the window drivers of [`rtec_sim::parallel`].
struct GatewaySegment {
    net: Network,
    sink: rtec_sim::TraceSink,
    /// Outgoing routes, ascending global route id.
    out_routes: Vec<OutRoute>,
    /// Egress gateway identity per global route id (used when an
    /// inbound envelope is republished here).
    egress: Vec<NodeId>,
    forwarded: Vec<u64>,
    probe: Option<ProbeFn>,
}

struct OutRoute {
    id: u32,
    subject: Subject,
    queue: EventQueue,
    latency: Duration,
}

impl SegmentStep for GatewaySegment {
    type Relay = Relay;

    fn advance_to(&mut self, t: Time) {
        self.net.run_until(t);
    }

    fn collect(&mut self, now: Time, out: &mut Vec<Envelope<Relay>>) {
        for route in &mut self.out_routes {
            for delivery in route.queue.drain() {
                out.push(Envelope {
                    due: delivery.wire_completed_at + route.latency,
                    collected_at: now,
                    route: route.id,
                    payload: Relay {
                        subject: route.subject,
                        event: delivery.event,
                    },
                });
                self.forwarded[route.id as usize] += 1;
            }
        }
    }

    fn apply(&mut self, env: Envelope<Relay>) {
        let egress = self.egress[env.route as usize];
        republish(&mut self.net, egress, env.payload);
    }
}

impl ParallelSegment for GatewaySegment {
    type Report = SegmentReport;

    fn finish(mut self) -> SegmentReport {
        let probe = match self.probe.take() {
            Some(p) => p(&mut self.net),
            None => Vec::new(),
        };
        SegmentReport {
            dispatched: self.net.dispatched(),
            trace: self.sink.events(),
            trace_dropped: self.sink.dropped(),
            forwarded: self.forwarded,
            probe,
        }
    }
}

/// Builder for an N-segment topology. See the module docs.
///
/// ```
/// use rtec_core::prelude::*;
/// use rtec_core::topology::Topology;
///
/// let mut topo = Topology::new();
/// let field = topo.add_segment(
///     NetworkConfig { nodes: 3, ..NetworkConfig::default() },
///     NodeId(2),
/// );
/// let backbone = topo.add_segment(
///     NetworkConfig { nodes: 2, ..NetworkConfig::default() },
///     NodeId(1),
/// );
/// let speed = Subject::new(0x100);
/// topo.setup(field, move |net| {
///     let mut api = net.api();
///     api.announce(NodeId(0), speed, ChannelSpec::srt(SrtSpec::default()))
///         .unwrap();
/// });
/// topo.forward(speed, field, backbone, Duration::from_us(400), SrtSpec::default());
/// let report = topo.run_parallel(Time::from_ms(50));
/// assert_eq!(report.segments.len(), 2);
/// ```
pub struct Topology {
    quantum: Duration,
    segments: Vec<SegmentDef>,
    routes: Vec<RouteDef>,
}

impl Default for Topology {
    fn default() -> Self {
        Topology::new()
    }
}

impl Topology {
    /// An empty topology with the standard 100 µs lockstep quantum.
    pub fn new() -> Self {
        Topology {
            quantum: Duration::from_us(100),
            segments: Vec::new(),
            routes: Vec::new(),
        }
    }

    /// Add a bus segment; `gateway` is the node identity the topology's
    /// gateway uses on this segment (it must be a valid node index in
    /// `config`). Returns the segment index.
    pub fn add_segment(&mut self, config: NetworkConfig, gateway: NodeId) -> usize {
        self.segments.push(SegmentDef {
            config,
            gateway,
            setup: Vec::new(),
            probe: None,
        });
        self.segments.len() - 1
    }

    /// Register a setup closure for a segment: runs on the segment's
    /// own network (and, under [`Topology::run_parallel`], on the
    /// segment's own thread) before any route endpoints are created.
    /// Closures run in registration order.
    pub fn setup(&mut self, seg: usize, f: impl FnOnce(&mut Network) + Send + 'static) {
        self.segments[seg].setup.push(Box::new(f));
    }

    /// Register the segment's probe: runs once after the horizon is
    /// reached and its byte output lands in
    /// [`SegmentReport::probe`]. Use it to extract delivery logs or
    /// counters that must be compared across serial/parallel runs.
    /// At most one probe per segment; a second registration replaces
    /// the first.
    pub fn probe(&mut self, seg: usize, f: impl FnOnce(&mut Network) -> Vec<u8> + Send + 'static) {
        self.segments[seg].probe = Some(Box::new(f));
    }

    /// Forward `subject` from segment `from` to segment `to` through
    /// the segments' default gateway identities, with the given
    /// store-and-forward `latency` (must be ≥ the 100 µs quantum — it
    /// is the conservative lookahead). Returns the global route index.
    pub fn forward(
        &mut self,
        subject: Subject,
        from: usize,
        to: usize,
        latency: Duration,
        spec: SrtSpec,
    ) -> u32 {
        let ingress = self.segments[from].gateway;
        let egress = self.segments[to].gateway;
        self.forward_via(subject, from, to, ingress, egress, latency, spec)
    }

    /// Like [`Topology::forward`], but with explicit gateway node
    /// identities: `ingress` subscribes on `from`, `egress` announces
    /// and republishes on `to`. Needed when a segment is an
    /// intermediate hop — the node republishing *into* it must differ
    /// from the node subscribing *out* of it, because CAN controllers
    /// never receive their own frames.
    #[allow(clippy::too_many_arguments)]
    pub fn forward_via(
        &mut self,
        subject: Subject,
        from: usize,
        to: usize,
        ingress: NodeId,
        egress: NodeId,
        latency: Duration,
        spec: SrtSpec,
    ) -> u32 {
        assert!(
            from < self.segments.len() && to < self.segments.len(),
            "segment oob"
        );
        assert_ne!(from, to, "route must cross a segment boundary");
        assert!(
            latency >= self.quantum,
            "gateway latency below the lockstep quantum"
        );
        self.routes.push(RouteDef {
            subject,
            from,
            to,
            ingress,
            egress,
            latency,
            spec,
        });
        (self.routes.len() - 1) as u32
    }

    /// The conservative lookahead: the minimum gateway latency over
    /// all routes (unbounded if the topology has no routes — the
    /// segments are then fully independent).
    pub fn lookahead(&self) -> Duration {
        self.routes
            .iter()
            .map(|r| r.latency)
            .min()
            .unwrap_or(Duration::MAX)
    }

    fn window_config(&self) -> WindowConfig {
        WindowConfig {
            quantum: self.quantum,
            lookahead: self.lookahead(),
        }
    }

    fn routing(&self) -> RoutingTable {
        let mut rt = RoutingTable::new(self.segments.len());
        for r in &self.routes {
            rt.add_route(r.from, r.to);
        }
        rt
    }

    /// Consume the builder into one factory closure per segment. Each
    /// factory builds its network, runs the setup closures, then
    /// creates the gateway's route endpoints in global route order —
    /// on whatever thread the driver calls it from.
    fn factories(self) -> Vec<Box<dyn FnOnce() -> GatewaySegment + Send>> {
        let routes = self.routes;
        let n_routes = routes.len();
        self.segments
            .into_iter()
            .enumerate()
            .map(|(i, def)| {
                let SegmentDef {
                    config,
                    gateway: _,
                    setup,
                    probe,
                } = def;
                let routes = routes.clone();
                let factory: Box<dyn FnOnce() -> GatewaySegment + Send> = Box::new(move || {
                    let mut net = Network::with_config(config);
                    let sink = net.enable_trace();
                    for f in setup {
                        f(&mut net);
                    }
                    let mut out_routes = Vec::new();
                    for (id, r) in routes.iter().enumerate() {
                        if r.to == i {
                            let mut api = net.api();
                            api.announce(r.egress, r.subject, ChannelSpec::srt(r.spec))
                                .expect("announce relay channel on target segment");
                        }
                        if r.from == i {
                            let mut api = net.api();
                            let queue = api
                                .subscribe(r.ingress, r.subject, SubscribeSpec::default())
                                .expect("subscribe gateway on source segment");
                            out_routes.push(OutRoute {
                                id: id as u32,
                                subject: r.subject,
                                queue,
                                latency: r.latency,
                            });
                        }
                    }
                    GatewaySegment {
                        net,
                        sink,
                        out_routes,
                        egress: routes.iter().map(|r| r.egress).collect(),
                        forwarded: vec![0; n_routes],
                        probe,
                    }
                });
                factory
            })
            .collect()
    }

    /// Run every segment in lockstep quanta on the calling thread —
    /// the differential oracle for [`Topology::run_parallel`].
    pub fn run_serial(self, until: Time) -> TopologyReport {
        let routing = self.routing();
        let cfg = self.window_config();
        let segments = run_serial_windows(self.factories(), &routing, cfg, until);
        TopologyReport {
            segments,
            parallel: None,
        }
    }

    /// Run one named OS thread per segment, synchronized by
    /// conservative windows. Byte-identical to [`Topology::run_serial`]
    /// (the differential proptest enforces this).
    pub fn run_parallel(self, until: Time) -> TopologyReport {
        let routing = self.routing();
        let cfg = self.window_config();
        let run = run_parallel(self.factories(), &routing, cfg, until);
        TopologyReport {
            segments: run.reports,
            parallel: Some(run.stats),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A three-segment line: field → backbone → wan, one publisher on
    /// the field bus, subscribers at every hop. Serial and parallel
    /// runs must agree byte-for-byte.
    fn line_topology() -> Topology {
        let cfg = |nodes: usize, seed: u64| NetworkConfig {
            nodes,
            seed,
            ..NetworkConfig::default()
        };
        let mut topo = Topology::new();
        let field = topo.add_segment(cfg(3, 7), NodeId(2));
        let backbone = topo.add_segment(cfg(3, 8), NodeId(2));
        let wan = topo.add_segment(cfg(2, 9), NodeId(1));
        let speed = Subject::new(0x100);
        topo.setup(field, move |net| {
            {
                let mut api = net.api();
                api.announce(NodeId(0), speed, ChannelSpec::srt(SrtSpec::default()))
                    .unwrap();
            }
            net.every(Duration::from_ms(2), Duration::from_us(500), move |api| {
                let _ = api.publish(NodeId(0), speed, Event::new(speed, vec![1, 2, 3]));
            });
        });
        topo.setup(backbone, move |net| {
            // The middleware keeps its own handle on the shared queue,
            // so dropping ours does not unsubscribe; deliveries are
            // observed via the trace.
            let _ = net
                .api()
                .subscribe(NodeId(0), speed, SubscribeSpec::default())
                .unwrap();
        });
        topo.probe(wan, move |net| {
            let q = net
                .api()
                .subscribe(NodeId(0), speed, SubscribeSpec::default())
                .unwrap();
            // Probe runs post-horizon: the queue subscribes too late to
            // see traffic; encode the segment's dispatch count instead.
            let mut out = net.dispatched().to_le_bytes().to_vec();
            out.extend((q.len() as u64).to_le_bytes());
            out
        });
        // Backbone is an intermediate hop: the node republishing into
        // it (route 0 egress, node 2) must differ from the node
        // subscribing out of it (route 1 ingress, node 1).
        topo.forward_via(
            speed,
            field,
            backbone,
            NodeId(2),
            NodeId(2),
            Duration::from_us(400),
            SrtSpec::default(),
        );
        topo.forward_via(
            speed,
            backbone,
            wan,
            NodeId(1),
            NodeId(1),
            Duration::from_us(700),
            SrtSpec::default(),
        );
        topo
    }

    #[test]
    fn serial_and_parallel_agree_on_a_line() {
        let until = Time::from_ms(40);
        let serial = line_topology().run_serial(until);
        let parallel = line_topology().run_parallel(until);
        assert_eq!(serial.segments, parallel.segments);
        assert!(serial.total_dispatched() > 0);
        assert!(serial.forwarded(0) > 0, "field→backbone route never fired");
        assert!(serial.forwarded(1) > 0, "backbone→wan route never fired");
        let stats = parallel.parallel.expect("parallel stats");
        assert_eq!(stats.threads, 3);
        assert!(stats.windows > 0);
    }

    #[test]
    fn merged_trace_is_time_ordered_and_prefixed() {
        let report = line_topology().run_serial(Time::from_ms(10));
        let merged = report.merged_trace();
        assert!(!merged.is_empty());
        assert!(merged.windows(2).all(|w| w[0].time <= w[1].time));
        assert!(merged.iter().all(|ev| ev.source.starts_with("seg")));
    }

    #[test]
    fn lookahead_is_min_route_latency() {
        let topo = line_topology();
        assert_eq!(topo.lookahead(), Duration::from_us(400));
    }
}
