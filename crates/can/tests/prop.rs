//! Property-based tests for the bit-level CAN model.

use proptest::prelude::*;
use rtec_can::bits::{
    crc15, destuff, exact_frame_bits, stuff, unstuffed_bits, worst_case_frame_bits, TAIL_BITS,
};
use rtec_can::{CanId, Frame};

fn arb_frame() -> impl Strategy<Value = Frame> {
    (
        0u8..=255,
        0u8..128,
        0u16..(1 << 14),
        prop::collection::vec(any::<u8>(), 0..=8),
    )
        .prop_map(|(prio, tx, etag, payload)| Frame::new(CanId::new(prio, tx, etag), &payload))
}

proptest! {
    /// Stuffing round-trips for arbitrary bit patterns.
    #[test]
    fn stuff_destuff_roundtrip(bits in prop::collection::vec(any::<bool>(), 0..300)) {
        prop_assert_eq!(destuff(&stuff(&bits)).unwrap(), bits);
    }

    /// A stuffed stream never contains six equal consecutive bits.
    #[test]
    fn stuffed_stream_has_no_run_of_six(bits in prop::collection::vec(any::<bool>(), 0..300)) {
        let stuffed = stuff(&bits);
        let mut run = 0u32;
        let mut prev = None;
        for &b in &stuffed {
            if Some(b) == prev { run += 1; } else { prev = Some(b); run = 1; }
            prop_assert!(run <= 5);
        }
    }

    /// Stuffing adds at most one bit per four input bits after the
    /// first five (the tight worst case).
    #[test]
    fn stuffing_overhead_bounded(bits in prop::collection::vec(any::<bool>(), 1..400)) {
        let stuffed = stuff(&bits);
        let max_stuff = (bits.len() - 1) / 4;
        prop_assert!(stuffed.len() <= bits.len() + max_stuff);
    }

    /// Exact on-wire frame length is bracketed by the unstuffed length
    /// and the published worst-case formula.
    #[test]
    fn exact_frame_bits_within_bounds(frame in arb_frame()) {
        let exact = exact_frame_bits(&frame);
        let unstuffed_len = unstuffed_bits(&frame).len() as u32 + TAIL_BITS;
        prop_assert!(exact >= unstuffed_len);
        prop_assert!(exact <= worst_case_frame_bits(frame.dlc()));
    }

    /// The serialized identifier bits survive a parse: two different
    /// identifiers never serialize to the same stuffed-region prefix.
    #[test]
    fn distinct_ids_distinct_bits(a_raw in 0u32..(1 << 29), b_raw in 0u32..(1 << 29)) {
        prop_assume!(a_raw != b_raw);
        let a = Frame::new(CanId::from_raw(a_raw), &[]);
        let b = Frame::new(CanId::from_raw(b_raw), &[]);
        prop_assert_ne!(unstuffed_bits(&a), unstuffed_bits(&b));
    }

    /// CRC detects any single-bit error.
    #[test]
    fn crc_detects_single_bit_flips(
        bits in prop::collection::vec(any::<bool>(), 1..120),
        flip in any::<prop::sample::Index>(),
    ) {
        let mut corrupted = bits.clone();
        let idx = flip.index(bits.len());
        corrupted[idx] = !corrupted[idx];
        prop_assert_ne!(crc15(&bits), crc15(&corrupted));
    }

    /// CRC detects burst errors up to 15 bits long (the guarantee of a
    /// degree-15 generator polynomial).
    #[test]
    fn crc_detects_burst_errors(
        bits in prop::collection::vec(any::<bool>(), 20..200),
        start in any::<prop::sample::Index>(),
        pattern in 1u16..(1 << 15),
    ) {
        let mut corrupted = bits.clone();
        let start = start.index(bits.len().saturating_sub(15));
        let mut changed = false;
        for i in 0..15 {
            if (pattern >> i) & 1 == 1 {
                let idx = start + i;
                if idx < corrupted.len() {
                    corrupted[idx] = !corrupted[idx];
                    changed = true;
                }
            }
        }
        prop_assume!(changed);
        prop_assert_ne!(crc15(&bits), crc15(&corrupted));
    }

    /// Identifier field packing round-trips.
    #[test]
    fn id_roundtrip(prio in 0u8..=255, tx in 0u8..128, etag in 0u16..(1 << 14)) {
        let id = CanId::new(prio, tx, etag);
        prop_assert_eq!(id.priority(), prio);
        prop_assert_eq!(id.txnode(), tx);
        prop_assert_eq!(id.etag(), etag);
        prop_assert_eq!(CanId::from_raw(id.raw()), id);
    }

    /// Priority ordering dominates the other identifier fields in
    /// arbitration.
    #[test]
    fn priority_dominates(
        pa in 0u8..=255, pb in 0u8..=255,
        ta in 0u8..128, tb in 0u8..128,
        ea in 0u16..(1 << 14), eb in 0u16..(1 << 14),
    ) {
        prop_assume!(pa < pb);
        let a = CanId::new(pa, ta, ea);
        let b = CanId::new(pb, tb, eb);
        prop_assert!(a.wins_against(b));
    }

    /// with_priority never touches TxNode or etag.
    #[test]
    fn with_priority_preserves(id_raw in 0u32..(1 << 29), p in 0u8..=255) {
        let id = CanId::from_raw(id_raw);
        let q = id.with_priority(p);
        prop_assert_eq!(q.priority(), p);
        prop_assert_eq!(q.txnode(), id.txnode());
        prop_assert_eq!(q.etag(), id.etag());
    }
}

proptest! {
    /// 29-bit packing round-trip: the three protocol fields survive
    /// encode → decode exactly (§3.5).
    #[test]
    fn id_pack_unpack_identity(p in 0u8..=255, t in 0u8..128, e in 0u16..(1 << 14)) {
        let id = CanId::new(p, t, e);
        prop_assert_eq!(id.priority(), p);
        prop_assert_eq!(id.txnode(), t);
        prop_assert_eq!(id.etag(), e);
        // The raw value round-trips too, through both constructors.
        prop_assert_eq!(CanId::from_raw(id.raw()), id);
        prop_assert_eq!(CanId::try_new(p, t, e), Ok(id));
        prop_assert_eq!(CanId::try_from_raw(id.raw()), Ok(id));
        prop_assert!(id.raw() < (1 << 29));
    }

    /// Field-width violations are rejected by the fallible
    /// constructors instead of panicking.
    #[test]
    fn id_try_new_rejects_oversized_fields(
        p in 0u8..=255,
        bad_t in 128u8..=255,
        bad_e in (1u16 << 14)..=u16::MAX,
        raw_hi in (1u32 << 29)..=u32::MAX,
    ) {
        prop_assert!(CanId::try_new(p, bad_t, 0).is_err());
        prop_assert!(CanId::try_new(p, 0, bad_e).is_err());
        prop_assert!(CanId::try_from_raw(raw_hi).is_err());
    }

    /// The priority field alone decides band membership: exactly one
    /// of HRT / SRT / NRT, matching the §3.3 partition.
    #[test]
    fn id_band_membership_partition(p in 0u8..=255, t in 0u8..128, e in 0u16..(1 << 14)) {
        let id = CanId::new(p, t, e);
        let bands = [id.is_hrt(), id.is_srt(), id.is_nrt()];
        prop_assert_eq!(bands.iter().filter(|&&b| b).count(), 1);
        prop_assert_eq!(id.is_hrt(), p == rtec_can::PRIO_HRT);
        prop_assert_eq!(
            id.is_srt(),
            (rtec_can::PRIO_SRT_MIN..=rtec_can::PRIO_SRT_MAX).contains(&p)
        );
        prop_assert_eq!(id.is_nrt(), p >= rtec_can::PRIO_NRT_MIN);
    }

    /// Cross-node uniqueness: two nodes encoding the same (priority,
    /// etag) still produce distinct identifiers — the TxNode field
    /// makes encodings system-wide unique (§3.5).
    #[test]
    fn id_cross_node_uniqueness(
        p in 0u8..=255,
        e in 0u16..(1 << 14),
        ta in 0u8..128,
        tb in 0u8..128,
    ) {
        prop_assume!(ta != tb);
        prop_assert_ne!(CanId::new(p, ta, e), CanId::new(p, tb, e));
    }

    /// Packing is injective over the full field product: distinct
    /// field triples never collide.
    #[test]
    fn id_packing_injective(
        pa in 0u8..=255, ta in 0u8..128, ea in 0u16..(1 << 14),
        pb in 0u8..=255, tb in 0u8..128, eb in 0u16..(1 << 14),
    ) {
        prop_assume!((pa, ta, ea) != (pb, tb, eb));
        prop_assert_ne!(CanId::new(pa, ta, ea), CanId::new(pb, tb, eb));
    }
}
