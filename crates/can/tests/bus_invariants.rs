//! Bus-level invariants under randomized traffic: conservation (every
//! submitted frame completes exactly once on a fault-free bus), busy
//! time accounting, and arbitration order among simultaneous
//! submissions.

use proptest::prelude::*;
use rtec_can::bits::exact_frame_bits;
use rtec_can::{
    BusConfig, CanBus, CanEvent, CanId, FaultInjector, FilterMode, Frame, MapScheduler, NodeId,
    Notification, TxRequest,
};
use rtec_sim::{Ctx, Engine, Model, Time};

enum Ev {
    Can(CanEvent),
    Submit(NodeId, TxRequest),
}

struct World {
    bus: CanBus,
    completions: Vec<(u64 /*tag*/, Time /*started*/, Time /*done*/)>,
    rx_count: u64,
}

impl Model for World {
    type Event = Ev;
    fn handle(&mut self, ctx: &mut Ctx<Ev>, ev: Ev) {
        let mut sched = MapScheduler::new(ctx, Ev::Can);
        match ev {
            Ev::Can(c) => {
                for note in self.bus.handle(&mut sched, c) {
                    match note {
                        Notification::TxCompleted { tag, started, .. } => {
                            self.completions.push((tag, started, ctx.now()));
                        }
                        Notification::Rx { .. } => self.rx_count += 1,
                        _ => {}
                    }
                }
            }
            Ev::Submit(node, r) => {
                self.bus.submit(&mut sched, node, r);
            }
        }
    }
}

fn world(nodes: usize) -> Engine<World> {
    let mut bus = CanBus::new(BusConfig::default(), nodes, FaultInjector::none());
    for i in 0..nodes {
        bus.controller_mut(NodeId(i as u8))
            .set_filter_mode(FilterMode::AcceptAll);
    }
    Engine::new(World {
        bus,
        completions: vec![],
        rx_count: 0,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Conservation: on a fault-free bus every submission completes
    /// exactly once, total busy time equals the sum of exact frame
    /// durations, and transmissions never overlap.
    #[test]
    fn every_submission_completes_exactly_once(
        submissions in prop::collection::vec(
            (0u8..4, 0u8..=255, 0u16..100, 0u64..20_000, 0usize..=8),
            1..60,
        ),
    ) {
        let mut e = world(4);
        let mut frames = vec![];
        for (i, &(node, prio, etag_off, at_us, len)) in submissions.iter().enumerate() {
            let frame = Frame::new(
                CanId::new(prio, node, 200 + etag_off),
                &vec![i as u8; len],
            );
            frames.push(frame);
            e.schedule_at(
                Time::from_us(at_us),
                Ev::Submit(
                    NodeId(node),
                    TxRequest { frame, single_shot: false, tag: i as u64 },
                ),
            );
        }
        e.run();
        let w = &e.model;
        prop_assert_eq!(w.completions.len(), submissions.len());
        // Exactly once, and each Rx fan-out = 3 other nodes.
        let mut tags: Vec<u64> = w.completions.iter().map(|c| c.0).collect();
        tags.sort_unstable();
        tags.dedup();
        prop_assert_eq!(tags.len(), submissions.len());
        prop_assert_eq!(w.rx_count, submissions.len() as u64 * 3);
        // Busy-time accounting matches the exact frame bits.
        let expected_busy: u64 = frames
            .iter()
            .map(|f| u64::from(exact_frame_bits(f)) * 1_000)
            .sum();
        prop_assert_eq!(w.bus.stats.busy.as_ns(), expected_busy);
        // Transmissions never overlap.
        let mut spans: Vec<(Time, Time)> =
            w.completions.iter().map(|&(_, s, d)| (s, d)).collect();
        spans.sort();
        for pair in spans.windows(2) {
            prop_assert!(pair[0].1 <= pair[1].0, "overlapping transmissions");
        }
    }

    /// Arbitration: among frames submitted at the same instant on an
    /// idle bus, the lowest identifier always transmits first.
    #[test]
    fn simultaneous_submissions_complete_in_id_order(
        prios in prop::collection::vec(0u8..=255, 2..5),
    ) {
        let n = prios.len();
        let mut e = world(n);
        for (i, &p) in prios.iter().enumerate() {
            let frame = Frame::new(CanId::new(p, i as u8, 300), &[i as u8]);
            e.schedule_at(
                Time::ZERO,
                Ev::Submit(
                    NodeId(i as u8),
                    TxRequest { frame, single_shot: false, tag: i as u64 },
                ),
            );
        }
        e.run();
        let w = &e.model;
        prop_assert_eq!(w.completions.len(), n);
        // Completion order must match (priority, node) order.
        let mut expect: Vec<u64> = (0..n as u64).collect();
        expect.sort_by_key(|&i| (prios[i as usize], i));
        let got: Vec<u64> = w.completions.iter().map(|c| c.0).collect();
        prop_assert_eq!(got, expect);
    }
}
