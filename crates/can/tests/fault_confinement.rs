//! Fault-confinement (TEC/REC, error-passive, bus-off) behaviour of the
//! simulated controllers under sustained corruption.

use rtec_can::{
    BusConfig, CanBus, CanEvent, CanId, ErrorState, FaultInjector, FaultModel, FilterMode, Frame,
    MapScheduler, NodeId, Notification, OmissionScope, TxRequest,
};
use rtec_sim::{Ctx, Duration, Engine, Model, Rng, Time};

enum Ev {
    Can(CanEvent),
    Submit(NodeId, TxRequest),
}

struct World {
    bus: CanBus,
    log: Vec<Notification>,
}

impl Model for World {
    type Event = Ev;
    fn handle(&mut self, ctx: &mut Ctx<Ev>, ev: Ev) {
        let mut sched = MapScheduler::new(ctx, Ev::Can);
        match ev {
            Ev::Can(c) => {
                let notes = self.bus.handle(&mut sched, c);
                self.log.extend(notes);
            }
            Ev::Submit(node, r) => {
                self.bus.submit(&mut sched, node, r);
            }
        }
    }
}

fn world(nodes: usize, model: FaultModel, auto_recover: bool) -> Engine<World> {
    let config = BusConfig {
        bus_off_auto_recover: auto_recover,
        ..BusConfig::default()
    };
    let mut bus = CanBus::new(
        config,
        nodes,
        FaultInjector::new(model, Rng::seed_from_u64(1)),
    );
    for i in 0..nodes {
        bus.controller_mut(NodeId(i as u8))
            .set_filter_mode(FilterMode::AcceptAll);
    }
    Engine::new(World { bus, log: vec![] })
}

fn req(prio: u8, tx: u8, etag: u16) -> TxRequest {
    TxRequest {
        frame: Frame::new(CanId::new(prio, tx, etag), &[1, 2, 3]),
        single_shot: false,
        tag: 0,
    }
}

fn state_changes(log: &[Notification]) -> Vec<(NodeId, ErrorState)> {
    log.iter()
        .filter_map(|n| match n {
            Notification::ErrorStateChanged { node, state } => Some((*node, *state)),
            _ => None,
        })
        .collect()
}

#[test]
fn counters_move_with_errors_and_successes() {
    // One corrupted attempt (TEC +8), then clean traffic (TEC −1 each).
    let mut e = world(
        2,
        FaultModel::Window {
            from_ns: 0,
            to_ns: 1,
            corruption_p: 1.0,
        },
        true,
    );
    e.schedule_at(Time::ZERO, Ev::Submit(NodeId(0), req(10, 0, 20)));
    e.run();
    assert_eq!(
        e.model.bus.controller(NodeId(0)).tec(),
        7,
        "8 - 1 after retry success"
    );
    // The receiver saw one error frame and one good frame: 1 - 1 = 0.
    assert_eq!(e.model.bus.controller(NodeId(1)).rec(), 0);
    assert_eq!(
        e.model.bus.controller(NodeId(0)).error_state(),
        ErrorState::Active
    );
}

#[test]
fn sustained_corruption_drives_node_to_bus_off_and_back() {
    // Every attempt corrupted: TEC rises 8 per attempt, passive at
    // >127 (16 attempts), bus-off at >255 (32 attempts).
    let mut e = world(
        2,
        FaultModel::Iid {
            corruption_p: 1.0,
            omission_p: 0.0,
            omission_scope: OmissionScope::AllReceivers,
        },
        true,
    );
    e.schedule_at(Time::ZERO, Ev::Submit(NodeId(0), req(10, 0, 20)));
    e.run_until(Time::from_ms(20));
    let changes = state_changes(&e.model.log);
    assert!(
        changes.contains(&(NodeId(0), ErrorState::Passive)),
        "{changes:?}"
    );
    assert!(
        changes.contains(&(NodeId(0), ErrorState::BusOff)),
        "{changes:?}"
    );
    // Auto-recovery brought it back (128*11 bit times later).
    assert!(
        changes.contains(&(NodeId(0), ErrorState::Active)),
        "{changes:?}"
    );
    assert_eq!(e.model.bus.stats.bus_off_events, 1);
    // The request died with the bus-off transition.
    assert!(e
        .model
        .log
        .iter()
        .any(|n| matches!(n, Notification::TxFailed { .. })));
    assert_eq!(e.model.bus.controller(NodeId(0)).queue_len(), 0);
}

#[test]
fn bus_off_without_auto_recovery_is_permanent() {
    let mut e = world(
        2,
        FaultModel::Iid {
            corruption_p: 1.0,
            omission_p: 0.0,
            omission_scope: OmissionScope::AllReceivers,
        },
        false,
    );
    e.schedule_at(Time::ZERO, Ev::Submit(NodeId(0), req(10, 0, 20)));
    e.run_until(Time::from_ms(50));
    assert_eq!(
        e.model.bus.controller(NodeId(0)).error_state(),
        ErrorState::BusOff
    );
    let changes = state_changes(&e.model.log);
    assert!(!changes.contains(&(NodeId(0), ErrorState::Active)));
}

#[test]
fn bus_off_node_neither_receives_nor_blocks_others() {
    let mut e = world(
        3,
        FaultModel::Iid {
            corruption_p: 1.0,
            omission_p: 0.0,
            omission_scope: OmissionScope::AllReceivers,
        },
        false,
    );
    // Node 0 corrupts itself into bus-off...
    e.schedule_at(Time::ZERO, Ev::Submit(NodeId(0), req(10, 0, 20)));
    e.run_until(Time::from_ms(20));
    assert_eq!(
        e.model.bus.controller(NodeId(0)).error_state(),
        ErrorState::BusOff
    );
    // ... then the fault burst ends and node 1 transmits cleanly.
    e.model.bus.injector_mut().set_model(FaultModel::None);
    e.model.log.clear();
    e.schedule_at(Time::from_ms(21), Ev::Submit(NodeId(1), req(10, 1, 21)));
    e.run_until(Time::from_ms(25));
    let rx: Vec<NodeId> = e
        .model
        .log
        .iter()
        .filter_map(|n| match n {
            Notification::Rx { node, .. } => Some(*node),
            _ => None,
        })
        .collect();
    assert_eq!(rx, vec![NodeId(2)], "bus-off node receives nothing");
    // all_received is judged over connected nodes only.
    assert!(e.model.log.iter().any(|n| matches!(
        n,
        Notification::TxCompleted {
            all_received: true,
            ..
        }
    )));
}

#[test]
fn error_passive_transmitter_pauses_but_still_communicates() {
    // Drive node 0's TEC deterministically past the passive threshold
    // (16 error-frame hits at +8 each = 128 > 127), then run clean
    // traffic: the node communicates, pauses 8 bit times after each
    // transmission, and its TEC decays back towards active.
    let mut e = world(2, FaultModel::None, true);
    for _ in 0..16 {
        e.model.bus.controller_mut(NodeId(0)).on_tx_error();
    }
    assert_eq!(
        e.model.bus.controller(NodeId(0)).error_state(),
        ErrorState::Passive
    );
    for i in 0..10u64 {
        e.schedule_at(
            Time::from_us(200 * i),
            Ev::Submit(NodeId(0), req(10, 0, 20)),
        );
    }
    e.run_until(Time::from_ms(10));
    // Passive node still delivered its frames.
    let delivered = e
        .model
        .log
        .iter()
        .filter(|n| matches!(n, Notification::Rx { .. }))
        .count();
    assert_eq!(delivered, 10);
    // TEC decayed one per success.
    assert_eq!(e.model.bus.controller(NodeId(0)).tec(), 128 - 10);
    // Once the counter sinks below the threshold the node goes active
    // again (needs 1 more success after reaching 127).
    for i in 0..2u64 {
        e.schedule_at(
            Time::from_ms(11) + Duration::from_us(200 * i),
            Ev::Submit(NodeId(0), req(10, 0, 20)),
        );
    }
    e.run_until(Time::from_ms(15));
    assert_eq!(
        e.model.bus.controller(NodeId(0)).error_state(),
        ErrorState::Active
    );
    let changes = state_changes(&e.model.log);
    assert!(
        changes.contains(&(NodeId(0), ErrorState::Active)),
        "{changes:?}"
    );
}

#[test]
fn suspend_pause_delays_passive_nodes_back_to_back_frames() {
    // An error-passive node sending two frames back to back inserts an
    // 8-bit suspend pause between them; an active node does not.
    let run = |passive: bool| {
        let mut e = world(2, FaultModel::None, true);
        if passive {
            // 20 hits (TEC = 160) keep the node passive across both
            // transmissions (one success only decrements to 159).
            for _ in 0..20 {
                e.model.bus.controller_mut(NodeId(0)).on_tx_error();
            }
        }
        e.schedule_at(Time::ZERO, Ev::Submit(NodeId(0), req(10, 0, 20)));
        e.schedule_at(Time::ZERO, Ev::Submit(NodeId(0), req(11, 0, 21)));
        e.run();
        e.now()
    };
    let active_end = run(false);
    let passive_end = run(true);
    assert_eq!(
        passive_end.saturating_since(active_end),
        Duration::from_us(8),
        "exactly one 8-bit suspend pause"
    );
}

#[test]
fn receiver_counters_rise_during_foreign_error_storms() {
    let mut e = world(
        3,
        FaultModel::Iid {
            corruption_p: 0.8,
            omission_p: 0.0,
            omission_scope: OmissionScope::AllReceivers,
        },
        true,
    );
    e.schedule_at(Time::ZERO, Ev::Submit(NodeId(0), req(10, 0, 20)));
    e.run_until(Time::from_ms(2));
    // Receivers bumped REC on every error frame they observed.
    assert!(e.model.bus.controller(NodeId(1)).rec() > 0);
    assert!(e.model.bus.controller(NodeId(2)).rec() > 0);
}
