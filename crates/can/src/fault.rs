//! Fault injection for the simulated bus.
//!
//! The paper's fault assumptions (§3.2, and the companion analysis of
//! Livani & Kaiser) cover **network omission faults** — a frame is valid
//! on the wire but a subset of receivers misses it — and **temporary
//! node faults**. We additionally model **corruption** faults, which on
//! a real bus are globalized by error frames and trigger the
//! controller's automatic retransmission.
//!
//! The injector decides the fate of each transmission *attempt*:
//!
//! * [`FaultDecision::Ok`] — all operational receivers get the frame.
//! * [`FaultDecision::Corrupt`] — an error frame destroys the
//!   transmission at some fraction of its length; nobody receives it and
//!   the controller re-enters arbitration (unless single-shot).
//! * [`FaultDecision::Omit`] — the frame completes on the wire but the
//!   selected receivers miss it. Per the paper's argument that "the
//!   CAN-Bus allows to determine ... whether all operational nodes have
//!   received a message successfully", the *sender* learns
//!   `all_received = false` and the middleware (not the controller)
//!   decides whether to spend a redundant retransmission.

use crate::frame::Frame;
use crate::id::NodeId;
use rtec_sim::{Rng, Time};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Which receivers an omission fault strikes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum OmissionScope {
    /// All receivers miss the frame (symmetric omission).
    AllReceivers,
    /// One uniformly-chosen receiver misses it (asymmetric/inconsistent
    /// omission).
    OneRandomReceiver,
}

/// Stochastic or scripted fault model for the bus.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum FaultModel {
    /// Fault-free bus.
    None,
    /// Independent, identically distributed faults per transmission
    /// attempt.
    Iid {
        /// Probability an attempt is corrupted (error frame).
        corruption_p: f64,
        /// Probability an (uncorrupted) attempt suffers an omission.
        omission_p: f64,
        /// Which receivers an omission strikes.
        omission_scope: OmissionScope,
    },
    /// Gilbert–Elliott two-state burst model: in the *bad* state,
    /// corruption happens with `corruption_p_bad`; the chain moves
    /// good→bad with `p_g2b` and bad→good with `p_b2g` per attempt.
    Burst {
        /// Transition probability good → bad per attempt.
        p_g2b: f64,
        /// Transition probability bad → good per attempt.
        p_b2g: f64,
        /// Corruption probability while in the bad state.
        corruption_p_bad: f64,
        /// Corruption probability while in the good state.
        corruption_p_good: f64,
    },
    /// Deterministic omission runs: the first `run_len` transmission
    /// attempts of each *activation* of a matching etag are omitted
    /// (symmetric). The harness marks activation boundaries via
    /// [`FaultInjector::reset_runs`]. Used to inject an exact omission
    /// degree for the HRT guarantee experiment (E6).
    OmitRun {
        /// Restrict to this etag (`None` = every etag).
        etag: Option<u16>,
        /// Number of leading attempts to omit per activation.
        run_len: u32,
    },
    /// Corruption confined to a time window (transient disturbance).
    Window {
        /// Window start (inclusive).
        from_ns: u64,
        /// Window end (exclusive).
        to_ns: u64,
        /// Corruption probability inside the window.
        corruption_p: f64,
    },
}

/// Outcome chosen for one transmission attempt.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultDecision {
    /// Attempt succeeds for all operational receivers.
    Ok,
    /// Attempt is destroyed by an error frame after `fraction` of the
    /// frame (0 < fraction ≤ 1) has been transmitted.
    Corrupt {
        /// Fraction of the frame transmitted before the error.
        fraction: f64,
    },
    /// Frame completes but `victims` do not receive it.
    Omit {
        /// Receivers that miss the frame.
        victims: Vec<NodeId>,
    },
}

/// Stateful fault injector driving a [`FaultModel`].
#[derive(Clone, Debug)]
pub struct FaultInjector {
    model: FaultModel,
    rng: Rng,
    /// Gilbert–Elliott state: `true` = bad.
    in_bad_state: bool,
    /// Per-etag attempt counters for [`FaultModel::OmitRun`].
    run_counters: HashMap<u16, u32>,
    /// Total decisions taken (observability).
    decisions: u64,
    corruptions: u64,
    omissions: u64,
}

impl FaultInjector {
    /// Create an injector; `rng` should be a dedicated stream.
    pub fn new(model: FaultModel, rng: Rng) -> Self {
        FaultInjector {
            model,
            rng,
            in_bad_state: false,
            run_counters: HashMap::new(),
            decisions: 0,
            corruptions: 0,
            omissions: 0,
        }
    }

    /// A fault-free injector.
    pub fn none() -> Self {
        FaultInjector::new(FaultModel::None, Rng::seed_from_u64(0))
    }

    /// Replace the model (counters are kept).
    pub fn set_model(&mut self, model: FaultModel) {
        self.model = model;
        self.in_bad_state = false;
        self.run_counters.clear();
    }

    /// Mark an activation boundary for [`FaultModel::OmitRun`]: the next
    /// attempts of every etag count as a fresh run.
    pub fn reset_runs(&mut self) {
        self.run_counters.clear();
    }

    /// Decide the fate of a transmission attempt of `frame` at time
    /// `now` towards `receivers`.
    pub fn decide(&mut self, now: Time, frame: &Frame, receivers: &[NodeId]) -> FaultDecision {
        self.decisions += 1;
        let decision = match &self.model {
            FaultModel::None => FaultDecision::Ok,
            FaultModel::Iid {
                corruption_p,
                omission_p,
                omission_scope,
            } => {
                if self.rng.gen_bool(*corruption_p) {
                    FaultDecision::Corrupt {
                        fraction: self.rng.gen_f64().max(f64::MIN_POSITIVE),
                    }
                } else if !receivers.is_empty() && self.rng.gen_bool(*omission_p) {
                    let victims = match omission_scope {
                        OmissionScope::AllReceivers => receivers.to_vec(),
                        OmissionScope::OneRandomReceiver => {
                            let idx = self.rng.gen_range_u64(receivers.len() as u64) as usize;
                            vec![receivers[idx]]
                        }
                    };
                    FaultDecision::Omit { victims }
                } else {
                    FaultDecision::Ok
                }
            }
            FaultModel::Burst {
                p_g2b,
                p_b2g,
                corruption_p_bad,
                corruption_p_good,
            } => {
                // Advance the chain, then sample in the new state.
                if self.in_bad_state {
                    if self.rng.gen_bool(*p_b2g) {
                        self.in_bad_state = false;
                    }
                } else if self.rng.gen_bool(*p_g2b) {
                    self.in_bad_state = true;
                }
                let p = if self.in_bad_state {
                    *corruption_p_bad
                } else {
                    *corruption_p_good
                };
                if self.rng.gen_bool(p) {
                    FaultDecision::Corrupt {
                        fraction: self.rng.gen_f64().max(f64::MIN_POSITIVE),
                    }
                } else {
                    FaultDecision::Ok
                }
            }
            FaultModel::OmitRun { etag, run_len } => {
                let matches = etag.is_none_or(|e| frame.id.etag() == e);
                if matches && !receivers.is_empty() {
                    let counter = self.run_counters.entry(frame.id.etag()).or_insert(0);
                    if *counter < *run_len {
                        *counter += 1;
                        FaultDecision::Omit {
                            victims: receivers.to_vec(),
                        }
                    } else {
                        FaultDecision::Ok
                    }
                } else {
                    FaultDecision::Ok
                }
            }
            FaultModel::Window {
                from_ns,
                to_ns,
                corruption_p,
            } => {
                if (Time::from_ns(*from_ns)..Time::from_ns(*to_ns)).contains(&now)
                    && self.rng.gen_bool(*corruption_p)
                {
                    FaultDecision::Corrupt {
                        fraction: self.rng.gen_f64().max(f64::MIN_POSITIVE),
                    }
                } else {
                    FaultDecision::Ok
                }
            }
        };
        match &decision {
            FaultDecision::Corrupt { .. } => self.corruptions += 1,
            FaultDecision::Omit { .. } => self.omissions += 1,
            FaultDecision::Ok => {}
        }
        decision
    }

    /// Total decisions taken.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }
    /// Corruption faults injected.
    pub fn corruptions(&self) -> u64 {
        self.corruptions
    }
    /// Omission faults injected.
    pub fn omissions(&self) -> u64 {
        self.omissions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::CanId;

    fn frame_with_etag(etag: u16) -> Frame {
        Frame::new(CanId::new(10, 1, etag), &[1, 2])
    }

    fn rx() -> Vec<NodeId> {
        vec![NodeId(1), NodeId(2), NodeId(3)]
    }

    #[test]
    fn none_model_never_faults() {
        let mut inj = FaultInjector::none();
        for _ in 0..100 {
            assert_eq!(
                inj.decide(Time::ZERO, &frame_with_etag(1), &rx()),
                FaultDecision::Ok
            );
        }
        assert_eq!(inj.corruptions(), 0);
        assert_eq!(inj.omissions(), 0);
        assert_eq!(inj.decisions(), 100);
    }

    #[test]
    fn iid_rates_track_probabilities() {
        let mut inj = FaultInjector::new(
            FaultModel::Iid {
                corruption_p: 0.1,
                omission_p: 0.2,
                omission_scope: OmissionScope::AllReceivers,
            },
            Rng::seed_from_u64(1),
        );
        let n = 20_000;
        for _ in 0..n {
            inj.decide(Time::ZERO, &frame_with_etag(1), &rx());
        }
        let corr = inj.corruptions() as f64 / n as f64;
        // omission is conditioned on no corruption: expected 0.9 * 0.2
        let omit = inj.omissions() as f64 / n as f64;
        assert!((corr - 0.1).abs() < 0.01, "corr {corr}");
        assert!((omit - 0.18).abs() < 0.01, "omit {omit}");
    }

    #[test]
    fn omission_scope_all_vs_one() {
        let mut all = FaultInjector::new(
            FaultModel::Iid {
                corruption_p: 0.0,
                omission_p: 1.0,
                omission_scope: OmissionScope::AllReceivers,
            },
            Rng::seed_from_u64(2),
        );
        match all.decide(Time::ZERO, &frame_with_etag(1), &rx()) {
            FaultDecision::Omit { victims } => assert_eq!(victims.len(), 3),
            other => panic!("expected omit, got {other:?}"),
        }
        let mut one = FaultInjector::new(
            FaultModel::Iid {
                corruption_p: 0.0,
                omission_p: 1.0,
                omission_scope: OmissionScope::OneRandomReceiver,
            },
            Rng::seed_from_u64(3),
        );
        match one.decide(Time::ZERO, &frame_with_etag(1), &rx()) {
            FaultDecision::Omit { victims } => assert_eq!(victims.len(), 1),
            other => panic!("expected omit, got {other:?}"),
        }
    }

    #[test]
    fn omission_with_no_receivers_is_ok() {
        let mut inj = FaultInjector::new(
            FaultModel::Iid {
                corruption_p: 0.0,
                omission_p: 1.0,
                omission_scope: OmissionScope::AllReceivers,
            },
            Rng::seed_from_u64(4),
        );
        assert_eq!(
            inj.decide(Time::ZERO, &frame_with_etag(1), &[]),
            FaultDecision::Ok
        );
    }

    #[test]
    fn omit_run_injects_exact_degree_per_activation() {
        let mut inj = FaultInjector::new(
            FaultModel::OmitRun {
                etag: Some(7),
                run_len: 2,
            },
            Rng::seed_from_u64(5),
        );
        let f = frame_with_etag(7);
        // First two attempts omitted, third succeeds.
        assert!(matches!(
            inj.decide(Time::ZERO, &f, &rx()),
            FaultDecision::Omit { .. }
        ));
        assert!(matches!(
            inj.decide(Time::ZERO, &f, &rx()),
            FaultDecision::Omit { .. }
        ));
        assert_eq!(inj.decide(Time::ZERO, &f, &rx()), FaultDecision::Ok);
        // Other etags unaffected.
        assert_eq!(
            inj.decide(Time::ZERO, &frame_with_etag(9), &rx()),
            FaultDecision::Ok
        );
        // New activation restarts the run.
        inj.reset_runs();
        assert!(matches!(
            inj.decide(Time::ZERO, &f, &rx()),
            FaultDecision::Omit { .. }
        ));
    }

    #[test]
    fn window_model_respects_bounds() {
        let mut inj = FaultInjector::new(
            FaultModel::Window {
                from_ns: 1_000,
                to_ns: 2_000,
                corruption_p: 1.0,
            },
            Rng::seed_from_u64(6),
        );
        let f = frame_with_etag(1);
        assert_eq!(inj.decide(Time::from_ns(500), &f, &rx()), FaultDecision::Ok);
        assert!(matches!(
            inj.decide(Time::from_ns(1_500), &f, &rx()),
            FaultDecision::Corrupt { .. }
        ));
        assert_eq!(
            inj.decide(Time::from_ns(2_000), &f, &rx()),
            FaultDecision::Ok
        );
    }

    #[test]
    fn burst_model_produces_clustered_errors() {
        let mut inj = FaultInjector::new(
            FaultModel::Burst {
                p_g2b: 0.01,
                p_b2g: 0.2,
                corruption_p_bad: 0.9,
                corruption_p_good: 0.0,
            },
            Rng::seed_from_u64(7),
        );
        let f = frame_with_etag(1);
        let n = 50_000;
        let outcomes: Vec<bool> = (0..n)
            .map(|_| {
                matches!(
                    inj.decide(Time::ZERO, &f, &rx()),
                    FaultDecision::Corrupt { .. }
                )
            })
            .collect();
        let errors = outcomes.iter().filter(|&&e| e).count();
        assert!(errors > 0, "burst model produced no errors");
        // Clustering: probability an error follows an error must exceed
        // the marginal error rate.
        let mut after_err = 0usize;
        let mut err_pairs = 0usize;
        for w in outcomes.windows(2) {
            if w[0] {
                after_err += 1;
                if w[1] {
                    err_pairs += 1;
                }
            }
        }
        let p_err_after_err = err_pairs as f64 / after_err.max(1) as f64;
        let p_err = errors as f64 / n as f64;
        assert!(
            p_err_after_err > 2.0 * p_err,
            "no clustering: {p_err_after_err} vs {p_err}"
        );
    }

    #[test]
    fn corrupt_fraction_is_positive_and_bounded() {
        let mut inj = FaultInjector::new(
            FaultModel::Iid {
                corruption_p: 1.0,
                omission_p: 0.0,
                omission_scope: OmissionScope::AllReceivers,
            },
            Rng::seed_from_u64(8),
        );
        for _ in 0..100 {
            match inj.decide(Time::ZERO, &frame_with_etag(1), &rx()) {
                FaultDecision::Corrupt { fraction } => {
                    assert!(fraction > 0.0 && fraction <= 1.0)
                }
                other => panic!("expected corrupt, got {other:?}"),
            }
        }
    }
}
