//! Bit-accurate CAN 2.0B frame timing: serialization, bit stuffing and
//! CRC-15.
//!
//! All bandwidth and blocking-time arguments in the paper reduce to "how
//! many bit times does this frame occupy the bus". We answer that
//! exactly by serializing the frame to its on-wire bit pattern:
//!
//! ```text
//!  stuffed region:  SOF | ID28..18 | SRR IDE | ID17..0 | RTR r1 r0 | DLC | data | CRC15
//!  fixed tail:      CRC-delimiter | ACK slot | ACK delimiter | EOF(7) | IFS(3)
//! ```
//!
//! Bit stuffing inserts a complement bit after every run of five equal
//! bits in the stuffed region (the stuff bits themselves participate in
//! subsequent runs). The fixed tail is transmitted unstuffed.
//!
//! Two closed-form bounds are also provided:
//!
//! * [`worst_case_frame_bits`] — the tight worst case with a stuff bit
//!   every 4 bits after the first 5 (`⌊(S−1)/4⌋` stuff bits for a
//!   stuffed-region length `S`), giving **160 bits** for an 8-byte
//!   extended frame.
//! * [`PAPER_LONGEST_FRAME_BITS`] = **154** — the figure the paper
//!   quotes ("154 µs at 1 Mbit/s", §3.2), which corresponds to the
//!   common `⌊S/5⌋` stuffing estimate. We keep it as the default
//!   `ΔT_wait` basis so reproduced numbers line up with the paper, and
//!   verify in tests that real frames (exact stuffing of actual
//!   payloads) stay below it in practice while the adversarial pattern
//!   can exceed it — see `EXPERIMENTS.md` for the discussion.

use crate::frame::Frame;
use rtec_sim::{Duration, Time};
use serde::{Deserialize, Serialize};

/// Bits in the unstuffed fixed tail: CRC delimiter (1) + ACK slot (1) +
/// ACK delimiter (1) + end-of-frame (7) + interframe space (3).
pub const TAIL_BITS: u32 = 13;

/// The longest-frame figure used by the paper for `ΔT_wait`
/// (154 bit times = 154 µs at 1 Mbit/s).
pub const PAPER_LONGEST_FRAME_BITS: u32 = 154;

/// Worst-case length in bits of the error signalling sequence that
/// follows a corrupted frame: error flag (6, up to 12 with
/// superposition) + error delimiter (8) + intermission (3). We use the
/// conservative 12 + 8 + 3 = 23.
pub const ERROR_FRAME_BITS: u32 = 23;

/// CRC-15 generator polynomial for CAN: x^15+x^14+x^10+x^8+x^7+x^4+x^3+1.
const CRC15_POLY: u16 = 0x4599;

/// Compute the CAN CRC-15 over a bit sequence.
pub fn crc15(bits: &[bool]) -> u16 {
    let mut crc: u16 = 0;
    for &bit in bits {
        let crc_nxt = bit ^ ((crc >> 14) & 1 == 1);
        crc = (crc << 1) & 0x7FFF;
        if crc_nxt {
            crc ^= CRC15_POLY;
        }
    }
    crc
}

fn push_bits(out: &mut Vec<bool>, value: u32, width: u32) {
    for i in (0..width).rev() {
        out.push((value >> i) & 1 == 1);
    }
}

/// Serialize the stuffed region of an extended data frame (before
/// stuffing): SOF through CRC inclusive.
pub fn unstuffed_bits(frame: &Frame) -> Vec<bool> {
    let raw = frame.id.raw();
    let mut bits = Vec::with_capacity(100);
    bits.push(false); // SOF (dominant)
    push_bits(&mut bits, raw >> 18, 11); // ID28..18
    bits.push(true); // SRR (recessive)
    bits.push(true); // IDE (recessive: extended format)
    push_bits(&mut bits, raw & 0x3FFFF, 18); // ID17..0
    bits.push(false); // RTR (dominant: data frame)
    bits.push(false); // r1
    bits.push(false); // r0
    push_bits(&mut bits, u32::from(frame.dlc()), 4);
    for &byte in frame.payload() {
        push_bits(&mut bits, u32::from(byte), 8);
    }
    let crc = crc15(&bits);
    push_bits(&mut bits, u32::from(crc), 15);
    bits
}

/// Apply CAN bit stuffing: after every run of five equal bits, insert
/// the complement. Stuff bits participate in subsequent run counting.
pub fn stuff(bits: &[bool]) -> Vec<bool> {
    let mut out = Vec::with_capacity(bits.len() + bits.len() / 4);
    let mut run_bit = None;
    let mut run_len = 0u32;
    for &b in bits {
        out.push(b);
        if Some(b) == run_bit {
            run_len += 1;
        } else {
            run_bit = Some(b);
            run_len = 1;
        }
        if run_len == 5 {
            let stuffed = !b;
            out.push(stuffed);
            run_bit = Some(stuffed);
            run_len = 1;
        }
    }
    out
}

/// Error from [`destuff`]: six consecutive equal bits are a stuff error
/// on a real bus.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StuffError {
    /// Bit index (in the stuffed stream) where the violation occurred.
    pub at: usize,
}

/// Remove stuffing: drop the complement bit after each run of five.
/// Returns an error on a run of six equal bits.
pub fn destuff(bits: &[bool]) -> Result<Vec<bool>, StuffError> {
    let mut out = Vec::with_capacity(bits.len());
    let mut run_bit = None;
    let mut run_len = 0u32;
    let mut skip_next_check = false;
    let mut iter = bits.iter().copied().enumerate().peekable();
    while let Some((i, b)) = iter.next() {
        if skip_next_check {
            // This is a stuff bit: it must differ from the run it ends.
            if Some(b) == run_bit {
                return Err(StuffError { at: i });
            }
            run_bit = Some(b);
            run_len = 1;
            skip_next_check = false;
            continue;
        }
        out.push(b);
        if Some(b) == run_bit {
            run_len += 1;
        } else {
            run_bit = Some(b);
            run_len = 1;
        }
        if run_len == 5 && iter.peek().is_some() {
            skip_next_check = true;
        }
    }
    Ok(out)
}

/// Exact on-wire length in bits of a frame, including stuffing and the
/// unstuffed tail (EOF + interframe space).
pub fn exact_frame_bits(frame: &Frame) -> u32 {
    stuff(&unstuffed_bits(frame)).len() as u32 + TAIL_BITS
}

/// Tight worst-case on-wire length in bits for an extended data frame
/// with `dlc` payload bytes: `67 + 8·dlc` protocol bits plus
/// `⌊(54 + 8·dlc − 1)/4⌋` stuff bits.
pub fn worst_case_frame_bits(dlc: u8) -> u32 {
    assert!(dlc <= 8);
    let n = u32::from(dlc);
    let stuffable = 54 + 8 * n;
    stuffable + TAIL_BITS + (stuffable - 1) / 4
}

/// Bus bit timing: how long one bit occupies the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitTiming {
    /// Duration of a single bit time.
    pub bit_time: Duration,
}

impl BitTiming {
    /// 1 Mbit/s — the rate used throughout the paper (1 bit = 1 µs).
    pub const MBIT_1: BitTiming = BitTiming {
        bit_time: Duration::from_ns(1_000),
    };

    /// Construct from a bit rate in kbit/s (e.g. 125, 250, 500, 1000).
    pub fn from_kbps(kbps: u64) -> Self {
        assert!(kbps > 0, "bit rate must be positive");
        BitTiming {
            bit_time: Duration::from_ns(1_000_000_000 / (kbps * 1_000)),
        }
    }

    /// Wire time of `bits` bit times.
    #[inline]
    pub fn duration_of(&self, bits: u32) -> Duration {
        self.bit_time * u64::from(bits)
    }

    /// Exact wire time of a frame.
    #[inline]
    pub fn frame_duration(&self, frame: &Frame) -> Duration {
        self.duration_of(exact_frame_bits(frame))
    }

    /// `ΔT_wait`: the longest time a newly ready highest-priority
    /// message can be blocked by an ongoing non-preemptible
    /// transmission. Based on the paper's 154-bit longest frame.
    #[inline]
    pub fn delta_t_wait(&self) -> Duration {
        self.duration_of(PAPER_LONGEST_FRAME_BITS)
    }

    /// Tight (adversarial-stuffing) `ΔT_wait` based on
    /// [`worst_case_frame_bits`]`(8)` = 160 bits.
    #[inline]
    pub fn delta_t_wait_tight(&self) -> Duration {
        self.duration_of(worst_case_frame_bits(8))
    }

    /// How many whole bit times fit between two instants.
    pub fn bits_between(&self, from: Time, to: Time) -> u64 {
        to.saturating_since(from) / self.bit_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::CanId;

    fn frame(prio: u8, payload: &[u8]) -> Frame {
        Frame::new(CanId::new(prio, 1, 2), payload)
    }

    #[test]
    fn unstuffed_length_matches_spec() {
        // SOF(1)+IDA(11)+SRR(1)+IDE(1)+IDB(18)+RTR(1)+r1(1)+r0(1)+DLC(4)
        // + 8*dlc + CRC(15) = 54 + 8*dlc
        for dlc in 0..=8u8 {
            let f = frame(3, &vec![0x55; dlc as usize]);
            assert_eq!(
                unstuffed_bits(&f).len() as u32,
                54 + 8 * u32::from(dlc),
                "dlc={dlc}"
            );
        }
    }

    #[test]
    fn crc15_known_properties() {
        // CRC of the empty sequence is zero.
        assert_eq!(crc15(&[]), 0);
        // CRC is 15 bits.
        let bits: Vec<bool> = (0..64).map(|i| i % 3 == 0).collect();
        assert!(crc15(&bits) < (1 << 15));
        // A single-bit flip changes the CRC (error detection).
        let mut flipped = bits.clone();
        flipped[10] = !flipped[10];
        assert_ne!(crc15(&bits), crc15(&flipped));
    }

    #[test]
    fn stuffing_breaks_long_runs() {
        let bits = vec![false; 10];
        let stuffed = stuff(&bits);
        // 5 zeros, stuff 1, 5 zeros, stuff 1 => 12 bits
        assert_eq!(stuffed.len(), 12);
        let mut run = 0;
        let mut prev = None;
        for &b in &stuffed {
            if Some(b) == prev {
                run += 1;
            } else {
                prev = Some(b);
                run = 1;
            }
            assert!(run <= 5, "stuffed stream has a run longer than 5");
        }
    }

    #[test]
    fn stuff_destuff_roundtrip() {
        let patterns: Vec<Vec<bool>> = vec![
            vec![],
            vec![true],
            vec![false; 25],
            vec![true; 25],
            (0..100).map(|i| i % 2 == 0).collect(),
            (0..100).map(|i| (i / 3) % 2 == 0).collect(),
        ];
        for p in patterns {
            assert_eq!(destuff(&stuff(&p)).unwrap(), p);
        }
    }

    #[test]
    fn destuff_rejects_run_of_six() {
        let bad = vec![true; 6];
        assert!(destuff(&bad).is_err());
    }

    #[test]
    fn alternating_pattern_needs_no_stuffing() {
        let bits: Vec<bool> = (0..60).map(|i| i % 2 == 0).collect();
        assert_eq!(stuff(&bits).len(), bits.len());
    }

    #[test]
    fn worst_case_formula_values() {
        // Classic literature values for extended data frames.
        assert_eq!(worst_case_frame_bits(0), 67 + 13);
        assert_eq!(worst_case_frame_bits(8), 67 + 64 + 29);
        assert_eq!(worst_case_frame_bits(8), 160);
    }

    #[test]
    fn exact_never_exceeds_worst_case() {
        for dlc in 0..=8u8 {
            for fill in [0x00u8, 0xFF, 0x55, 0xAA, 0x0F] {
                let f = frame(7, &vec![fill; dlc as usize]);
                let exact = exact_frame_bits(&f);
                assert!(
                    exact <= worst_case_frame_bits(dlc),
                    "dlc={dlc} fill={fill:#x}: {exact} > bound"
                );
                // And at least the unstuffed length.
                assert!(exact >= 54 + 8 * u32::from(dlc) + TAIL_BITS);
            }
        }
    }

    #[test]
    fn all_zero_payload_hits_heavy_stuffing() {
        let f = frame(0, &[0u8; 8]);
        let exact = exact_frame_bits(&f);
        // Long dominant runs force many stuff bits.
        assert!(exact > 131 + 10, "expected heavy stuffing, got {exact}");
    }

    #[test]
    fn paper_longest_frame_is_154_us_at_1mbit() {
        let t = BitTiming::MBIT_1;
        assert_eq!(t.delta_t_wait(), Duration::from_us(154));
        assert_eq!(t.delta_t_wait_tight(), Duration::from_us(160));
    }

    #[test]
    fn bit_timing_rates() {
        assert_eq!(BitTiming::from_kbps(1000), BitTiming::MBIT_1);
        assert_eq!(BitTiming::from_kbps(125).bit_time, Duration::from_ns(8_000));
        assert_eq!(BitTiming::MBIT_1.duration_of(100), Duration::from_us(100));
    }

    #[test]
    fn frame_duration_scales_with_payload() {
        let t = BitTiming::MBIT_1;
        let short = t.frame_duration(&frame(1, &[]));
        let long = t.frame_duration(&frame(1, &[0x12; 8]));
        assert!(long > short);
        assert!(long >= Duration::from_us(131));
    }

    #[test]
    fn bits_between() {
        let t = BitTiming::MBIT_1;
        assert_eq!(t.bits_between(Time::from_us(10), Time::from_us(25)), 15);
        assert_eq!(t.bits_between(Time::from_us(25), Time::from_us(10)), 0);
    }
}
