//! Versioned wire codec for CAN frames crossing a real transport.
//!
//! The simulator passes [`Frame`] values by ownership; a live runtime
//! has to put them on a byte-oriented transport (UDP datagrams, pipes)
//! and read them back from peers it does not trust to be the same
//! build. The encoding is deliberately tiny and explicit:
//!
//! ```text
//! byte 0      codec version (currently 1)
//! bytes 1..5  29-bit identifier, big-endian u32 (top 3 bits zero)
//! byte 5      DLC (0..=8)
//! bytes 6..   DLC payload bytes — the buffer ends exactly here
//! ```
//!
//! Fragmentation headers ride *inside* the payload (see
//! `rtec_core::frag`), exactly as they do on a physical bus, so this
//! codec stays class-agnostic: HRT, SRT and NRT frames all encode the
//! same way. Decoding never panics; every malformed input maps to a
//! [`CodecError`].

use crate::frame::{Frame, MAX_PAYLOAD};
use crate::id::{CanId, ETAG_BITS, PRIORITY_BITS, TXNODE_BITS};

/// Width of the full structured identifier (29 bits).
const ID_BITS: u32 = PRIORITY_BITS + TXNODE_BITS + ETAG_BITS;

/// Current wire-format version (byte 0 of every encoded frame).
pub const CODEC_VERSION: u8 = 1;

/// Encoded size of a frame carrying `dlc` payload bytes.
pub const fn encoded_len(dlc: usize) -> usize {
    6 + dlc
}

/// Largest encoded frame (full 8-byte payload).
pub const MAX_ENCODED_LEN: usize = encoded_len(MAX_PAYLOAD);

/// A byte buffer failed to decode as a CAN frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// Fewer bytes than the fixed header needs.
    Truncated(usize),
    /// Version byte is not [`CODEC_VERSION`].
    BadVersion(u8),
    /// Identifier does not fit in 29 bits.
    BadId(u32),
    /// DLC larger than 8.
    BadDlc(u8),
    /// Buffer length disagrees with the DLC.
    LengthMismatch {
        /// Length the header promised.
        expected: usize,
        /// Length actually received.
        got: usize,
    },
}

impl core::fmt::Display for CodecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CodecError::Truncated(n) => write!(f, "frame truncated: {n} bytes"),
            CodecError::BadVersion(v) => {
                write!(f, "unknown codec version {v} (expected {CODEC_VERSION})")
            }
            CodecError::BadId(raw) => write!(f, "identifier {raw:#x} exceeds 29 bits"),
            CodecError::BadDlc(d) => write!(f, "DLC {d} exceeds {MAX_PAYLOAD}"),
            CodecError::LengthMismatch { expected, got } => {
                write!(f, "length mismatch: header says {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Append the wire encoding of `frame` to `out`.
pub fn encode_into(frame: &Frame, out: &mut Vec<u8>) {
    out.push(CODEC_VERSION);
    out.extend_from_slice(&frame.id.raw().to_be_bytes());
    out.push(frame.dlc());
    out.extend_from_slice(frame.payload());
}

/// Wire encoding of `frame` as a fresh buffer.
pub fn encode(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::with_capacity(encoded_len(frame.dlc() as usize));
    encode_into(frame, &mut out);
    out
}

/// Decode a frame from a buffer holding exactly one encoded frame.
/// Never panics: all malformed inputs return a [`CodecError`].
pub fn decode(buf: &[u8]) -> Result<Frame, CodecError> {
    if buf.len() < 6 {
        return Err(CodecError::Truncated(buf.len()));
    }
    if buf[0] != CODEC_VERSION {
        return Err(CodecError::BadVersion(buf[0]));
    }
    let raw = u32::from_be_bytes([buf[1], buf[2], buf[3], buf[4]]);
    if raw >> ID_BITS != 0 {
        return Err(CodecError::BadId(raw));
    }
    let dlc = buf[5];
    if dlc as usize > MAX_PAYLOAD {
        return Err(CodecError::BadDlc(dlc));
    }
    let expected = encoded_len(dlc as usize);
    if buf.len() != expected {
        return Err(CodecError::LengthMismatch {
            expected,
            got: buf.len(),
        });
    }
    let id = CanId::from_raw(raw);
    Ok(Frame::new(id, &buf[6..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_dlcs() {
        for dlc in 0..=MAX_PAYLOAD {
            let payload: Vec<u8> = (0..dlc as u8).map(|b| b.wrapping_mul(37)).collect();
            let frame = Frame::new(CanId::new(250, 63, 0x3FFF), &payload);
            let bytes = encode(&frame);
            assert_eq!(bytes.len(), encoded_len(dlc));
            assert_eq!(decode(&bytes), Ok(frame));
        }
    }

    #[test]
    fn rejects_truncation_and_trailing_garbage() {
        let frame = Frame::new(CanId::new(1, 2, 3), &[9, 8, 7]);
        let bytes = encode(&frame);
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut} must fail");
        }
        let mut long = bytes.clone();
        long.push(0);
        assert_eq!(
            decode(&long),
            Err(CodecError::LengthMismatch {
                expected: bytes.len(),
                got: bytes.len() + 1
            })
        );
    }

    #[test]
    fn rejects_bad_version_id_and_dlc() {
        let frame = Frame::new(CanId::new(1, 2, 3), &[]);
        let mut bytes = encode(&frame);
        bytes[0] = 2;
        assert_eq!(decode(&bytes), Err(CodecError::BadVersion(2)));
        bytes[0] = CODEC_VERSION;
        bytes[1] = 0xFF; // sets bits above the 29-bit field
        assert!(matches!(decode(&bytes), Err(CodecError::BadId(_))));
        let mut bytes = encode(&frame);
        bytes[5] = 9;
        assert_eq!(decode(&bytes), Err(CodecError::BadDlc(9)));
    }

    #[test]
    fn empty_input_is_truncated_not_panic() {
        assert_eq!(decode(&[]), Err(CodecError::Truncated(0)));
    }
}
