//! The per-node CAN controller: transmit requests and acceptance
//! filtering.
//!
//! A real CAN controller holds a small set of transmit mailboxes and
//! always contends with the lowest-identifier pending frame; received
//! frames pass a bank of mask/match acceptance filters before reaching
//! the host. Two controller capabilities matter for the protocol:
//!
//! * **Abort & re-submit** — the middleware can withdraw a pending frame
//!   that has not started transmitting and re-submit it with a modified
//!   identifier. This implements both the LST priority raise of HRT
//!   messages and the dynamic priority promotion of SRT messages
//!   ([`Controller::update_id`]).
//! * **Hardware subject filtering** — the dynamic binding scheme maps a
//!   subject to an etag so that the controller's acceptance filters do
//!   the subject filtering, putting no load on the host CPU (§2.1).

use crate::frame::Frame;
use crate::id::{CanId, NodeId};
use serde::{Deserialize, Serialize};

/// Handle identifying a submitted transmit request.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct TxHandle(pub u64);

/// A transmit request from the middleware.
#[derive(Clone, Debug)]
pub struct TxRequest {
    /// Frame to transmit. The identifier may be rewritten later through
    /// [`Controller::update_id`] while the request is still pending.
    pub frame: Frame,
    /// If `true`, a corrupted attempt is *not* automatically
    /// retransmitted (TTCAN-style single-shot mode).
    pub single_shot: bool,
    /// Opaque middleware correlation tag, echoed in notifications.
    pub tag: u64,
}

/// One mask/match acceptance filter: a frame is accepted when
/// `(id & mask) == (pattern & mask)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AcceptanceFilter {
    /// Bits of the identifier that are compared.
    pub mask: u32,
    /// Required values of the compared bits.
    pub pattern: u32,
}

impl AcceptanceFilter {
    /// Filter matching exactly one identifier.
    pub fn exact(id: CanId) -> Self {
        AcceptanceFilter {
            mask: (1 << 29) - 1,
            pattern: id.raw(),
        }
    }

    /// Filter matching every frame carrying the given etag, from any
    /// sender at any priority — the filter shape the binding protocol
    /// installs for a subscription (the subject is the etag; priority
    /// and TxNode vary per message).
    pub fn for_etag(etag: u16) -> Self {
        AcceptanceFilter {
            mask: 0x3FFF,
            pattern: u32::from(etag),
        }
    }

    /// `true` if `id` passes this filter.
    #[inline]
    pub fn accepts(&self, id: CanId) -> bool {
        (id.raw() & self.mask) == (self.pattern & self.mask)
    }
}

/// Whether a controller accepts everything or applies its filter bank.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FilterMode {
    /// Deliver every frame to the host (monitoring / bridging).
    AcceptAll,
    /// Deliver only frames matching at least one acceptance filter.
    Filtered,
}

/// CAN fault-confinement state, driven by the transmit/receive error
/// counters (TEC/REC) per the Bosch specification.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ErrorState {
    /// Normal operation (both counters ≤ 127).
    #[default]
    Active,
    /// A counter exceeded 127: the node still communicates but must
    /// insert a *suspend transmission* pause after sending and signals
    /// errors passively.
    Passive,
    /// TEC exceeded 255: the node has removed itself from the bus.
    BusOff,
}

#[derive(Clone, Debug)]
pub(crate) struct Pending {
    pub handle: TxHandle,
    pub request: TxRequest,
    pub attempts: u32,
    /// Sequence for FIFO tie-breaking among equal identifiers within a
    /// node (cannot happen on the wire across nodes, but a node may
    /// queue several frames of the same channel).
    pub seq: u64,
}

/// Per-controller statistics.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct ControllerStats {
    /// Frames submitted by the host.
    pub submitted: u64,
    /// Frames successfully transmitted.
    pub transmitted: u64,
    /// Transmission attempts that ended in an error frame.
    pub tx_errors: u64,
    /// Requests aborted by the host before transmission.
    pub aborted: u64,
    /// Frames delivered to the host after filtering.
    pub received: u64,
    /// Frames dropped by acceptance filtering.
    pub filtered_out: u64,
}

/// Simulated CAN controller state for one node.
#[derive(Clone, Debug)]
pub struct Controller {
    node: NodeId,
    pending: Vec<Pending>,
    filters: Vec<AcceptanceFilter>,
    filter_mode: FilterMode,
    operational: bool,
    next_handle: u64,
    next_seq: u64,
    /// Transmit error counter (fault confinement).
    tec: u32,
    /// Receive error counter (fault confinement).
    rec: u32,
    error_state: ErrorState,
    /// Statistics counters.
    pub stats: ControllerStats,
}

impl Controller {
    /// Create an operational controller with an empty filter bank in
    /// [`FilterMode::Filtered`] mode (accepts nothing until filters are
    /// installed — the binding protocol installs them).
    pub fn new(node: NodeId) -> Self {
        Controller {
            node,
            pending: Vec::new(),
            filters: Vec::new(),
            filter_mode: FilterMode::Filtered,
            operational: true,
            next_handle: 0,
            next_seq: 0,
            tec: 0,
            rec: 0,
            error_state: ErrorState::Active,
            stats: ControllerStats::default(),
        }
    }

    /// Current fault-confinement state.
    pub fn error_state(&self) -> ErrorState {
        self.error_state
    }

    /// Transmit error counter.
    pub fn tec(&self) -> u32 {
        self.tec
    }

    /// Receive error counter.
    pub fn rec(&self) -> u32 {
        self.rec
    }

    /// `true` while the node may transmit (operational and not bus-off).
    pub fn can_transmit(&self) -> bool {
        self.operational && self.error_state != ErrorState::BusOff
    }

    fn update_error_state(&mut self) -> Option<ErrorState> {
        let new_state = if self.tec > 255 {
            ErrorState::BusOff
        } else if self.tec > 127 || self.rec > 127 {
            ErrorState::Passive
        } else {
            ErrorState::Active
        };
        if new_state != self.error_state {
            self.error_state = new_state;
            Some(new_state)
        } else {
            None
        }
    }

    /// Fault confinement: a transmission by this node ended in an error
    /// frame (TEC += 8). Returns the new state if it changed; entering
    /// [`ErrorState::BusOff`] clears the transmit queue.
    pub fn on_tx_error(&mut self) -> Option<ErrorState> {
        self.tec += 8;
        let change = self.update_error_state();
        if self.error_state == ErrorState::BusOff {
            self.pending.clear();
        }
        change
    }

    /// Fault confinement: successful transmission (TEC −= 1).
    pub fn on_tx_success(&mut self) -> Option<ErrorState> {
        self.tec = self.tec.saturating_sub(1);
        self.update_error_state()
    }

    /// Fault confinement: this node observed an error frame as a
    /// receiver (REC += 1).
    pub fn on_rx_error(&mut self) -> Option<ErrorState> {
        self.rec += 1;
        self.update_error_state()
    }

    /// Fault confinement: successful reception (REC −= 1).
    pub fn on_rx_success(&mut self) -> Option<ErrorState> {
        self.rec = self.rec.saturating_sub(1);
        self.update_error_state()
    }

    /// Bus-off recovery (after 128 × 11 recessive bits): counters reset,
    /// node rejoins error-active.
    pub fn recover_from_bus_off(&mut self) {
        if self.error_state == ErrorState::BusOff {
            self.tec = 0;
            self.rec = 0;
            self.error_state = ErrorState::Active;
        }
    }

    /// The node this controller belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// `true` while the node participates in bus traffic.
    pub fn is_operational(&self) -> bool {
        self.operational
    }

    /// Crash or revive the node. A non-operational node neither
    /// transmits nor receives nor counts towards the all-received check.
    pub fn set_operational(&mut self, operational: bool) {
        self.operational = operational;
        if !operational {
            self.pending.clear();
        }
    }

    /// Queue a frame for transmission; returns the handle used in
    /// completion notifications and for abort/update.
    pub fn submit(&mut self, request: TxRequest) -> TxHandle {
        let handle = TxHandle(self.next_handle);
        self.next_handle += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.stats.submitted += 1;
        self.pending.push(Pending {
            handle,
            request,
            attempts: 0,
            seq,
        });
        handle
    }

    /// Withdraw a pending request. Returns `true` if it was still
    /// queued (it may already have completed or be in flight — the bus
    /// refuses aborts of the in-flight frame).
    pub fn abort(&mut self, handle: TxHandle) -> bool {
        let before = self.pending.len();
        self.pending.retain(|p| p.handle != handle);
        let removed = self.pending.len() != before;
        if removed {
            self.stats.aborted += 1;
        }
        removed
    }

    /// Rewrite the identifier of a pending request (dynamic priority
    /// promotion). Returns `false` if the request is no longer queued.
    pub fn update_id(&mut self, handle: TxHandle, new_id: CanId) -> bool {
        for p in &mut self.pending {
            if p.handle == handle {
                p.request.frame.id = new_id;
                return true;
            }
        }
        false
    }

    /// The pending request this controller would contend with: lowest
    /// identifier, FIFO among equals.
    pub(crate) fn best_pending(&self) -> Option<&Pending> {
        self.pending
            .iter()
            .min_by_key(|p| (p.request.frame.id, p.seq))
    }

    /// Identifier of the frame this controller would contend with.
    pub fn contending_id(&self) -> Option<CanId> {
        self.best_pending().map(|p| p.request.frame.id)
    }

    /// Number of queued requests.
    pub fn queue_len(&self) -> usize {
        self.pending.len()
    }

    /// Look up a pending request by handle.
    pub(crate) fn pending_mut(&mut self, handle: TxHandle) -> Option<&mut Pending> {
        self.pending.iter_mut().find(|p| p.handle == handle)
    }

    /// Remove a request by handle, returning it.
    pub(crate) fn take(&mut self, handle: TxHandle) -> Option<Pending> {
        let idx = self.pending.iter().position(|p| p.handle == handle)?;
        Some(self.pending.swap_remove(idx))
    }

    /// Replace the filter bank.
    pub fn set_filters(&mut self, filters: Vec<AcceptanceFilter>) {
        self.filters = filters;
    }

    /// Add one acceptance filter.
    pub fn add_filter(&mut self, filter: AcceptanceFilter) {
        self.filters.push(filter);
    }

    /// Remove all filters matching a predicate.
    pub fn remove_filters(&mut self, mut predicate: impl FnMut(&AcceptanceFilter) -> bool) {
        self.filters.retain(|f| !predicate(f));
    }

    /// Set the filtering mode.
    pub fn set_filter_mode(&mut self, mode: FilterMode) {
        self.filter_mode = mode;
    }

    /// Acceptance check for an incoming frame (hardware filtering).
    pub fn accepts(&self, id: CanId) -> bool {
        match self.filter_mode {
            FilterMode::AcceptAll => true,
            FilterMode::Filtered => self.filters.iter().any(|f| f.accepts(id)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(prio: u8, etag: u16) -> TxRequest {
        TxRequest {
            frame: Frame::new(CanId::new(prio, 1, etag), &[1]),
            single_shot: false,
            tag: 0,
        }
    }

    #[test]
    fn submit_and_best_pending_orders_by_id() {
        let mut c = Controller::new(NodeId(1));
        c.submit(req(50, 1));
        c.submit(req(10, 2));
        c.submit(req(90, 3));
        assert_eq!(c.queue_len(), 3);
        assert_eq!(c.contending_id().unwrap().priority(), 10);
    }

    #[test]
    fn equal_ids_fifo() {
        let mut c = Controller::new(NodeId(1));
        let first = c.submit(req(10, 5));
        let _second = c.submit(req(10, 5));
        assert_eq!(c.best_pending().unwrap().handle, first);
    }

    #[test]
    fn abort_removes_pending() {
        let mut c = Controller::new(NodeId(1));
        let h = c.submit(req(10, 1));
        assert!(c.abort(h));
        assert!(!c.abort(h));
        assert_eq!(c.queue_len(), 0);
        assert_eq!(c.stats.aborted, 1);
    }

    #[test]
    fn update_id_promotes_priority() {
        let mut c = Controller::new(NodeId(1));
        c.submit(req(200, 1));
        let h2 = c.submit(req(100, 2));
        assert_eq!(c.contending_id().unwrap().priority(), 100);
        assert!(c.update_id(h2, CanId::new(250, 1, 2)));
        assert_eq!(c.contending_id().unwrap().priority(), 200);
        assert!(!c.update_id(TxHandle(999), CanId::new(0, 0, 0)));
    }

    #[test]
    fn crash_clears_queue() {
        let mut c = Controller::new(NodeId(1));
        c.submit(req(10, 1));
        c.set_operational(false);
        assert_eq!(c.queue_len(), 0);
        assert!(!c.is_operational());
        c.set_operational(true);
        assert!(c.is_operational());
    }

    #[test]
    fn exact_filter() {
        let id = CanId::new(7, 3, 99);
        let f = AcceptanceFilter::exact(id);
        assert!(f.accepts(id));
        assert!(!f.accepts(CanId::new(7, 3, 98)));
        assert!(!f.accepts(CanId::new(8, 3, 99)));
    }

    #[test]
    fn etag_filter_ignores_priority_and_sender() {
        let f = AcceptanceFilter::for_etag(1234);
        assert!(f.accepts(CanId::new(0, 0, 1234)));
        assert!(f.accepts(CanId::new(250, 127, 1234)));
        assert!(!f.accepts(CanId::new(0, 0, 1235)));
    }

    #[test]
    fn filter_modes() {
        let mut c = Controller::new(NodeId(2));
        let id = CanId::new(1, 1, 42);
        // Filtered mode with empty bank accepts nothing.
        assert!(!c.accepts(id));
        c.add_filter(AcceptanceFilter::for_etag(42));
        assert!(c.accepts(id));
        assert!(!c.accepts(CanId::new(1, 1, 43)));
        c.set_filter_mode(FilterMode::AcceptAll);
        assert!(c.accepts(CanId::new(1, 1, 43)));
    }

    #[test]
    fn remove_filters_by_predicate() {
        let mut c = Controller::new(NodeId(2));
        c.add_filter(AcceptanceFilter::for_etag(1));
        c.add_filter(AcceptanceFilter::for_etag(2));
        c.remove_filters(|f| f.pattern == 1);
        assert!(!c.accepts(CanId::new(0, 0, 1)));
        assert!(c.accepts(CanId::new(0, 0, 2)));
    }

    #[test]
    fn take_removes_by_handle() {
        let mut c = Controller::new(NodeId(1));
        let h1 = c.submit(req(10, 1));
        let h2 = c.submit(req(20, 2));
        let taken = c.take(h1).unwrap();
        assert_eq!(taken.handle, h1);
        assert_eq!(c.queue_len(), 1);
        assert!(c.take(h1).is_none());
        assert!(c.take(h2).is_some());
    }
}
