//! The shared bus: arbitration, transmission timing, error signalling
//! and delivery.
//!
//! The bus advances through discrete [`CanEvent`]s scheduled on the
//! simulation engine:
//!
//! * `Arbitrate` — the bus is idle and at least one controller has a
//!   pending frame. All operational controllers contend with their
//!   lowest pending identifier; the lowest identifier on the wire wins
//!   (CAN's bitwise arbitration resolved in one step, which is exact
//!   because identifiers are unique). The winner's frame occupies the
//!   bus for its exact on-wire duration ([`bits::exact_frame_bits`]).
//! * `TxEnd` — the frame completed. Every operational node whose
//!   acceptance filters match receives it (minus omission-fault
//!   victims); the sender learns whether *all* operational nodes
//!   received it (`all_received`), which is the hook for the HRT
//!   channel's early-stop redundancy.
//! * `TxError` — the frame was corrupted partway; an error frame
//!   globalizes the failure, nobody receives anything, and the
//!   controller re-enters arbitration automatically (unless the request
//!   was single-shot).
//!
//! Non-preemption falls out of the model: between `Arbitrate` and
//! `TxEnd` the bus ignores newly submitted frames — they contend at the
//! next arbitration point, at most one maximal frame later (`ΔT_wait`).

use crate::bits::{exact_frame_bits, BitTiming, ERROR_FRAME_BITS};
use crate::controller::{Controller, TxHandle, TxRequest};
use crate::fault::{FaultDecision, FaultInjector};
use crate::frame::Frame;
use crate::id::{CanId, NodeId};
use rtec_sim::{Ctx, Duration, SourceId, Time, TimerId, TraceSink};
use serde::{Deserialize, Serialize};

/// Events the bus schedules for itself on the simulation engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CanEvent {
    /// Resolve arbitration among pending frames (bus idle).
    Arbitrate,
    /// The in-flight frame completed successfully on the wire.
    TxEnd,
    /// The in-flight frame was destroyed by an error frame.
    TxError,
    /// A bus-off node finished its recovery sequence (128 × 11
    /// recessive bits) and rejoins the bus.
    BusOffRecover(NodeId),
}

/// Minimal scheduling interface the bus needs. Implemented for
/// `Ctx<CanEvent>` directly and adaptable to any embedding event type
/// via [`MapScheduler`].
pub trait CanScheduler {
    /// Current simulated time.
    fn now(&self) -> Time;
    /// Schedule a bus event after a delay.
    fn schedule_after(&mut self, d: Duration, ev: CanEvent) -> TimerId;
    /// Cancel a previously scheduled bus event.
    fn cancel(&mut self, id: TimerId);
}

impl CanScheduler for Ctx<CanEvent> {
    fn now(&self) -> Time {
        Ctx::now(self)
    }
    fn schedule_after(&mut self, d: Duration, ev: CanEvent) -> TimerId {
        self.after(d, ev)
    }
    fn cancel(&mut self, id: TimerId) {
        Ctx::cancel(self, id)
    }
}

/// Adapter embedding [`CanEvent`]s into a larger world event type.
pub struct MapScheduler<'a, E, F: FnMut(CanEvent) -> E> {
    ctx: &'a mut Ctx<E>,
    wrap: F,
}

impl<'a, E, F: FnMut(CanEvent) -> E> MapScheduler<'a, E, F> {
    /// Wrap a world context with an event constructor.
    pub fn new(ctx: &'a mut Ctx<E>, wrap: F) -> Self {
        MapScheduler { ctx, wrap }
    }
}

impl<E, F: FnMut(CanEvent) -> E> CanScheduler for MapScheduler<'_, E, F> {
    fn now(&self) -> Time {
        self.ctx.now()
    }
    fn schedule_after(&mut self, d: Duration, ev: CanEvent) -> TimerId {
        let wrapped = (self.wrap)(ev);
        self.ctx.after(d, wrapped)
    }
    fn cancel(&mut self, id: TimerId) {
        self.ctx.cancel(id)
    }
}

/// Static bus parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct BusConfig {
    /// Bit timing (default 1 Mbit/s as in the paper).
    pub timing: BitTiming,
    /// Automatically recover bus-off nodes after 128 × 11 bit times
    /// (most controllers offer this; disable to model permanent node
    /// loss).
    pub bus_off_auto_recover: bool,
}

impl Default for BusConfig {
    fn default() -> Self {
        BusConfig {
            timing: BitTiming::MBIT_1,
            bus_off_auto_recover: true,
        }
    }
}

/// Aggregate bus statistics.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct BusStats {
    /// Frames completed successfully on the wire.
    pub frames_ok: u64,
    /// Transmission attempts destroyed by error frames.
    pub frames_corrupted: u64,
    /// Completed frames that suffered an omission fault.
    pub frames_with_omission: u64,
    /// Arbitration rounds resolved.
    pub arbitrations: u64,
    /// Total wire-busy time (successful frames + error wreckage).
    pub busy: Duration,
    /// Wire-busy time broken down by priority band: `[HRT, SRT, NRT]`.
    pub busy_by_band: [Duration; 3],
    /// Total bits successfully moved (including protocol overhead).
    pub bits_ok: u64,
    /// Payload bytes successfully moved.
    pub payload_bytes_ok: u64,
    /// Fault-confinement transitions into bus-off.
    pub bus_off_events: u64,
}

impl BusStats {
    /// Wire utilization over an observation window.
    pub fn utilization(&self, window: Duration) -> f64 {
        if window.is_zero() {
            0.0
        } else {
            self.busy.as_ns() as f64 / window.as_ns() as f64
        }
    }

    fn band_index(priority: u8) -> usize {
        match priority {
            crate::id::PRIO_HRT => 0,
            p if p <= crate::id::PRIO_SRT_MAX => 1,
            _ => 2,
        }
    }
}

/// Something the embedding world must react to.
#[derive(Clone, Debug)]
pub enum Notification {
    /// A frame was delivered to `node`'s host (passed acceptance
    /// filtering, not an omission victim).
    Rx {
        /// Receiving node.
        node: NodeId,
        /// The delivered frame.
        frame: Frame,
        /// Wire completion instant.
        completed_at: Time,
    },
    /// The sender's request completed on the wire.
    TxCompleted {
        /// Sending node.
        node: NodeId,
        /// Handle of the completed request.
        handle: TxHandle,
        /// Middleware correlation tag.
        tag: u64,
        /// The frame as transmitted (with any rewritten priority).
        frame: Frame,
        /// Number of wire attempts this request took.
        attempts: u32,
        /// `true` iff every operational node received the frame —
        /// the signal that lets the HRT publisher skip redundant
        /// retransmissions (§3.2).
        all_received: bool,
        /// When this attempt won arbitration.
        started: Time,
        /// Exact wire duration of this attempt.
        duration: Duration,
    },
    /// An attempt was corrupted; the controller will retry
    /// automatically.
    TxError {
        /// Sending node.
        node: NodeId,
        /// Handle of the affected request.
        handle: TxHandle,
        /// Middleware correlation tag.
        tag: u64,
        /// Attempts so far (including this failed one).
        attempts: u32,
    },
    /// A single-shot attempt was corrupted; the request is dropped.
    TxFailed {
        /// Sending node.
        node: NodeId,
        /// Handle of the dropped request.
        handle: TxHandle,
        /// Middleware correlation tag.
        tag: u64,
        /// Attempts made.
        attempts: u32,
    },
    /// A node's fault-confinement state changed (error counters crossed
    /// a threshold, or a bus-off node recovered).
    ErrorStateChanged {
        /// The affected node.
        node: NodeId,
        /// Its new state.
        state: crate::controller::ErrorState,
    },
    /// Two nodes contended with the same identifier — a configuration
    /// error the middleware must prevent (TxNode uniqueness, §3.5).
    DuplicateId {
        /// The clashing identifier.
        id: CanId,
        /// The nodes that contended with it.
        nodes: Vec<NodeId>,
    },
}

#[derive(Clone, Debug)]
struct Inflight {
    node: NodeId,
    handle: TxHandle,
    frame: Frame,
    tag: u64,
    single_shot: bool,
    attempts: u32,
    started: Time,
    duration: Duration,
    decision: FaultDecision,
}

/// The simulated CAN bus: a set of controllers sharing one wire.
pub struct CanBus {
    config: BusConfig,
    controllers: Vec<Controller>,
    injector: FaultInjector,
    inflight: Option<Inflight>,
    arb_scheduled: bool,
    /// Per-node suspend-transmission end (error-passive nodes pause 8
    /// bit times after transmitting).
    suspend_until: Vec<Time>,
    trace: TraceSink,
    /// Interned `"bus"` source handle for the attached sink, so hot
    /// emit sites pass a `u32` instead of a string per event.
    trace_src: SourceId,
    /// Aggregate statistics.
    pub stats: BusStats,
}

impl CanBus {
    /// Create a bus with `num_nodes` controllers (node ids `0..n`).
    pub fn new(config: BusConfig, num_nodes: usize, injector: FaultInjector) -> Self {
        assert!(num_nodes >= 1, "a bus needs at least one node");
        assert!(num_nodes <= 128, "TxNode field limits the bus to 128 nodes");
        CanBus {
            config,
            controllers: (0..num_nodes)
                .map(|i| Controller::new(NodeId(i as u8)))
                .collect(),
            injector,
            inflight: None,
            arb_scheduled: false,
            suspend_until: vec![Time::ZERO; num_nodes],
            trace: TraceSink::disabled(),
            trace_src: TraceSink::disabled().intern("bus"),
            stats: BusStats::default(),
        }
    }

    /// Attach a trace sink.
    pub fn set_trace(&mut self, trace: TraceSink) {
        self.trace_src = trace.intern("bus");
        self.trace = trace;
    }

    /// Bus configuration.
    pub fn config(&self) -> &BusConfig {
        &self.config
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.controllers.len()
    }

    /// Immutable access to a node's controller.
    pub fn controller(&self, node: NodeId) -> &Controller {
        &self.controllers[node.index()]
    }

    /// Mutable access to a node's controller (filter management).
    pub fn controller_mut(&mut self, node: NodeId) -> &mut Controller {
        &mut self.controllers[node.index()]
    }

    /// Mutable access to the fault injector (mid-run model changes,
    /// activation-boundary resets).
    pub fn injector_mut(&mut self) -> &mut FaultInjector {
        &mut self.injector
    }

    /// `true` while a frame occupies the wire.
    pub fn is_busy(&self) -> bool {
        self.inflight.is_some()
    }

    /// Identifier currently occupying the wire, if any.
    pub fn inflight_id(&self) -> Option<CanId> {
        self.inflight.as_ref().map(|f| f.frame.id)
    }

    /// Submit a transmit request on behalf of `node`; schedules an
    /// arbitration point if the bus is idle.
    pub fn submit(
        &mut self,
        sched: &mut impl CanScheduler,
        node: NodeId,
        request: TxRequest,
    ) -> TxHandle {
        let handle = self.controllers[node.index()].submit(request);
        self.kick(sched);
        handle
    }

    /// Withdraw a pending request. Fails (returns `false`) if the frame
    /// is currently on the wire — transmissions are non-preemptible.
    pub fn abort(&mut self, node: NodeId, handle: TxHandle) -> bool {
        if self.is_handle_inflight(node, handle) {
            return false;
        }
        self.controllers[node.index()].abort(handle)
    }

    /// Rewrite the identifier of a pending request (priority
    /// promotion). Fails if the frame is on the wire or already done.
    pub fn update_id(&mut self, node: NodeId, handle: TxHandle, new_id: CanId) -> bool {
        if self.is_handle_inflight(node, handle) {
            return false;
        }
        self.controllers[node.index()].update_id(handle, new_id)
    }

    fn is_handle_inflight(&self, node: NodeId, handle: TxHandle) -> bool {
        self.inflight
            .as_ref()
            .is_some_and(|f| f.node == node && f.handle == handle)
    }

    /// Ensure an arbitration point is scheduled if the bus is idle and
    /// work is pending.
    pub fn kick(&mut self, sched: &mut impl CanScheduler) {
        if self.inflight.is_none()
            && !self.arb_scheduled
            && self
                .controllers
                .iter()
                .any(|c| c.can_transmit() && c.contending_id().is_some())
        {
            sched.schedule_after(Duration::ZERO, CanEvent::Arbitrate);
            self.arb_scheduled = true;
        }
    }

    /// Dispatch one bus event, producing notifications for the
    /// embedding world.
    pub fn handle(&mut self, sched: &mut impl CanScheduler, ev: CanEvent) -> Vec<Notification> {
        match ev {
            CanEvent::Arbitrate => self.on_arbitrate(sched),
            CanEvent::TxEnd => self.on_tx_end(sched),
            CanEvent::TxError => self.on_tx_error(sched),
            CanEvent::BusOffRecover(node) => self.on_bus_off_recover(sched, node),
        }
    }

    fn on_arbitrate(&mut self, sched: &mut impl CanScheduler) -> Vec<Notification> {
        self.arb_scheduled = false;
        if self.inflight.is_some() {
            return Vec::new(); // stale arbitration point
        }
        let mut notes = Vec::new();
        let now = sched.now();
        // Gather each transmit-capable controller's contending
        // identifier; error-passive nodes sit out their suspend pause.
        let mut suspended_min: Option<Time> = None;
        let mut candidates: Vec<(CanId, NodeId)> = self
            .controllers
            .iter()
            .filter(|c| c.can_transmit())
            .filter_map(|c| c.contending_id().map(|id| (id, c.node())))
            .filter(|&(_, node)| {
                let until = self.suspend_until[node.index()];
                if now < until {
                    suspended_min = Some(suspended_min.map_or(until, |m: Time| m.min(until)));
                    false
                } else {
                    true
                }
            })
            .collect();
        if candidates.is_empty() {
            if let Some(resume) = suspended_min {
                // Everyone with work is suspended: retry when the first
                // pause ends.
                sched.schedule_after(resume.saturating_since(now), CanEvent::Arbitrate);
                self.arb_scheduled = true;
            }
            return notes;
        }
        candidates.sort_unstable();
        // Identifier uniqueness check (protocol invariant, §3.5).
        if candidates.len() >= 2 && candidates[0].0 == candidates[1].0 {
            let id = candidates[0].0;
            let nodes = candidates
                .iter()
                .take_while(|(cid, _)| *cid == id)
                .map(|&(_, n)| n)
                .collect();
            notes.push(Notification::DuplicateId { id, nodes });
            // Deterministic resolution: lowest node id proceeds.
        }
        let (winner_id, winner_node) = candidates[0];
        self.stats.arbitrations += 1;
        if self.trace.is_enabled() {
            // One "cand" entry per contender: node in the high half,
            // raw 29-bit identifier in the low half.
            let mut fields: Vec<(&'static str, u64)> = candidates
                .iter()
                .map(|&(id, node)| ("cand", (u64::from(node.0) << 32) | u64::from(id.raw())))
                .collect();
            fields.push(("win", u64::from(winner_id.raw())));
            self.trace.emit_fields(now, self.trace_src, "arb", &fields);
        }

        let controller = &mut self.controllers[winner_node.index()];
        let pending = controller
            .best_pending()
            .expect("winner has a pending frame");
        let handle = pending.handle;
        let frame = pending.request.frame;
        let single_shot = pending.request.single_shot;
        let tag = pending.request.tag;
        debug_assert_eq!(frame.id, winner_id);
        let attempts = {
            let p = controller.pending_mut(handle).expect("pending exists");
            p.attempts += 1;
            p.attempts
        };

        let receivers: Vec<NodeId> = self
            .controllers
            .iter()
            .filter(|c| {
                c.is_operational()
                    && c.error_state() != crate::controller::ErrorState::BusOff
                    && c.node() != winner_node
            })
            .map(|c| c.node())
            .collect();
        let decision = self.injector.decide(now, &frame, &receivers);
        let full_bits = exact_frame_bits(&frame);
        let duration = match &decision {
            FaultDecision::Corrupt { fraction } => {
                // Bits on the wire before the error, then the error
                // frame sequence.
                let sent = ((f64::from(full_bits) * fraction).ceil() as u32).clamp(1, full_bits);
                self.config.timing.duration_of(sent + ERROR_FRAME_BITS)
            }
            _ => self.config.timing.duration_of(full_bits),
        };
        self.trace.emit_fields(
            now,
            self.trace_src,
            match decision {
                FaultDecision::Corrupt { .. } => "tx_start_corrupt",
                FaultDecision::Omit { .. } => "tx_start_omit",
                FaultDecision::Ok => "tx_start",
            },
            &[
                ("id", u64::from(frame.id.raw())),
                ("node", u64::from(winner_node.0)),
                ("attempt", u64::from(attempts)),
                ("tag", tag),
            ],
        );
        let ev = if matches!(decision, FaultDecision::Corrupt { .. }) {
            CanEvent::TxError
        } else {
            CanEvent::TxEnd
        };
        sched.schedule_after(duration, ev);
        self.inflight = Some(Inflight {
            node: winner_node,
            handle,
            frame,
            tag,
            single_shot,
            attempts,
            started: now,
            duration,
            decision,
        });
        notes
    }

    fn on_tx_end(&mut self, sched: &mut impl CanScheduler) -> Vec<Notification> {
        let fl = self.inflight.take().expect("TxEnd with no inflight frame");
        let now = sched.now();
        let mut notes = Vec::new();
        let victims: &[NodeId] = match &fl.decision {
            FaultDecision::Omit { victims } => victims,
            _ => &[],
        };
        // Deliver to every operational, non-victim node whose filters
        // accept the identifier.
        let mut all_received = true;
        for c in &mut self.controllers {
            if c.node() == fl.node
                || !c.is_operational()
                || c.error_state() == crate::controller::ErrorState::BusOff
            {
                continue;
            }
            if victims.contains(&c.node()) {
                all_received = false;
                continue;
            }
            if c.accepts(fl.frame.id) {
                c.stats.received += 1;
                notes.push(Notification::Rx {
                    node: c.node(),
                    frame: fl.frame,
                    completed_at: now,
                });
            } else {
                c.stats.filtered_out += 1;
            }
        }
        // Book-keeping.
        self.stats.frames_ok += 1;
        if !all_received {
            self.stats.frames_with_omission += 1;
        }
        self.stats.busy += fl.duration;
        self.stats.busy_by_band[BusStats::band_index(fl.frame.id.priority())] += fl.duration;
        self.stats.bits_ok += u64::from(exact_frame_bits(&fl.frame));
        self.stats.payload_bytes_ok += u64::from(fl.frame.dlc());
        // Fault confinement: receive counters tick down on success.
        for c in &mut self.controllers {
            if c.node() != fl.node
                && c.is_operational()
                && c.error_state() != crate::controller::ErrorState::BusOff
            {
                if let Some(state) = c.on_rx_success() {
                    notes.push(Notification::ErrorStateChanged {
                        node: c.node(),
                        state,
                    });
                }
            }
        }
        let sender = &mut self.controllers[fl.node.index()];
        sender.stats.transmitted += 1;
        sender.take(fl.handle);
        if let Some(state) = sender.on_tx_success() {
            notes.push(Notification::ErrorStateChanged {
                node: fl.node,
                state,
            });
        }
        // Error-passive transmitters must insert a suspend pause before
        // contending again (8 bit times).
        if self.controllers[fl.node.index()].error_state() == crate::controller::ErrorState::Passive
        {
            self.suspend_until[fl.node.index()] = now + self.config.timing.duration_of(8);
        }
        self.trace.emit_fields(
            now,
            self.trace_src,
            "tx_end",
            &[
                ("id", u64::from(fl.frame.id.raw())),
                ("node", u64::from(fl.node.0)),
                ("attempt", u64::from(fl.attempts)),
                ("tag", fl.tag),
                ("all", u64::from(all_received)),
            ],
        );
        notes.push(Notification::TxCompleted {
            node: fl.node,
            handle: fl.handle,
            tag: fl.tag,
            frame: fl.frame,
            attempts: fl.attempts,
            all_received,
            started: fl.started,
            duration: fl.duration,
        });
        self.kick(sched);
        notes
    }

    fn on_tx_error(&mut self, sched: &mut impl CanScheduler) -> Vec<Notification> {
        let fl = self
            .inflight
            .take()
            .expect("TxError with no inflight frame");
        let now = sched.now();
        let mut notes = Vec::new();
        self.stats.frames_corrupted += 1;
        self.stats.busy += fl.duration;
        self.stats.busy_by_band[BusStats::band_index(fl.frame.id.priority())] += fl.duration;
        // Fault confinement: every non-sender observing the error frame
        // bumps its receive error counter.
        for c in &mut self.controllers {
            if c.node() != fl.node
                && c.is_operational()
                && c.error_state() != crate::controller::ErrorState::BusOff
            {
                if let Some(state) = c.on_rx_error() {
                    notes.push(Notification::ErrorStateChanged {
                        node: c.node(),
                        state,
                    });
                }
            }
        }
        let sender = &mut self.controllers[fl.node.index()];
        sender.stats.tx_errors += 1;
        let sender_transition = sender.on_tx_error();
        let sender_bus_off = sender.error_state() == crate::controller::ErrorState::BusOff;
        self.trace.emit_fields(
            now,
            self.trace_src,
            "tx_error",
            &[
                ("id", u64::from(fl.frame.id.raw())),
                ("node", u64::from(fl.node.0)),
                ("attempt", u64::from(fl.attempts)),
                ("tag", fl.tag),
            ],
        );
        if sender_bus_off {
            // Entering bus-off cleared the queue: the request is gone.
            self.stats.bus_off_events += 1;
            notes.push(Notification::TxFailed {
                node: fl.node,
                handle: fl.handle,
                tag: fl.tag,
                attempts: fl.attempts,
            });
            if self.config.bus_off_auto_recover {
                // 128 occurrences of 11 consecutive recessive bits.
                sched.schedule_after(
                    self.config.timing.duration_of(128 * 11),
                    CanEvent::BusOffRecover(fl.node),
                );
            }
        } else if fl.single_shot {
            let sender = &mut self.controllers[fl.node.index()];
            sender.take(fl.handle);
            notes.push(Notification::TxFailed {
                node: fl.node,
                handle: fl.handle,
                tag: fl.tag,
                attempts: fl.attempts,
            });
        } else {
            // Request stays queued: automatic retransmission re-enters
            // arbitration.
            notes.push(Notification::TxError {
                node: fl.node,
                handle: fl.handle,
                tag: fl.tag,
                attempts: fl.attempts,
            });
        }
        if let Some(state) = sender_transition {
            notes.push(Notification::ErrorStateChanged {
                node: fl.node,
                state,
            });
        }
        // Error-passive transmitters pause before re-contending.
        if self.controllers[fl.node.index()].error_state() == crate::controller::ErrorState::Passive
        {
            self.suspend_until[fl.node.index()] = now + self.config.timing.duration_of(8);
        }
        self.kick(sched);
        notes
    }

    fn on_bus_off_recover(
        &mut self,
        sched: &mut impl CanScheduler,
        node: NodeId,
    ) -> Vec<Notification> {
        let c = &mut self.controllers[node.index()];
        if c.error_state() != crate::controller::ErrorState::BusOff {
            return Vec::new();
        }
        c.recover_from_bus_off();
        let note = Notification::ErrorStateChanged {
            node,
            state: crate::controller::ErrorState::Active,
        };
        self.trace.emit_fields(
            sched.now(),
            self.trace_src,
            "bus_off_recover",
            &[("node", u64::from(node.0))],
        );
        self.kick(sched);
        vec![note]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{AcceptanceFilter, FilterMode};
    use crate::fault::{FaultModel, OmissionScope};
    use rtec_sim::{Engine, Model, Rng};

    fn req(prio: u8, etag: u16, payload: &[u8]) -> TxRequest {
        TxRequest {
            frame: Frame::new(CanId::new(prio, 1, etag), payload),
            single_shot: false,
            tag: u64::from(etag),
        }
    }

    fn req_from(prio: u8, tx: u8, etag: u16) -> TxRequest {
        TxRequest {
            frame: Frame::new(CanId::new(prio, tx, etag), &[0xAB]),
            single_shot: false,
            tag: u64::from(etag),
        }
    }

    // Submissions are injected as engine events so bus and context are
    // never borrowed simultaneously.
    enum DrivenEvent {
        Can(CanEvent),
        Submit(NodeId, TxRequest),
    }

    struct DrivenWorld {
        bus: CanBus,
        log: Vec<Notification>,
        handles: Vec<TxHandle>,
    }

    impl Model for DrivenWorld {
        type Event = DrivenEvent;
        fn handle(&mut self, ctx: &mut Ctx<DrivenEvent>, ev: DrivenEvent) {
            let mut sched = MapScheduler::new(ctx, DrivenEvent::Can);
            match ev {
                DrivenEvent::Can(c) => {
                    let notes = self.bus.handle(&mut sched, c);
                    self.log.extend(notes);
                }
                DrivenEvent::Submit(node, r) => {
                    let h = self.bus.submit(&mut sched, node, r);
                    self.handles.push(h);
                }
            }
        }
    }

    fn driven(nodes: usize, injector: FaultInjector) -> Engine<DrivenWorld> {
        let mut bus = CanBus::new(BusConfig::default(), nodes, injector);
        for i in 0..nodes {
            bus.controller_mut(NodeId(i as u8))
                .set_filter_mode(FilterMode::AcceptAll);
        }
        Engine::new(DrivenWorld {
            bus,
            log: vec![],
            handles: vec![],
        })
    }

    fn completed(log: &[Notification]) -> Vec<(CanId, Time)> {
        log.iter()
            .filter_map(|n| match n {
                Notification::TxCompleted { frame, started, .. } => Some((frame.id, *started)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn single_frame_is_delivered_to_all_others() {
        let mut e = driven(4, FaultInjector::none());
        e.schedule_at(
            Time::ZERO,
            DrivenEvent::Submit(NodeId(0), req(10, 1, &[1, 2, 3])),
        );
        e.run();
        let rx: Vec<NodeId> = e
            .model
            .log
            .iter()
            .filter_map(|n| match n {
                Notification::Rx { node, .. } => Some(*node),
                _ => None,
            })
            .collect();
        assert_eq!(rx, vec![NodeId(1), NodeId(2), NodeId(3)]);
        let done = completed(&e.model.log);
        assert_eq!(done.len(), 1);
        assert_eq!(e.model.bus.stats.frames_ok, 1);
        // all_received must be true on a fault-free bus.
        assert!(e.model.log.iter().any(|n| matches!(
            n,
            Notification::TxCompleted {
                all_received: true,
                ..
            }
        )));
    }

    #[test]
    fn lowest_id_wins_arbitration() {
        let mut e = driven(3, FaultInjector::none());
        // Both submitted at t=0; node 1's priority 5 must beat node 2's 50.
        e.schedule_at(
            Time::ZERO,
            DrivenEvent::Submit(NodeId(2), req_from(50, 2, 7)),
        );
        e.schedule_at(
            Time::ZERO,
            DrivenEvent::Submit(NodeId(1), req_from(5, 1, 8)),
        );
        e.run();
        let done = completed(&e.model.log);
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].0.priority(), 5, "higher priority first");
        assert_eq!(done[1].0.priority(), 50);
    }

    #[test]
    fn ongoing_transmission_is_not_preempted() {
        let mut e = driven(3, FaultInjector::none());
        // Node 2 starts a low-priority frame; node 1 submits priority 0
        // mid-flight. The HRT frame must wait for TxEnd, then win.
        e.schedule_at(
            Time::ZERO,
            DrivenEvent::Submit(NodeId(2), req_from(200, 2, 7)),
        );
        e.schedule_at(
            Time::from_us(20),
            DrivenEvent::Submit(NodeId(1), req_from(0, 1, 8)),
        );
        e.run();
        let done = completed(&e.model.log);
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].0.priority(), 200, "in-flight frame completes");
        assert_eq!(done[1].0.priority(), 0);
        // The HRT frame started exactly when the first frame ended.
        let first_end = done[1].1;
        assert!(first_end > Time::from_us(20));
        // Blocking is bounded by one maximal frame.
        assert!(
            first_end.saturating_since(Time::from_us(20)) <= BitTiming::MBIT_1.delta_t_wait_tight()
        );
    }

    #[test]
    fn back_to_back_frames_have_exact_durations() {
        let mut e = driven(2, FaultInjector::none());
        let r1 = req(10, 1, &[0x55; 8]);
        let r2 = req(20, 2, &[0x55; 8]);
        let bits1 = exact_frame_bits(&r1.frame);
        let bits2 = exact_frame_bits(&r2.frame);
        e.schedule_at(Time::ZERO, DrivenEvent::Submit(NodeId(0), r1));
        e.schedule_at(Time::ZERO, DrivenEvent::Submit(NodeId(0), r2));
        e.run();
        assert_eq!(
            e.now(),
            Time::ZERO + BitTiming::MBIT_1.duration_of(bits1 + bits2)
        );
        assert_eq!(e.model.bus.stats.bits_ok, u64::from(bits1 + bits2));
    }

    #[test]
    fn acceptance_filters_select_receivers() {
        let mut e = driven(3, FaultInjector::none());
        e.model
            .bus
            .controller_mut(NodeId(1))
            .set_filter_mode(FilterMode::Filtered);
        e.model
            .bus
            .controller_mut(NodeId(1))
            .set_filters(vec![AcceptanceFilter::for_etag(42)]);
        e.model
            .bus
            .controller_mut(NodeId(2))
            .set_filter_mode(FilterMode::Filtered);
        e.model
            .bus
            .controller_mut(NodeId(2))
            .set_filters(vec![AcceptanceFilter::for_etag(43)]);
        e.schedule_at(
            Time::ZERO,
            DrivenEvent::Submit(NodeId(0), req(10, 42, &[1])),
        );
        e.run();
        let rx: Vec<NodeId> = e
            .model
            .log
            .iter()
            .filter_map(|n| match n {
                Notification::Rx { node, .. } => Some(*node),
                _ => None,
            })
            .collect();
        assert_eq!(rx, vec![NodeId(1)], "only the subscribed node receives");
        assert_eq!(e.model.bus.controller(NodeId(2)).stats.filtered_out, 1);
        // Filtering is host-side only: all_received still true.
        assert!(e.model.log.iter().any(|n| matches!(
            n,
            Notification::TxCompleted {
                all_received: true,
                ..
            }
        )));
    }

    #[test]
    fn corruption_triggers_automatic_retransmission() {
        // Corrupt exactly the first attempt via the window model.
        let mut e = driven(
            2,
            FaultInjector::new(
                FaultModel::Window {
                    from_ns: 0,
                    to_ns: 1, // only the attempt starting at t=0
                    corruption_p: 1.0,
                },
                Rng::seed_from_u64(1),
            ),
        );
        e.schedule_at(Time::ZERO, DrivenEvent::Submit(NodeId(0), req(10, 1, &[9])));
        e.run();
        let errors = e
            .model
            .log
            .iter()
            .filter(|n| matches!(n, Notification::TxError { .. }))
            .count();
        assert_eq!(errors, 1);
        let done: Vec<u32> = e
            .model
            .log
            .iter()
            .filter_map(|n| match n {
                Notification::TxCompleted { attempts, .. } => Some(*attempts),
                _ => None,
            })
            .collect();
        assert_eq!(done, vec![2], "second attempt succeeds");
        assert_eq!(e.model.bus.stats.frames_corrupted, 1);
        assert_eq!(e.model.bus.stats.frames_ok, 1);
        // Exactly one Rx in the end.
        let rx = e
            .model
            .log
            .iter()
            .filter(|n| matches!(n, Notification::Rx { .. }))
            .count();
        assert_eq!(rx, 1);
    }

    #[test]
    fn single_shot_corruption_drops_request() {
        let mut e = driven(
            2,
            FaultInjector::new(
                FaultModel::Window {
                    from_ns: 0,
                    to_ns: 1,
                    corruption_p: 1.0,
                },
                Rng::seed_from_u64(2),
            ),
        );
        let mut r = req(10, 1, &[9]);
        r.single_shot = true;
        e.schedule_at(Time::ZERO, DrivenEvent::Submit(NodeId(0), r));
        e.run();
        assert!(e
            .model
            .log
            .iter()
            .any(|n| matches!(n, Notification::TxFailed { .. })));
        assert_eq!(e.model.bus.stats.frames_ok, 0);
        assert_eq!(e.model.bus.controller(NodeId(0)).queue_len(), 0);
    }

    #[test]
    fn omission_withholds_frame_from_victims_and_flags_sender() {
        let mut e = driven(
            4,
            FaultInjector::new(
                FaultModel::Iid {
                    corruption_p: 0.0,
                    omission_p: 1.0,
                    omission_scope: OmissionScope::OneRandomReceiver,
                },
                Rng::seed_from_u64(3),
            ),
        );
        e.schedule_at(Time::ZERO, DrivenEvent::Submit(NodeId(0), req(10, 1, &[1])));
        e.run();
        let rx = e
            .model
            .log
            .iter()
            .filter(|n| matches!(n, Notification::Rx { .. }))
            .count();
        assert_eq!(rx, 2, "one of three receivers omitted");
        assert!(e.model.log.iter().any(|n| matches!(
            n,
            Notification::TxCompleted {
                all_received: false,
                ..
            }
        )));
        assert_eq!(e.model.bus.stats.frames_with_omission, 1);
    }

    #[test]
    fn crashed_node_does_not_receive_or_count() {
        let mut e = driven(3, FaultInjector::none());
        e.model.bus.controller_mut(NodeId(2)).set_operational(false);
        e.schedule_at(Time::ZERO, DrivenEvent::Submit(NodeId(0), req(10, 1, &[1])));
        e.run();
        let rx: Vec<NodeId> = e
            .model
            .log
            .iter()
            .filter_map(|n| match n {
                Notification::Rx { node, .. } => Some(*node),
                _ => None,
            })
            .collect();
        assert_eq!(rx, vec![NodeId(1)]);
        // all_received considers only operational nodes.
        assert!(e.model.log.iter().any(|n| matches!(
            n,
            Notification::TxCompleted {
                all_received: true,
                ..
            }
        )));
    }

    #[test]
    fn abort_pending_works_but_inflight_refused() {
        let mut e = driven(2, FaultInjector::none());
        e.schedule_at(Time::ZERO, DrivenEvent::Submit(NodeId(0), req(10, 1, &[1])));
        e.schedule_at(Time::ZERO, DrivenEvent::Submit(NodeId(0), req(20, 2, &[2])));
        // Let arbitration start frame 1 (t=0 events, arb at t=0), then
        // abort the queued frame 2 mid-flight and try to abort inflight.
        e.run_until(Time::from_us(10));
        assert!(e.model.bus.is_busy());
        let h_inflight = e.model.handles[0];
        let h_queued = e.model.handles[1];
        assert!(
            !e.model.bus.abort(NodeId(0), h_inflight),
            "inflight refuses abort"
        );
        assert!(e.model.bus.abort(NodeId(0), h_queued));
        e.run();
        let done = completed(&e.model.log);
        assert_eq!(done.len(), 1, "only the inflight frame completed");
    }

    #[test]
    fn update_id_promotes_queued_frame_to_win_next_arbitration() {
        let mut e = driven(3, FaultInjector::none());
        e.schedule_at(
            Time::ZERO,
            DrivenEvent::Submit(NodeId(0), req_from(100, 0, 1)),
        );
        e.schedule_at(
            Time::ZERO,
            DrivenEvent::Submit(NodeId(1), req_from(150, 1, 2)),
        );
        e.schedule_at(
            Time::ZERO,
            DrivenEvent::Submit(NodeId(2), req_from(140, 2, 3)),
        );
        e.run_until(Time::from_us(10));
        // Frame p=100 is in flight; promote node1's p=150 to p=0.
        let h1 = e.model.handles[1];
        assert!(e.model.bus.update_id(NodeId(1), h1, CanId::new(0, 1, 2)));
        e.run();
        let done = completed(&e.model.log);
        let prios: Vec<u8> = done.iter().map(|(id, _)| id.priority()).collect();
        assert_eq!(prios, vec![100, 0, 140], "promoted frame jumps the queue");
    }

    #[test]
    fn duplicate_id_detected() {
        let mut e = driven(3, FaultInjector::none());
        // Two nodes misconfigured with the same TxNode field.
        e.schedule_at(
            Time::ZERO,
            DrivenEvent::Submit(NodeId(0), req_from(10, 5, 1)),
        );
        e.schedule_at(
            Time::ZERO,
            DrivenEvent::Submit(NodeId(1), req_from(10, 5, 1)),
        );
        e.run();
        assert!(e
            .model
            .log
            .iter()
            .any(|n| matches!(n, Notification::DuplicateId { .. })));
    }

    #[test]
    fn utilization_accounting() {
        let mut e = driven(2, FaultInjector::none());
        let r = req(0, 1, &[0x12; 8]); // HRT band
        let bits = exact_frame_bits(&r.frame);
        e.schedule_at(Time::ZERO, DrivenEvent::Submit(NodeId(0), r));
        e.schedule_at(
            Time::ZERO,
            DrivenEvent::Submit(NodeId(0), req(255, 2, &[1])),
        ); // NRT band
        e.run();
        let stats = &e.model.bus.stats;
        assert_eq!(stats.busy_by_band[0], BitTiming::MBIT_1.duration_of(bits));
        assert!(stats.busy_by_band[2] > Duration::ZERO);
        assert_eq!(stats.busy_by_band[1], Duration::ZERO);
        assert_eq!(stats.busy, stats.busy_by_band[0] + stats.busy_by_band[2]);
        let window = e.now().saturating_since(Time::ZERO);
        assert!(
            (stats.utilization(window) - 1.0).abs() < 1e-9,
            "bus was saturated"
        );
    }
}
