//! # rtec-can — a bit-level CAN 2.0B bus simulator
//!
//! This crate models the properties of the Controller Area Network that
//! the event-channel protocol of Kaiser/Brudna/Mitidieri (IPPS 2003)
//! exploits:
//!
//! * **Bitwise priority arbitration** — when the bus becomes idle, the
//!   pending frame with the numerically lowest 29-bit identifier wins
//!   (dominant bits win, and `0` is dominant). The identifier is thus a
//!   distributed priority: the protocol layers a `priority | TxNode |
//!   etag` structure on top of it ([`id::CanId`]).
//! * **Non-preemptible frames** — an ongoing transmission can never be
//!   interrupted; a higher-priority frame waits at most one maximal
//!   frame length (`ΔT_wait`, see [`bits`]).
//! * **Acknowledgement / consistency** — a successfully transmitted
//!   frame is seen by all operational nodes; the sender can detect
//!   whether that happened ([`bus::Notification::TxCompleted`]'s
//!   `all_received` flag), which the HRT channel uses to *stop*
//!   redundant retransmissions early.
//! * **Error signalling with automatic retransmission** — a corrupted
//!   frame is destroyed globally by an error frame and retransmitted
//!   automatically (unless single-shot), re-entering arbitration.
//!
//! Frame timings are exact: frames are serialized to their on-wire bit
//! pattern including bit stuffing and CRC-15 ([`bits`]), so bandwidth
//! and blocking-time measurements reflect the real protocol overheads.
//!
//! Faults are injected by [`fault::FaultInjector`]: i.i.d. or bursty
//! corruption (error frames), and omission faults (a subset of receivers
//! misses an otherwise valid frame) — the fault class the paper's time
//! redundancy is designed to mask.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bits;
pub mod bus;
pub mod codec;
pub mod controller;
pub mod fault;
pub mod frame;
pub mod id;

pub use bits::{exact_frame_bits, worst_case_frame_bits, BitTiming};
pub use bus::{BusConfig, BusStats, CanBus, CanEvent, CanScheduler, MapScheduler, Notification};
pub use codec::{CodecError, CODEC_VERSION};
pub use controller::{AcceptanceFilter, Controller, ErrorState, FilterMode, TxHandle, TxRequest};
pub use fault::{FaultDecision, FaultInjector, FaultModel, OmissionScope};
pub use frame::{Frame, FrameError};
pub use id::{
    CanId, IdError, NodeId, PRIO_HRT, PRIO_NRT_MAX, PRIO_NRT_MIN, PRIO_SRT_MAX, PRIO_SRT_MIN,
};
