//! 29-bit CAN 2.0B identifiers structured per the event-channel protocol.
//!
//! The paper (§3.5) partitions the 29-bit extended identifier into three
//! fields:
//!
//! ```text
//!   | priority (8 bits) | TxNode (7 bits) | etag (14 bits) |
//!     bits 28..21         bits 20..14       bits 13..0
//! ```
//!
//! * `priority` — the message priority. On CAN, the *lowest* binary
//!   value wins arbitration, so priority 0 is the single highest
//!   priority, reserved for hard real-time messages ([`PRIO_HRT`]).
//! * `TxNode` — the sending node, making the full identifier unique
//!   system-wide (the CAN specification requires that no two nodes ever
//!   contend with the same identifier, because arbitration must resolve
//!   to exactly one winner).
//! * `etag` — the *event tag*: the short network-level name that the
//!   binding protocol assigns to an event-channel subject.
//!
//! The priority band partition of §3.3 is exposed as constants:
//! `0 = P_HRT < P_SRT (1..=250) < P_NRT (251..=255)`.

use core::fmt;
use serde::{Deserialize, Serialize};

/// Number of bits in the priority field.
pub const PRIORITY_BITS: u32 = 8;
/// Number of bits in the TxNode field.
pub const TXNODE_BITS: u32 = 7;
/// Number of bits in the etag field.
pub const ETAG_BITS: u32 = 14;

/// The single priority value reserved for hard real-time messages (§3.3).
pub const PRIO_HRT: u8 = 0;
/// Lowest-numbered (i.e. most urgent) soft real-time priority.
pub const PRIO_SRT_MIN: u8 = 1;
/// Highest-numbered (i.e. least urgent) soft real-time priority.
/// 250 levels (1..=250) as in the paper's running example (§3.4).
pub const PRIO_SRT_MAX: u8 = 250;
/// Lowest-numbered non-real-time priority (§3.4: 5 NRT levels).
pub const PRIO_NRT_MIN: u8 = 251;
/// Highest-numbered non-real-time priority.
pub const PRIO_NRT_MAX: u8 = 255;

/// Maximum TxNode value (7-bit field).
pub const TXNODE_MAX: u8 = (1 << TXNODE_BITS) as u8 - 1;
/// Maximum etag value (14-bit field).
pub const ETAG_MAX: u16 = (1 << ETAG_BITS) - 1;

/// Identifier of a node on the bus. The low 7 bits double as the
/// identifier's `TxNode` field once assigned by the configuration
/// protocol.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u8);

impl NodeId {
    /// Index into per-node arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A structured 29-bit CAN 2.0B extended identifier.
///
/// Ordering follows arbitration order: a *smaller* `CanId` wins the bus.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct CanId(u32);

/// A field of a structured identifier exceeded its bit width.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IdError {
    /// The TxNode field is limited to 7 bits.
    TxNodeTooLarge(u8),
    /// The etag field is limited to 14 bits.
    EtagTooLarge(u16),
    /// A raw identifier is limited to 29 bits.
    RawTooLarge(u32),
}

impl fmt::Display for IdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IdError::TxNodeTooLarge(n) => write!(f, "TxNode {n} exceeds 7 bits"),
            IdError::EtagTooLarge(e) => write!(f, "etag {e} exceeds 14 bits"),
            IdError::RawTooLarge(r) => write!(f, "identifier {r:#x} exceeds 29 bits"),
        }
    }
}

impl std::error::Error for IdError {}

impl CanId {
    /// Construct from the three protocol fields, validating field widths.
    pub fn try_new(priority: u8, txnode: u8, etag: u16) -> Result<Self, IdError> {
        if txnode > TXNODE_MAX {
            return Err(IdError::TxNodeTooLarge(txnode));
        }
        if etag > ETAG_MAX {
            return Err(IdError::EtagTooLarge(etag));
        }
        Ok(CanId(
            (u32::from(priority) << 21) | (u32::from(txnode) << 14) | u32::from(etag),
        ))
    }

    /// Construct from the three protocol fields.
    ///
    /// # Panics
    /// If `txnode` or `etag` exceed their field widths; use
    /// [`CanId::try_new`] for a fallible variant.
    pub fn new(priority: u8, txnode: u8, etag: u16) -> Self {
        match Self::try_new(priority, txnode, etag) {
            Ok(id) => id,
            Err(e) => panic!("{e}"),
        }
    }

    /// Construct from a raw 29-bit value, validating the width.
    pub fn try_from_raw(raw: u32) -> Result<Self, IdError> {
        if raw >= (1 << 29) {
            return Err(IdError::RawTooLarge(raw));
        }
        Ok(CanId(raw))
    }

    /// Construct from a raw 29-bit value.
    ///
    /// # Panics
    /// If `raw` exceeds 29 bits; use [`CanId::try_from_raw`] for a
    /// fallible variant.
    pub fn from_raw(raw: u32) -> Self {
        match Self::try_from_raw(raw) {
            Ok(id) => id,
            Err(e) => panic!("{e}"),
        }
    }

    /// The raw 29-bit value.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// The 8-bit priority field (0 = highest priority on the bus).
    #[inline]
    pub fn priority(self) -> u8 {
        (self.0 >> 21) as u8
    }

    /// The 7-bit sending-node field.
    #[inline]
    pub fn txnode(self) -> u8 {
        ((self.0 >> 14) & 0x7F) as u8
    }

    /// The 14-bit event-tag (subject binding) field.
    #[inline]
    pub fn etag(self) -> u16 {
        (self.0 & 0x3FFF) as u16
    }

    /// Copy of this identifier with the priority field replaced — the
    /// mechanism behind both LST priority raising (HRT, §3.2) and the
    /// dynamic priority promotion of SRT messages (§3.4).
    #[inline]
    pub fn with_priority(self, priority: u8) -> CanId {
        CanId((self.0 & 0x001F_FFFF) | (u32::from(priority) << 21))
    }

    /// `true` if the priority lies in the HRT band.
    #[inline]
    pub fn is_hrt(self) -> bool {
        self.priority() == PRIO_HRT
    }

    /// `true` if the priority lies in the SRT band (1..=250).
    #[inline]
    pub fn is_srt(self) -> bool {
        (PRIO_SRT_MIN..=PRIO_SRT_MAX).contains(&self.priority())
    }

    /// `true` if the priority lies in the NRT band (251..=255).
    #[inline]
    pub fn is_nrt(self) -> bool {
        self.priority() >= PRIO_NRT_MIN
    }

    /// `true` if this identifier beats `other` in arbitration
    /// (lower binary value = dominant = wins).
    #[inline]
    pub fn wins_against(self, other: CanId) -> bool {
        self.0 < other.0
    }
}

impl fmt::Debug for CanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CanId(p={}, tx={}, etag={})",
            self.priority(),
            self.txnode(),
            self.etag()
        )
    }
}

impl fmt::Display for CanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:#09x}[p{}/tx{}/e{}]",
            self.0,
            self.priority(),
            self.txnode(),
            self.etag()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_packing_roundtrip() {
        let id = CanId::new(17, 42, 0x1234);
        assert_eq!(id.priority(), 17);
        assert_eq!(id.txnode(), 42);
        assert_eq!(id.etag(), 0x1234);
    }

    #[test]
    fn field_extremes() {
        let id = CanId::new(255, TXNODE_MAX, ETAG_MAX);
        assert_eq!(id.priority(), 255);
        assert_eq!(id.txnode(), 127);
        assert_eq!(id.etag(), ETAG_MAX);
        assert_eq!(id.raw(), (1 << 29) - 1);
        let zero = CanId::new(0, 0, 0);
        assert_eq!(zero.raw(), 0);
    }

    #[test]
    #[should_panic(expected = "TxNode")]
    fn txnode_overflow_panics() {
        let _ = CanId::new(0, 128, 0);
    }

    #[test]
    #[should_panic(expected = "etag")]
    fn etag_overflow_panics() {
        let _ = CanId::new(0, 0, 1 << 14);
    }

    #[test]
    #[should_panic(expected = "29 bits")]
    fn raw_overflow_panics() {
        let _ = CanId::from_raw(1 << 29);
    }

    #[test]
    fn priority_dominates_arbitration() {
        // Any priority-0 id beats any id of priority >= 1 regardless of
        // the other fields — the invariant the HRT reservation relies on.
        let hrt = CanId::new(PRIO_HRT, TXNODE_MAX, ETAG_MAX);
        let srt = CanId::new(PRIO_SRT_MIN, 0, 0);
        assert!(hrt.wins_against(srt));
        assert!(!srt.wins_against(hrt));
    }

    #[test]
    fn band_relation_holds() {
        // 0 = P_HRT < P_SRT < P_NRT (§3.3).
        let hrt = CanId::new(PRIO_HRT, 1, 1);
        let srt_hi = CanId::new(PRIO_SRT_MIN, 1, 1);
        let srt_lo = CanId::new(PRIO_SRT_MAX, 1, 1);
        let nrt = CanId::new(PRIO_NRT_MIN, 1, 1);
        assert!(hrt.wins_against(srt_hi));
        assert!(srt_hi.wins_against(srt_lo));
        assert!(srt_lo.wins_against(nrt));
        assert!(hrt.is_hrt() && !hrt.is_srt() && !hrt.is_nrt());
        assert!(srt_hi.is_srt() && srt_lo.is_srt());
        assert!(nrt.is_nrt());
    }

    #[test]
    fn txnode_breaks_ties() {
        // Same priority + same etag but different senders must still be
        // distinct identifiers (CAN uniqueness requirement, §3.5).
        let a = CanId::new(10, 3, 77);
        let b = CanId::new(10, 4, 77);
        assert_ne!(a, b);
        assert!(a.wins_against(b));
    }

    #[test]
    fn with_priority_preserves_other_fields() {
        let id = CanId::new(200, 9, 1234);
        let promoted = id.with_priority(PRIO_HRT);
        assert_eq!(promoted.priority(), 0);
        assert_eq!(promoted.txnode(), 9);
        assert_eq!(promoted.etag(), 1234);
        // Promotion is what makes a message win arbitration.
        assert!(promoted.wins_against(id));
    }

    #[test]
    fn display_contains_fields() {
        let id = CanId::new(5, 6, 7);
        let s = format!("{id}");
        assert!(s.contains("p5"));
        assert!(s.contains("tx6"));
        assert!(s.contains("e7"));
    }
}
