//! CAN data frames: an identifier plus up to 8 payload bytes.
//!
//! The protocol only uses extended (29-bit identifier) data frames;
//! remote frames are not used by the middleware (events always carry
//! their content) and are not modelled.

use crate::id::CanId;
use core::fmt;
use serde::{Deserialize, Serialize};

/// Maximum CAN payload length in bytes.
pub const MAX_PAYLOAD: usize = 8;

/// A CAN 2.0B extended data frame.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Frame {
    /// The 29-bit structured identifier.
    pub id: CanId,
    /// Data length code (0..=8): number of valid payload bytes.
    dlc: u8,
    /// Payload storage; only the first `dlc` bytes are meaningful.
    data: [u8; MAX_PAYLOAD],
}

/// A frame could not be constructed from the given payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// A CAN frame carries at most 8 data bytes.
    PayloadTooLong(usize),
}

impl core::fmt::Display for FrameError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FrameError::PayloadTooLong(len) => {
                write!(f, "CAN payload limited to {MAX_PAYLOAD} bytes, got {len}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl Frame {
    /// Build a frame from an identifier and a payload slice, rejecting
    /// payloads that do not fit one CAN frame.
    pub fn try_new(id: CanId, payload: &[u8]) -> Result<Self, FrameError> {
        if payload.len() > MAX_PAYLOAD {
            return Err(FrameError::PayloadTooLong(payload.len()));
        }
        let mut data = [0u8; MAX_PAYLOAD];
        data[..payload.len()].copy_from_slice(payload);
        Ok(Frame {
            id,
            dlc: payload.len() as u8,
            data,
        })
    }

    /// Build a frame from an identifier and a payload slice.
    ///
    /// # Panics
    /// If the payload exceeds 8 bytes; use [`Frame::try_new`] for a
    /// fallible variant.
    pub fn new(id: CanId, payload: &[u8]) -> Self {
        match Self::try_new(id, payload) {
            Ok(f) => f,
            Err(e) => panic!("{e}"),
        }
    }

    /// An empty-payload frame (DLC 0) — used by signalling protocols.
    pub fn empty(id: CanId) -> Self {
        Frame::new(id, &[])
    }

    /// Data length code (number of payload bytes, 0..=8).
    #[inline]
    pub fn dlc(&self) -> u8 {
        self.dlc
    }

    /// The valid payload bytes.
    #[inline]
    pub fn payload(&self) -> &[u8] {
        &self.data[..self.dlc as usize]
    }

    /// Copy of this frame with the identifier's priority field replaced.
    #[inline]
    pub fn with_priority(&self, priority: u8) -> Frame {
        Frame {
            id: self.id.with_priority(priority),
            ..*self
        }
    }
}

impl fmt::Debug for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Frame({} dlc={} {:02x?})",
            self.id,
            self.dlc,
            self.payload()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_payload() {
        let id = CanId::new(1, 2, 3);
        let f = Frame::new(id, &[0xAA, 0xBB, 0xCC]);
        assert_eq!(f.dlc(), 3);
        assert_eq!(f.payload(), &[0xAA, 0xBB, 0xCC]);
        assert_eq!(f.id, id);
    }

    #[test]
    fn empty_frame() {
        let f = Frame::empty(CanId::new(0, 0, 0));
        assert_eq!(f.dlc(), 0);
        assert!(f.payload().is_empty());
    }

    #[test]
    fn full_payload() {
        let f = Frame::new(CanId::new(9, 9, 9), &[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(f.dlc(), 8);
        assert_eq!(f.payload(), &[1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    #[should_panic(expected = "8 bytes")]
    fn oversized_payload_panics() {
        let _ = Frame::new(CanId::new(0, 0, 0), &[0; 9]);
    }

    #[test]
    fn with_priority_changes_only_priority() {
        let f = Frame::new(CanId::new(200, 5, 6), &[1]);
        let g = f.with_priority(0);
        assert_eq!(g.id.priority(), 0);
        assert_eq!(g.id.etag(), 6);
        assert_eq!(g.payload(), f.payload());
    }

    #[test]
    fn equality_ignores_slack_bytes() {
        // Two frames with the same payload are equal even if built from
        // differently-sized source buffers.
        let a = Frame::new(CanId::new(1, 1, 1), &[7, 8]);
        let b = Frame::new(CanId::new(1, 1, 1), &[7, 8]);
        assert_eq!(a, b);
    }
}
