//! Property-based tests of the local clock model.

use proptest::prelude::*;
use rtec_clock::{ClockParams, LocalClock};
use rtec_sim::{Duration, Time};

fn arb_params() -> impl Strategy<Value = ClockParams> {
    (-500.0f64..500.0, -1e6f64..1e6).prop_map(|(drift_ppm, initial_offset_ns)| ClockParams {
        drift_ppm,
        initial_offset_ns,
    })
}

proptest! {
    /// Readings are monotone in true time (a clock never runs
    /// backwards, whatever its drift).
    #[test]
    fn readings_monotone(params in arb_params(), t1 in 0u64..u64::MAX / 4, dt in 0u64..1_000_000_000) {
        let c = LocalClock::new(params);
        let a = c.read(Time::from_ns(t1));
        let b = c.read(Time::from_ns(t1 + dt));
        prop_assert!(b >= a);
    }

    /// `true_time_when_reads` inverts `read` to within a nanosecond of
    /// rounding.
    #[test]
    fn schedule_inverts_read(
        params in arb_params(),
        target_ms in 1u64..1_000_000,
    ) {
        let c = LocalClock::new(params);
        let g = Time::from_ms(target_ms);
        let t = c.true_time_when_reads(g);
        let back = c.read(t);
        let err = back.as_ns() as i64 - g.as_ns() as i64;
        // Rounding of the two conversions can stack to ±1 ns plus one
        // part in 10^6 of the magnitude for the float math.
        let tol = 2 + (g.as_ns() / 1_000_000_000) as i64;
        prop_assert!(err.abs() <= tol, "err {err}ns at {g}");
    }

    /// `set` forces the reading to the requested global time and
    /// preserves the drift rate afterwards.
    #[test]
    fn set_aligns_and_keeps_rate(
        params in arb_params(),
        now_ms in 1u64..1_000_000,
        target_ms in 1u64..1_000_000,
        later_ms in 1u64..10_000,
    ) {
        let mut c = LocalClock::new(params);
        let now = Time::from_ms(now_ms);
        let target = Time::from_ms(target_ms);
        c.set(now, target);
        let err0 = c.read(now).as_ns() as i64 - target.as_ns() as i64;
        prop_assert!(err0.abs() <= 2, "alignment err {err0}ns");
        // After `later`, the deviation equals drift × elapsed.
        let later = now + Duration::from_ms(later_ms);
        let expect = target + Duration::from_ms(later_ms);
        let dev = c.read(later).as_ns() as f64 - expect.as_ns() as f64;
        let drift_expect = later_ms as f64 * 1e6 * params.drift_ppm * 1e-6;
        prop_assert!((dev - drift_expect).abs() < 3.0 + drift_expect.abs() * 1e-6,
            "dev {dev} vs {drift_expect}");
    }

    /// The error against true time grows linearly with drift.
    #[test]
    fn error_tracks_drift(drift in -500.0f64..500.0, secs in 1u64..1_000) {
        let c = LocalClock::new(ClockParams { drift_ppm: drift, initial_offset_ns: 0.0 });
        let t = Time::from_secs(secs);
        let expected = secs as f64 * 1e9 * drift * 1e-6;
        prop_assert!((c.error_ns(t) - expected).abs() < 1.0);
    }
}
