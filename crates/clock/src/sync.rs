//! Master-based clock synchronization over the simulated CAN bus.
//!
//! Follows the scheme of Gergeleit & Streich ("Implementing a
//! distributed high-resolution real-time clock using the CAN-bus",
//! iCC 1994), which the paper cites as its time base [9]:
//!
//! 1. The master broadcasts a **SYNC** frame. Because CAN is a
//!    broadcast medium with bit-synchronous delivery, *all* nodes
//!    observe the completion of this frame at (physically) the same
//!    instant — each latches its own local clock at that event.
//! 2. The master then broadcasts a **FOLLOW-UP** frame carrying its own
//!    latched timestamp of the SYNC completion (it cannot know this
//!    before transmitting the SYNC — queueing and arbitration delays are
//!    unpredictable).
//! 3. Each slave corrects its clock by the difference between the
//!    master timestamp and its own latch.
//!
//! Between synchronizations the clocks diverge again at their relative
//! drift rates, so the achieved precision is `Π ≈ 2·ρ·P + ε` for drift
//! bound ρ and resync period P. The experiment E9 measures Π for swept
//! (ρ, P) and [`required_gap`] turns it into the slot gap `ΔG_min` the
//! calendar must leave between HRT slots — the paper conservatively
//! assumes 40 µs (§3.2).

use crate::local::{ClockParams, LocalClock};
use rtec_can::{
    BusConfig, CanBus, CanEvent, CanId, FaultInjector, FilterMode, Frame, MapScheduler, NodeId,
    Notification, TxRequest,
};
use rtec_sim::{Ctx, Duration, Engine, Histogram, Model, Time};
use serde::{Deserialize, Serialize};

/// Reserved etag for SYNC frames.
pub const ETAG_SYNC: u16 = 0;
/// Reserved etag for FOLLOW-UP frames.
pub const ETAG_FOLLOW_UP: u16 = 1;

/// Configuration of a synchronization experiment.
#[derive(Clone, Debug)]
pub struct SyncConfig {
    /// Per-node oscillator parameters; index 0 is the master whose clock
    /// *defines* global time.
    pub clocks: Vec<ClockParams>,
    /// Resynchronization period (master clock time).
    pub sync_period: Duration,
    /// CAN priority of sync traffic (the paper reserves high SRT
    /// priorities for infrastructure traffic).
    pub priority: u8,
    /// How often the harness samples inter-node clock spread.
    pub sample_period: Duration,
    /// Bus configuration.
    pub bus: BusConfig,
}

impl SyncConfig {
    /// A typical setup: `n` nodes with drifts spread over ±`drift_ppm`,
    /// 50 ms resync, 1 Mbit/s.
    pub fn typical(n: usize, drift_ppm: f64, sync_period: Duration) -> Self {
        assert!(
            n >= 2,
            "synchronization needs a master and at least one slave"
        );
        let clocks = (0..n)
            .map(|i| {
                if i == 0 {
                    ClockParams::PERFECT // master defines global time
                } else {
                    // Deterministic spread of drifts across ±drift_ppm.
                    let frac = i as f64 / (n - 1).max(1) as f64;
                    ClockParams {
                        drift_ppm: drift_ppm * (2.0 * frac - 1.0),
                        initial_offset_ns: (i as f64) * 1_000.0,
                    }
                }
            })
            .collect();
        SyncConfig {
            clocks,
            sync_period,
            priority: 1,
            sample_period: Duration::from_ms(1),
            bus: BusConfig::default(),
        }
    }
}

/// Measured synchronization quality.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SyncStats {
    /// Distribution of the instantaneous inter-node spread
    /// `max_i read_i − min_i read_i` (ns), sampled every
    /// `sample_period` after the first completed synchronization round.
    pub spread_ns: Histogram,
    /// Number of completed synchronization rounds.
    pub rounds: u64,
}

impl SyncStats {
    /// The achieved precision Π: the worst observed spread.
    pub fn precision(&self) -> Duration {
        Duration::from_ns(self.spread_ns.max().unwrap_or(0))
    }
}

/// The minimal inter-slot gap `ΔG_min` for a measured precision Π:
/// the gap must absorb one node acting early by Π/2 and its successor
/// acting late by Π/2, plus one bit time of latch granularity.
pub fn required_gap(precision: Duration, bit_time: Duration) -> Duration {
    precision + bit_time
}

/// Events of the synchronization world.
#[derive(Clone, Copy, Debug)]
pub enum SyncEvent {
    /// Bus activity.
    Can(CanEvent),
    /// Master emits the next SYNC frame.
    MasterTick,
    /// Harness samples clock spread.
    Sample,
}

/// Simulation world: a bus whose nodes run the sync protocol.
pub struct SyncWorld {
    bus: CanBus,
    clocks: Vec<LocalClock>,
    config: SyncConfig,
    /// Master's latched global timestamp of the last SYNC completion.
    master_latch: Option<Time>,
    /// Each slave's local latch of the last SYNC completion.
    slave_latch: Vec<Option<Time>>,
    /// Next global instant for a master tick.
    next_tick_global: Time,
    synced_once: bool,
    /// Measured quality.
    pub stats: SyncStats,
}

impl SyncWorld {
    /// Build an engine running the synchronization world.
    pub fn engine(config: SyncConfig) -> Engine<SyncWorld> {
        let n = config.clocks.len();
        let mut bus = CanBus::new(config.bus, n, FaultInjector::none());
        for i in 0..n {
            bus.controller_mut(NodeId(i as u8))
                .set_filter_mode(FilterMode::AcceptAll);
        }
        let clocks: Vec<LocalClock> = config.clocks.iter().map(|p| LocalClock::new(*p)).collect();
        let world = SyncWorld {
            bus,
            clocks,
            slave_latch: vec![None; n],
            master_latch: None,
            next_tick_global: Time::ZERO,
            synced_once: false,
            stats: SyncStats::default(),
            config,
        };
        let mut engine = Engine::new(world);
        engine.schedule_at(Time::ZERO, SyncEvent::MasterTick);
        engine.schedule_at(Time::ZERO, SyncEvent::Sample);
        engine
    }

    /// Immutable view of a node's clock.
    pub fn clock(&self, node: NodeId) -> &LocalClock {
        &self.clocks[node.index()]
    }

    /// Current spread between the fastest and slowest node clock at
    /// true instant `true_now` (ns).
    pub fn spread_at(&self, true_now: Time) -> u64 {
        let readings: Vec<u64> = self
            .clocks
            .iter()
            .map(|c| c.read(true_now).as_ns())
            .collect();
        let min = *readings.iter().min().expect("at least one clock");
        let max = *readings.iter().max().expect("at least one clock");
        max - min
    }

    fn on_notification(&mut self, note: Notification, now: Time) {
        match note {
            Notification::TxCompleted { node, frame, .. }
                if node == NodeId(0) && frame.id.etag() == ETAG_SYNC =>
            {
                // Master latches its own (reference) clock at the
                // completion instant.
                self.master_latch = Some(self.clocks[0].read(now));
            }
            Notification::Rx {
                node,
                frame,
                completed_at,
            } => {
                match frame.id.etag() {
                    ETAG_SYNC => {
                        self.slave_latch[node.index()] =
                            Some(self.clocks[node.index()].read(completed_at));
                    }
                    ETAG_FOLLOW_UP => {
                        let mut bytes = [0u8; 8];
                        bytes.copy_from_slice(frame.payload());
                        let master_time = Time::from_ns(u64::from_le_bytes(bytes));
                        if let Some(latch) = self.slave_latch[node.index()].take() {
                            // Correct by the latched difference.
                            let delta = master_time.as_ns() as f64 - latch.as_ns() as f64;
                            self.clocks[node.index()].slew(delta);
                        }
                    }
                    _ => {}
                }
            }
            _ => {}
        }
    }
}

impl Model for SyncWorld {
    type Event = SyncEvent;

    fn handle(&mut self, ctx: &mut Ctx<SyncEvent>, ev: SyncEvent) {
        let now = ctx.now();
        match ev {
            SyncEvent::Can(can_ev) => {
                let notes = {
                    let mut sched = MapScheduler::new(ctx, SyncEvent::Can);
                    self.bus.handle(&mut sched, can_ev)
                };
                let mut follow_up = None;
                for note in notes {
                    // A completed SYNC triggers the FOLLOW-UP carrying
                    // the just-latched master timestamp.
                    if let Notification::TxCompleted { node, frame, .. } = &note {
                        if *node == NodeId(0) && frame.id.etag() == ETAG_SYNC {
                            self.on_notification(note.clone(), now);
                            let stamp = self.master_latch.expect("latched above");
                            follow_up = Some(stamp);
                            continue;
                        }
                    }
                    if let Notification::TxCompleted { node, frame, .. } = &note {
                        if *node == NodeId(0) && frame.id.etag() == ETAG_FOLLOW_UP {
                            self.stats.rounds += 1;
                            self.synced_once = true;
                        }
                    }
                    self.on_notification(note, now);
                }
                if let Some(stamp) = follow_up {
                    let frame = Frame::new(
                        CanId::new(self.config.priority, 0, ETAG_FOLLOW_UP),
                        &stamp.as_ns().to_le_bytes(),
                    );
                    let mut sched = MapScheduler::new(ctx, SyncEvent::Can);
                    self.bus.submit(
                        &mut sched,
                        NodeId(0),
                        TxRequest {
                            frame,
                            single_shot: false,
                            tag: 0,
                        },
                    );
                }
            }
            SyncEvent::MasterTick => {
                let frame = Frame::new(CanId::new(self.config.priority, 0, ETAG_SYNC), &[0u8; 8]);
                {
                    let mut sched = MapScheduler::new(ctx, SyncEvent::Can);
                    self.bus.submit(
                        &mut sched,
                        NodeId(0),
                        TxRequest {
                            frame,
                            single_shot: false,
                            tag: 0,
                        },
                    );
                }
                // Schedule the next tick by the master's clock.
                self.next_tick_global += self.config.sync_period;
                let true_next = self.clocks[0].true_time_when_reads(self.next_tick_global);
                let true_next = true_next.max(now + Duration::from_ns(1));
                ctx.at(true_next, SyncEvent::MasterTick);
            }
            SyncEvent::Sample => {
                if self.synced_once {
                    let spread = self.spread_at(now);
                    self.stats.spread_ns.record(spread);
                }
                ctx.after(self.config.sample_period, SyncEvent::Sample);
            }
        }
    }
}

/// Run a synchronization world for `horizon` and return the measured
/// statistics.
pub fn measure(config: SyncConfig, horizon: Duration) -> SyncStats {
    let mut engine = SyncWorld::engine(config);
    engine.run_until(Time::ZERO + horizon);
    engine.model.stats.clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slaves_converge_to_master() {
        let config = SyncConfig::typical(4, 100.0, Duration::from_ms(50));
        let mut engine = SyncWorld::engine(config);
        engine.run_until(Time::from_ms(500));
        let now = engine.now();
        let world = &engine.model;
        assert!(world.stats.rounds >= 9, "rounds {}", world.stats.rounds);
        // After many rounds every slave tracks the master within the
        // drift accumulated over one period (100 ppm * 50 ms = 5 µs)
        // plus protocol granularity.
        for i in 1..4 {
            let err = (world.clocks[i].read(now).as_ns() as i64
                - world.clocks[0].read(now).as_ns() as i64)
                .unsigned_abs();
            assert!(err < 12_000, "node {i} error {err}ns");
        }
    }

    #[test]
    fn unsynced_clocks_diverge() {
        // Sanity check of the experiment itself: with a very long sync
        // period the spread grows with drift.
        let config = SyncConfig::typical(3, 100.0, Duration::from_secs(10));
        let mut engine = SyncWorld::engine(config);
        engine.run_until(Time::from_secs(1));
        let spread = engine.model.spread_at(engine.now());
        // The fastest clock (+100 ppm) gains ~100 µs over the master in
        // the 1 s since the single initial synchronization.
        assert!(spread > 80_000, "spread {spread}ns");
    }

    #[test]
    fn precision_improves_with_faster_resync() {
        let slow = measure(
            SyncConfig::typical(4, 100.0, Duration::from_ms(200)),
            Duration::from_secs(2),
        );
        let fast = measure(
            SyncConfig::typical(4, 100.0, Duration::from_ms(10)),
            Duration::from_secs(2),
        );
        assert!(
            fast.precision() < slow.precision(),
            "fast {} !< slow {}",
            fast.precision(),
            slow.precision()
        );
    }

    #[test]
    fn paper_gap_assumption_is_reachable() {
        // With 100 ppm drifts and a 50 ms resync period the measured
        // precision must stay under the paper's 40 µs gap assumption.
        let stats = measure(
            SyncConfig::typical(8, 100.0, Duration::from_ms(50)),
            Duration::from_secs(2),
        );
        let gap = required_gap(stats.precision(), Duration::from_us(1));
        assert!(
            gap <= Duration::from_us(40),
            "required gap {gap} exceeds the paper's 40 µs assumption"
        );
    }

    #[test]
    fn rounds_counted() {
        let stats = measure(
            SyncConfig::typical(2, 50.0, Duration::from_ms(20)),
            Duration::from_ms(205),
        );
        assert!(stats.rounds >= 10, "rounds {}", stats.rounds);
        assert!(!stats.spread_ns.is_empty());
    }

    #[test]
    #[should_panic(expected = "master and at least one slave")]
    fn typical_requires_two_nodes() {
        let _ = SyncConfig::typical(1, 10.0, Duration::from_ms(10));
    }
}
