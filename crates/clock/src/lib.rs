//! # rtec-clock — drifting local clocks and CAN clock synchronization
//!
//! The HRT reservation scheme of the paper rests on a *global time base*
//! (§3.2): every node must agree, to within a known precision Π, on when
//! a time slot starts. The paper adopts the standard CAN clock
//! synchronization of Gergeleit & Streich [9] and assumes a conservative
//! inter-slot gap `ΔG_min = 40 µs` derived from the quality and
//! frequency of synchronization.
//!
//! This crate supplies the two pieces:
//!
//! * [`LocalClock`] — a node's oscillator with a constant drift rate
//!   (ppm) and an adjustable offset; reading it converts *true*
//!   (simulation) time into the node's estimate of global time, and the
//!   inverse lets a node schedule an action at a *global* instant using
//!   its imperfect local clock.
//! * [`sync`] — a master-based synchronization protocol over the
//!   simulated bus, following the Gergeleit/Streich two-frame scheme:
//!   the timestamp of a sync frame's *completion* (which all nodes
//!   observe simultaneously — the bus is a broadcast medium) is
//!   distributed in a follow-up frame, so slaves learn the master time
//!   of an event they latched locally. Achieved precision is measured,
//!   and [`sync::required_gap`] converts it into the `ΔG_min` slot gap.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod local;
pub mod sync;

pub use local::{ClockParams, LocalClock};
pub use sync::{required_gap, SyncConfig, SyncStats, SyncWorld};
