//! A node's local oscillator: constant drift plus an adjustable offset.
//!
//! The simulation engine runs on *true* time. A node never sees true
//! time — it sees its local clock, which advances at `1 + ρ` the true
//! rate (ρ = drift in parts per million, positive = fast) from some
//! offset. Clock synchronization periodically rewrites the offset so the
//! local reading tracks the master's global time.
//!
//! The two directions a node needs:
//!
//! * [`LocalClock::read`] — "what time do I think it is?" (true → local
//!   estimate of global time), used to timestamp observations.
//! * [`LocalClock::true_time_when_reads`] — "when will my clock show
//!   `g`?" (global target → true instant), used to schedule slot starts:
//!   a node with a fast clock acts *early* in true time, which is
//!   exactly the error the `ΔG_min` gap must absorb.

use rtec_sim::Time;
use serde::{Deserialize, Serialize};

/// Static oscillator parameters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClockParams {
    /// Drift in parts per million; positive clocks run fast. Typical
    /// crystal oscillators: ±50..±100 ppm.
    pub drift_ppm: f64,
    /// Offset of the local clock at true time zero, in nanoseconds
    /// (models power-up phase differences).
    pub initial_offset_ns: f64,
}

impl ClockParams {
    /// A perfect clock (no drift, no offset).
    pub const PERFECT: ClockParams = ClockParams {
        drift_ppm: 0.0,
        initial_offset_ns: 0.0,
    };
}

/// A drifting, adjustable local clock.
#[derive(Clone, Copy, Debug)]
pub struct LocalClock {
    /// Fractional rate error: local advances at `(1 + rate)` per true ns.
    rate: f64,
    /// Current offset in nanoseconds: `local = true·(1+rate) + offset`.
    offset_ns: f64,
    /// Number of offset adjustments applied (observability).
    adjustments: u64,
}

impl LocalClock {
    /// Build a clock from its parameters.
    pub fn new(params: ClockParams) -> Self {
        LocalClock {
            rate: params.drift_ppm * 1e-6,
            offset_ns: params.initial_offset_ns,
            adjustments: 0,
        }
    }

    /// A perfect clock that always reads true time.
    pub fn perfect() -> Self {
        LocalClock::new(ClockParams::PERFECT)
    }

    /// The clock's drift in ppm.
    pub fn drift_ppm(&self) -> f64 {
        self.rate * 1e6
    }

    /// Number of synchronization adjustments applied so far.
    pub fn adjustments(&self) -> u64 {
        self.adjustments
    }

    /// Local reading at true instant `true_now` (the node's estimate of
    /// global time). Readings are clamped at zero — a local clock never
    /// reads negative.
    pub fn read(&self, true_now: Time) -> Time {
        let local = true_now.as_ns() as f64 * (1.0 + self.rate) + self.offset_ns;
        Time::from_ns(local.max(0.0).round() as u64)
    }

    /// Signed error of this clock against true/global time at `true_now`
    /// in nanoseconds (positive = clock is ahead).
    pub fn error_ns(&self, true_now: Time) -> f64 {
        true_now.as_ns() as f64 * self.rate + self.offset_ns
    }

    /// Adjust the offset so that `read(true_now) == global`. This is the
    /// primitive the sync protocol uses (rate is not disciplined — the
    /// residual drift between syncs is what bounds precision).
    pub fn set(&mut self, true_now: Time, global: Time) {
        self.offset_ns = global.as_ns() as f64 - true_now.as_ns() as f64 * (1.0 + self.rate);
        self.adjustments += 1;
    }

    /// Slew the clock by a signed amount of nanoseconds (gentler
    /// correction used when the error is small).
    pub fn slew(&mut self, delta_ns: f64) {
        self.offset_ns += delta_ns;
        self.adjustments += 1;
    }

    /// The true instant at which this clock will read the global target
    /// `g`. Returns [`Time::ZERO`] if that instant is already past at
    /// true time zero (callers guard against scheduling in the past).
    pub fn true_time_when_reads(&self, g: Time) -> Time {
        let t = (g.as_ns() as f64 - self.offset_ns) / (1.0 + self.rate);
        Time::from_ns(t.max(0.0).round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtec_sim::Duration;

    #[test]
    fn perfect_clock_reads_true_time() {
        let c = LocalClock::perfect();
        for t in [0u64, 1_000, 1_000_000_000] {
            assert_eq!(c.read(Time::from_ns(t)), Time::from_ns(t));
        }
        assert_eq!(c.error_ns(Time::from_secs(100)), 0.0);
    }

    #[test]
    fn fast_clock_runs_ahead() {
        let c = LocalClock::new(ClockParams {
            drift_ppm: 100.0,
            initial_offset_ns: 0.0,
        });
        // After 1 s true time, a +100 ppm clock is 100 µs ahead.
        let reading = c.read(Time::from_secs(1));
        assert_eq!(reading, Time::from_ns(1_000_000_000 + 100_000));
        assert!((c.error_ns(Time::from_secs(1)) - 100_000.0).abs() < 1.0);
    }

    #[test]
    fn slow_clock_lags() {
        let c = LocalClock::new(ClockParams {
            drift_ppm: -50.0,
            initial_offset_ns: 0.0,
        });
        let reading = c.read(Time::from_secs(2));
        assert_eq!(reading, Time::from_ns(2_000_000_000 - 100_000));
    }

    #[test]
    fn initial_offset_applies() {
        let c = LocalClock::new(ClockParams {
            drift_ppm: 0.0,
            initial_offset_ns: 5_000.0,
        });
        assert_eq!(c.read(Time::ZERO), Time::from_ns(5_000));
    }

    #[test]
    fn negative_reading_clamps_to_zero() {
        let c = LocalClock::new(ClockParams {
            drift_ppm: 0.0,
            initial_offset_ns: -10_000.0,
        });
        assert_eq!(c.read(Time::ZERO), Time::ZERO);
        assert_eq!(c.read(Time::from_ns(4_000)), Time::ZERO);
        assert_eq!(c.read(Time::from_ns(12_000)), Time::from_ns(2_000));
    }

    #[test]
    fn set_aligns_reading() {
        let mut c = LocalClock::new(ClockParams {
            drift_ppm: 80.0,
            initial_offset_ns: 123_456.0,
        });
        let now = Time::from_ms(500);
        c.set(now, Time::from_ms(600));
        assert_eq!(c.read(now), Time::from_ms(600));
        assert_eq!(c.adjustments(), 1);
        // Drift resumes after the adjustment.
        let later = now + Duration::from_secs(1);
        let err = c.read(later).as_ns() as f64
            - (Time::from_ms(600) + Duration::from_secs(1)).as_ns() as f64;
        assert!((err - 80_000.0).abs() < 1.0, "err {err}");
    }

    #[test]
    fn slew_moves_reading() {
        let mut c = LocalClock::perfect();
        c.slew(250.0);
        assert_eq!(c.read(Time::from_us(1)), Time::from_ns(1_250));
        c.slew(-250.0);
        assert_eq!(c.read(Time::from_us(1)), Time::from_us(1));
    }

    #[test]
    fn true_time_when_reads_inverts_read() {
        let mut c = LocalClock::new(ClockParams {
            drift_ppm: -75.0,
            initial_offset_ns: 9_999.0,
        });
        c.set(Time::from_ms(10), Time::from_ms(11));
        for g_ms in [12u64, 100, 5_000] {
            let g = Time::from_ms(g_ms);
            let t = c.true_time_when_reads(g);
            let roundtrip = c.read(t);
            let err = roundtrip.as_ns() as i64 - g.as_ns() as i64;
            assert!(err.abs() <= 1, "g={g} roundtrip err {err}ns");
        }
    }

    #[test]
    fn fast_clock_schedules_early_in_true_time() {
        // The property ΔG_min must absorb: a fast node fires its slot
        // early by its accumulated error.
        let c = LocalClock::new(ClockParams {
            drift_ppm: 100.0,
            initial_offset_ns: 0.0,
        });
        let g = Time::from_secs(1);
        let t = c.true_time_when_reads(g);
        assert!(t < g, "fast clock acts early");
        let early_by = g.saturating_since(t);
        // ≈ 100 µs early after 1 s of drift.
        assert!(
            (early_by.as_ns() as f64 - 99_990.0).abs() < 100.0,
            "{early_by}"
        );
    }
}
