//! Property-based tests of the analytical models: the deadline →
//! priority mapping, the slot arithmetic and the calendar planner.

use proptest::prelude::*;
use rtec_analysis::admission::{CalendarPlan, SlotRequest};
use rtec_analysis::edf::{
    next_promotion_time, priority_for_deadline, time_horizon, PrioritySlotConfig,
};
use rtec_analysis::rta::{rta_feasible, MessageSpec};
use rtec_analysis::wctt::{slot_layout, wctt};
use rtec_can::bits::BitTiming;
use rtec_can::NodeId;
use rtec_sim::{Duration, Time};

fn arb_cfg() -> impl Strategy<Value = PrioritySlotConfig> {
    (1u64..5_000, 1u8..100, 150u8..=250).prop_map(|(slot_us, p_min, p_max)| PrioritySlotConfig {
        slot: Duration::from_us(slot_us),
        p_min,
        p_max,
    })
}

proptest! {
    /// The mapped priority always lies within the configured band.
    #[test]
    fn priority_in_band(
        cfg in arb_cfg(),
        now_us in 0u64..10_000_000,
        deadline_us in 0u64..10_000_000,
    ) {
        let p = priority_for_deadline(
            Time::from_us(deadline_us),
            Time::from_us(now_us),
            &cfg,
        );
        prop_assert!(p >= cfg.p_min && p <= cfg.p_max);
    }

    /// As time advances towards a fixed deadline, the priority value
    /// never increases (urgency never decreases) — the invariant behind
    /// dynamic promotion.
    #[test]
    fn priority_monotone_in_time(
        cfg in arb_cfg(),
        deadline_us in 1_000u64..5_000_000,
        t1 in 0u64..5_000_000,
        t2 in 0u64..5_000_000,
    ) {
        let (early, late) = (t1.min(t2), t1.max(t2));
        let d = Time::from_us(deadline_us);
        let p_early = priority_for_deadline(d, Time::from_us(early), &cfg);
        let p_late = priority_for_deadline(d, Time::from_us(late), &cfg);
        prop_assert!(p_late <= p_early);
    }

    /// For a fixed observation instant, an earlier deadline never maps
    /// to a (numerically) larger priority — EDF order is preserved up
    /// to quantization.
    #[test]
    fn priority_monotone_in_deadline(
        cfg in arb_cfg(),
        now_us in 0u64..1_000_000,
        d1 in 0u64..5_000_000,
        d2 in 0u64..5_000_000,
    ) {
        let (sooner, later) = (d1.min(d2), d1.max(d2));
        let now = Time::from_us(now_us);
        let p_soon = priority_for_deadline(Time::from_us(sooner), now, &cfg);
        let p_late = priority_for_deadline(Time::from_us(later), now, &cfg);
        prop_assert!(p_soon <= p_late);
    }

    /// The promotion timer walks forward and each step strictly lowers
    /// the priority value until the most urgent level is reached.
    #[test]
    fn promotion_walk_terminates_at_p_min(
        cfg in arb_cfg(),
        start_us in 0u64..100_000,
        horizon_slots in 1u64..300,
    ) {
        let now = Time::from_us(start_us);
        let deadline = now + cfg.slot * horizon_slots;
        let mut t = now;
        let mut p = priority_for_deadline(deadline, t, &cfg);
        let mut steps = 0u32;
        while let Some(next) = next_promotion_time(deadline, t, &cfg) {
            prop_assert!(next > t, "promotion time advances");
            prop_assert!(next <= deadline, "never past the deadline");
            let p_next = priority_for_deadline(deadline, next, &cfg);
            prop_assert!(p_next <= p, "priority never regresses");
            t = next;
            p = p_next;
            steps += 1;
            // One step per slot boundary (saturated deadlines cross
            // boundaries without changing priority, so the walk is
            // bounded by the horizon, not the level count).
            prop_assert!(
                steps <= horizon_slots as u32 + 1,
                "bounded by the slot count"
            );
        }
        prop_assert_eq!(p, cfg.p_min);
    }

    /// Deadlines beyond the horizon all map to the same (least urgent)
    /// priority.
    #[test]
    fn beyond_horizon_saturates(cfg in arb_cfg(), extra_us in 1u64..1_000_000) {
        let now = Time::ZERO;
        let beyond = now + time_horizon(&cfg) + Duration::from_us(extra_us);
        prop_assert_eq!(priority_for_deadline(beyond, now, &cfg), cfg.p_max);
    }

    /// WCTT is monotone in both payload size and omission degree.
    #[test]
    fn wctt_monotone(dlc in 0u8..8, k in 0u32..6) {
        let t = BitTiming::MBIT_1;
        prop_assert!(wctt(dlc + 1, k, t) > wctt(dlc, k, t));
        prop_assert!(wctt(dlc, k + 1, t) > wctt(dlc, k, t));
        let layout = slot_layout(dlc, k, t, Duration::from_us(40));
        prop_assert!(layout.total() > layout.wctt);
    }

    /// Whatever request set the planner admits, the resulting calendar
    /// is structurally valid and every slot lies inside its period
    /// window with the right owner.
    #[test]
    fn admitted_calendars_are_valid(
        n in 1usize..10,
        period_choices in prop::collection::vec(0usize..3, 1..10),
        k in 0u32..3,
    ) {
        let periods = [Duration::from_ms(5), Duration::from_ms(10), Duration::from_ms(20)];
        let round = Duration::from_ms(20);
        let requests: Vec<SlotRequest> = period_choices
            .iter()
            .take(n.max(1))
            .enumerate()
            .map(|(i, &c)| SlotRequest {
                etag: 16 + i as u16,
                publisher: NodeId((i % 8) as u8),
                dlc: 8,
                omission_degree: k,
                period: periods[c],
            })
            .collect();
        match CalendarPlan::plan(round, &requests, BitTiming::MBIT_1, Duration::from_us(40)) {
            Ok(plan) => {
                plan.validate().unwrap();
                for req in &requests {
                    let occurrences = round / req.period;
                    let slots: Vec<_> = plan
                        .slots
                        .iter()
                        .filter(|s| s.etag == req.etag && s.publisher == req.publisher)
                        .collect();
                    prop_assert_eq!(slots.len() as u64, occurrences);
                    for s in slots {
                        let w_start = req.period * u64::from(s.occurrence);
                        let w_end = req.period * (u64::from(s.occurrence) + 1);
                        prop_assert!(s.start >= w_start);
                        prop_assert!(s.end() <= w_end, "slot inside its period window");
                    }
                }
            }
            Err(_) => {
                // Rejection is always allowed; over-demand must reject.
                let demand: u64 = requests
                    .iter()
                    .map(|r| {
                        slot_layout(r.dlc, r.omission_degree, BitTiming::MBIT_1, Duration::from_us(40))
                            .total()
                            .as_ns()
                            * (round / r.period)
                    })
                    .sum();
                prop_assert!(demand > 0);
            }
        }
    }

    /// RTA: adding interference never shortens a message's response.
    #[test]
    fn rta_interference_monotone(
        base_period_us in 500u64..5_000,
        extra_period_us in 500u64..5_000,
    ) {
        let t = BitTiming::MBIT_1;
        let victim = MessageSpec {
            priority: 10,
            dlc: 8,
            period: Duration::from_us(base_period_us * 10),
            deadline: Duration::from_us(base_period_us * 10),
            jitter: Duration::ZERO,
        };
        let alone = rta_feasible(&[victim], t)[0].response;
        let interferer = MessageSpec {
            priority: 1,
            dlc: 8,
            period: Duration::from_us(extra_period_us * 4),
            deadline: Duration::from_us(extra_period_us * 4),
            jitter: Duration::ZERO,
        };
        let together = rta_feasible(&[victim, interferer], t)[0].response;
        match (alone, together) {
            (Some(a), Some(b)) => prop_assert!(b >= a),
            (Some(_), None) => {} // diverged: infinitely worse, fine
            (None, _) => prop_assert!(false, "single message always converges"),
        }
    }
}
