//! # rtec-analysis — schedulability and worst-case timing analysis
//!
//! The analytical companion of the event-channel middleware:
//!
//! * [`wctt`] — worst-case transmission times under omission-fault
//!   assumptions (Livani & Kaiser, WPDRTS '99 — reference [16] of the
//!   paper): how long an HRT slot must be to fit `k` retransmissions,
//!   and where the Latest Start Time and delivery deadline fall inside
//!   it (Fig. 3).
//! * [`rta`] — Tindell–Burns response-time analysis for fixed-priority
//!   CAN messages (reference [22]), used both by the deadline-monotonic
//!   baseline and to bound SRT interference.
//! * [`edf`] — the deadline→priority-slot mapping of §3.4 and its time
//!   horizon / collision trade-off.
//! * [`npedf`] — the processor-demand feasibility test for
//!   non-preemptive EDF (the analytic companion of the SRT channels).
//! * [`admission`] — the off-line admission test for HRT calendar
//!   reservations (§3.1) and utilization accounting.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod admission;
pub mod edf;
pub mod npedf;
pub mod rta;
pub mod wctt;

pub use admission::{AdmissionError, CalendarPlan, SlotRequest};
pub use edf::{priority_for_deadline, time_horizon, PrioritySlotConfig};
pub use npedf::{np_edf_breakdown, np_edf_feasible, NpEdfResult};
pub use rta::{rta_feasible, MessageSpec, RtaResult};
pub use wctt::{slot_layout, wctt, SlotLayout};
