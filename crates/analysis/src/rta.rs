//! Tindell–Burns response-time analysis for fixed-priority CAN traffic.
//!
//! "Guaranteeing message latencies on controller area network" [22] is
//! the classical schedulability test for CAN under static priorities.
//! For a periodic/sporadic message `m` with worst-case frame time `C_m`,
//! queueing jitter `J_m`, period `T_m` and unique priority, the
//! worst-case response time is
//!
//! ```text
//!   R_m = J_m + w_m + C_m
//!   w_m = B_m + Σ_{j ∈ hp(m)} ⌈(w_m + J_j + τ_bit) / T_j⌉ · C_j
//! ```
//!
//! where `B_m` is the longest lower-priority frame (non-preemption
//! blocking) and the fixed point is reached by iteration. The
//! deadline-monotonic baseline uses this test off-line; the experiments
//! compare its guarantees with the event channels' behaviour.

use rtec_can::bits::{worst_case_frame_bits, BitTiming};
use rtec_sim::Duration;
use serde::{Deserialize, Serialize};

/// Static description of one periodic/sporadic message stream.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MessageSpec {
    /// Unique CAN priority (lower = more urgent).
    pub priority: u32,
    /// Payload length in bytes (0..=8).
    pub dlc: u8,
    /// Period (periodic) or minimum inter-arrival time (sporadic).
    pub period: Duration,
    /// Relative deadline (≤ period for this analysis).
    pub deadline: Duration,
    /// Release jitter.
    pub jitter: Duration,
}

impl MessageSpec {
    /// Worst-case single-transmission wire time at the given bit rate.
    pub fn frame_time(&self, timing: BitTiming) -> Duration {
        timing.duration_of(worst_case_frame_bits(self.dlc))
    }

    /// Wire utilization of this stream.
    pub fn utilization(&self, timing: BitTiming) -> f64 {
        self.frame_time(timing).as_ns() as f64 / self.period.as_ns() as f64
    }
}

/// Result of the response-time analysis for one message.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RtaResult {
    /// Worst-case response time (queueing + transmission), or `None`
    /// when the iteration diverged past the deadline ceiling (the
    /// message is unschedulable).
    pub response: Option<Duration>,
    /// Whether `response ≤ deadline`.
    pub feasible: bool,
}

/// Run the analysis for every message in `set` (priorities must be
/// unique). Returns per-message results in the order given.
pub fn rta_feasible(set: &[MessageSpec], timing: BitTiming) -> Vec<RtaResult> {
    let tau_bit = timing.bit_time;
    set.iter()
        .map(|m| {
            let c_m = m.frame_time(timing);
            // Blocking: the longest frame of any lower-priority message.
            let b_m = set
                .iter()
                .filter(|j| j.priority > m.priority)
                .map(|j| j.frame_time(timing))
                .max()
                .unwrap_or(Duration::ZERO);
            let hp: Vec<&MessageSpec> = set.iter().filter(|j| j.priority < m.priority).collect();
            // Fixed-point iteration for the queueing delay w.
            let mut w = b_m;
            let limit = m.deadline * 4 + Duration::from_ms(100); // divergence guard
            let response = loop {
                let mut w_next = b_m;
                for j in &hp {
                    let interval = w + j.jitter + tau_bit;
                    let releases = interval.as_ns().div_ceil(j.period.as_ns());
                    w_next += j.frame_time(timing) * releases;
                }
                if w_next == w {
                    break Some(m.jitter + w + c_m);
                }
                if w_next > limit {
                    break None;
                }
                w = w_next;
            };
            let feasible = response.is_some_and(|r| r <= m.deadline);
            RtaResult { response, feasible }
        })
        .collect()
}

/// Assign deadline-monotonic priorities (shorter deadline = more
/// urgent) to a set of streams, returning the set with `priority`
/// fields rewritten to 0..n in deadline order (ties broken by input
/// order).
pub fn assign_deadline_monotonic(set: &[MessageSpec]) -> Vec<MessageSpec> {
    let mut order: Vec<usize> = (0..set.len()).collect();
    order.sort_by_key(|&i| (set[i].deadline, i));
    let mut out = set.to_vec();
    for (rank, &i) in order.iter().enumerate() {
        out[i].priority = rank as u32;
    }
    out
}

/// Total wire utilization of a message set.
pub fn total_utilization(set: &[MessageSpec], timing: BitTiming) -> f64 {
    set.iter().map(|m| m.utilization(timing)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: BitTiming = BitTiming::MBIT_1;

    fn msg(priority: u32, dlc: u8, period_us: u64, deadline_us: u64) -> MessageSpec {
        MessageSpec {
            priority,
            dlc,
            period: Duration::from_us(period_us),
            deadline: Duration::from_us(deadline_us),
            jitter: Duration::ZERO,
        }
    }

    #[test]
    fn single_message_response_is_blocking_free() {
        let set = [msg(0, 8, 10_000, 10_000)];
        let res = rta_feasible(&set, T);
        assert_eq!(res[0].response, Some(Duration::from_us(160)));
        assert!(res[0].feasible);
    }

    #[test]
    fn lower_priority_suffers_interference() {
        let set = [
            msg(0, 8, 1_000, 1_000),
            msg(1, 8, 1_000, 1_000),
            msg(2, 8, 10_000, 10_000),
        ];
        let res = rta_feasible(&set, T);
        let r0 = res[0].response.unwrap();
        let r2 = res[2].response.unwrap();
        assert!(r2 > r0, "lowest priority has the largest response");
        assert!(res.iter().all(|r| r.feasible));
        // Highest priority is blocked by at most one lower frame.
        assert_eq!(r0, Duration::from_us(160 + 160));
    }

    #[test]
    fn overload_is_detected_as_infeasible() {
        // Three 160 µs frames every 300 µs: utilization 1.6 — the two
        // lowest priorities cannot be schedulable.
        let set = [
            msg(0, 8, 300, 300),
            msg(1, 8, 300, 300),
            msg(2, 8, 300, 300),
        ];
        let res = rta_feasible(&set, T);
        assert!(total_utilization(&set, T) > 1.0);
        assert!(!res[2].feasible);
    }

    #[test]
    fn tight_deadline_fails_even_at_low_utilization() {
        let set = [
            msg(0, 8, 100_000, 100_000),
            // 100 µs deadline but one blocking frame alone is 160 µs.
            msg(1, 8, 100_000, 100),
        ];
        let res = rta_feasible(&set, T);
        assert!(res[0].feasible);
        assert!(!res[1].feasible);
    }

    #[test]
    fn jitter_extends_response() {
        let base = [msg(0, 8, 1_000, 1_000), msg(1, 8, 1_000, 1_000)];
        let mut jittered = base;
        jittered[1].jitter = Duration::from_us(50);
        let r_base = rta_feasible(&base, T)[1].response.unwrap();
        let r_jit = rta_feasible(&jittered, T)[1].response.unwrap();
        assert_eq!(r_jit, r_base + Duration::from_us(50));
    }

    #[test]
    fn deadline_monotonic_assignment_orders_by_deadline() {
        let set = [
            msg(99, 8, 10_000, 5_000),
            msg(99, 8, 10_000, 1_000),
            msg(99, 8, 10_000, 2_000),
        ];
        let dm = assign_deadline_monotonic(&set);
        assert_eq!(dm[0].priority, 2);
        assert_eq!(dm[1].priority, 0);
        assert_eq!(dm[2].priority, 1);
    }

    #[test]
    fn utilization_sums() {
        let set = [msg(0, 8, 1_600, 1_600), msg(1, 8, 1_600, 1_600)];
        let u = total_utilization(&set, T);
        assert!((u - 0.2).abs() < 1e-9, "u = {u}");
    }
}
