//! Non-preemptive EDF feasibility for CAN message sets.
//!
//! The SRT channels schedule the bus EDF, but frames are
//! non-preemptible — the classical processor-demand test (George,
//! Rivierre & Spuri, 1996; Jeffay et al., 1991) decides whether a
//! sporadic message set can meet all deadlines under non-preemptive
//! EDF:
//!
//! 1. total utilization `U ≤ 1`, and
//! 2. for every absolute-deadline point `L` up to the busy-period
//!    bound:
//!    `B(L) + Σ_j (⌊(L − D_j)/T_j⌋ + 1)⁺ · C_j ≤ L`,
//!    where `B(L)` is the longest frame whose deadline exceeds `L`
//!    (the blocking a just-started, less urgent frame can impose).
//!
//! The test is exact for sporadic sets with `D ≤ T` (up to the one-bit
//! arbitration granularity the quantized priorities add on a real
//! bus — the simulator's measured misses in E4/E5 sit right at this
//! boundary).

use crate::rta::MessageSpec;
use rtec_can::bits::BitTiming;
use rtec_sim::Duration;

/// Result of the demand-bound analysis.
#[derive(Clone, Debug, PartialEq)]
pub struct NpEdfResult {
    /// Whether the set is feasible under non-preemptive EDF.
    pub feasible: bool,
    /// Total utilization.
    pub utilization: f64,
    /// The first check point `L` (ns) where demand exceeded supply, if
    /// any.
    pub first_violation_ns: Option<u64>,
}

/// Processor demand of the set in any interval of length `l` ns.
fn demand_ns(set: &[MessageSpec], timing: BitTiming, l: u64) -> u64 {
    set.iter()
        .map(|m| {
            let d = m.deadline.as_ns();
            if l < d {
                0
            } else {
                let jobs = (l - d) / m.period.as_ns() + 1;
                jobs * m.frame_time(timing).as_ns()
            }
        })
        .sum()
}

/// Blocking at check point `l`: the longest frame whose deadline is
/// strictly beyond `l` (it may already occupy the bus).
fn blocking_ns(set: &[MessageSpec], timing: BitTiming, l: u64) -> u64 {
    set.iter()
        .filter(|m| m.deadline.as_ns() > l)
        .map(|m| m.frame_time(timing).as_ns())
        .max()
        .unwrap_or(0)
}

/// Run the non-preemptive EDF feasibility test.
pub fn np_edf_feasible(set: &[MessageSpec], timing: BitTiming) -> NpEdfResult {
    let utilization: f64 = set
        .iter()
        .map(|m| m.frame_time(timing).as_ns() as f64 / m.period.as_ns() as f64)
        .sum();
    if set.is_empty() {
        return NpEdfResult {
            feasible: true,
            utilization,
            first_violation_ns: None,
        };
    }
    if utilization > 1.0 {
        return NpEdfResult {
            feasible: false,
            utilization,
            first_violation_ns: Some(0),
        };
    }
    // Busy-period bound: L* = (B_max + Σ C_i) / (1 − U), capped by the
    // largest deadline plus one hyper-ish window to keep the test
    // tractable.
    let c_sum: u64 = set.iter().map(|m| m.frame_time(timing).as_ns()).sum();
    let b_max: u64 = set
        .iter()
        .map(|m| m.frame_time(timing).as_ns())
        .max()
        .unwrap_or(0);
    let l_star = if utilization < 1.0 {
        ((b_max + c_sum) as f64 / (1.0 - utilization)).ceil() as u64
    } else {
        u64::MAX
    };
    let d_max = set.iter().map(|m| m.deadline.as_ns()).max().unwrap_or(0);
    let t_max = set.iter().map(|m| m.period.as_ns()).max().unwrap_or(0);
    let horizon = l_star.min(d_max + 64 * t_max).max(d_max);

    // Check points: every absolute deadline D_j + k·T_j within the
    // horizon.
    let mut points: Vec<u64> = Vec::new();
    for m in set {
        let (d, t) = (m.deadline.as_ns(), m.period.as_ns());
        let mut l = d;
        while l <= horizon {
            points.push(l);
            l += t;
        }
    }
    points.sort_unstable();
    points.dedup();
    for l in points {
        let demand = demand_ns(set, timing, l) + blocking_ns(set, timing, l);
        if demand > l {
            return NpEdfResult {
                feasible: false,
                utilization,
                first_violation_ns: Some(l),
            };
        }
    }
    NpEdfResult {
        feasible: true,
        utilization,
        first_violation_ns: None,
    }
}

/// Largest load factor (binary search over period scaling) at which the
/// set stays NP-EDF feasible — the analytic breakdown point the E5
/// sweep approaches empirically.
pub fn np_edf_breakdown(set: &[MessageSpec], timing: BitTiming) -> f64 {
    let base_u: f64 = set
        .iter()
        .map(|m| m.frame_time(timing).as_ns() as f64 / m.period.as_ns() as f64)
        .sum();
    if base_u <= 0.0 {
        return 0.0;
    }
    let scale_set = |factor: f64| -> Vec<MessageSpec> {
        set.iter()
            .map(|m| MessageSpec {
                period: Duration::from_ns(
                    ((m.period.as_ns() as f64 / factor).round() as u64).max(1),
                ),
                ..*m
            })
            .collect()
    };
    let (mut lo, mut hi) = (0.01f64, 1.0 / base_u * 1.2);
    for _ in 0..40 {
        let mid = (lo + hi) / 2.0;
        if np_edf_feasible(&scale_set(mid), timing).feasible {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo * base_u
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtec_sim::Duration;

    const T: BitTiming = BitTiming::MBIT_1;

    fn msg(dlc: u8, period_us: u64, deadline_us: u64) -> MessageSpec {
        MessageSpec {
            priority: 0,
            dlc,
            period: Duration::from_us(period_us),
            deadline: Duration::from_us(deadline_us),
            jitter: Duration::ZERO,
        }
    }

    #[test]
    fn empty_and_single_sets() {
        assert!(np_edf_feasible(&[], T).feasible);
        let r = np_edf_feasible(&[msg(8, 1_000, 1_000)], T);
        assert!(r.feasible);
        assert!((r.utilization - 0.16).abs() < 1e-9);
    }

    #[test]
    fn overload_is_infeasible() {
        // Three 160 µs frames every 400 µs: U = 1.2.
        let set = [msg(8, 400, 400), msg(8, 400, 400), msg(8, 400, 400)];
        let r = np_edf_feasible(&set, T);
        assert!(!r.feasible);
        assert!(r.utilization > 1.0);
    }

    #[test]
    fn blocking_can_break_a_tight_deadline() {
        // A message with a deadline barely above its own frame time is
        // infeasible as soon as any longer-deadline frame can block it.
        let set = [
            msg(8, 10_000, 170), // 160 µs frame, 170 µs deadline
            msg(8, 10_000, 10_000),
        ];
        let r = np_edf_feasible(&set, T);
        assert!(!r.feasible, "{r:?}");
        // Alone it is feasible.
        assert!(np_edf_feasible(&set[..1], T).feasible);
    }

    #[test]
    fn feasible_mixed_set() {
        let set = [
            msg(8, 1_000, 1_000),
            msg(4, 2_000, 2_000),
            msg(2, 5_000, 5_000),
            msg(8, 10_000, 10_000),
        ];
        let r = np_edf_feasible(&set, T);
        assert!(r.feasible, "{r:?}");
        assert!(r.utilization < 0.35);
    }

    #[test]
    fn high_utilization_with_loose_deadlines_is_feasible() {
        // NP-EDF reaches very high utilization when deadlines are loose
        // relative to frame times — the paper's motivation for EDF over
        // static priorities.
        let set = [msg(8, 400, 400), msg(8, 800, 800), msg(8, 1_600, 1_600)];
        let r = np_edf_feasible(&set, T);
        assert!(r.utilization > 0.69, "u = {}", r.utilization);
        assert!(r.feasible, "{r:?}");
    }

    #[test]
    fn breakdown_point_is_near_one_for_loose_sets() {
        let set = [
            msg(8, 2_000, 2_000),
            msg(8, 4_000, 4_000),
            msg(8, 8_000, 8_000),
        ];
        let b = np_edf_breakdown(&set, T);
        assert!(b > 0.85 && b <= 1.01, "breakdown {b}");
    }

    #[test]
    fn breakdown_zero_when_blocking_defeats_a_deadline() {
        // 300 µs deadline cannot absorb one 160 µs frame of demand plus
        // 160 µs of blocking at ANY load — blocking does not scale with
        // the periods, so the breakdown search collapses to ~0.
        let set = [msg(8, 1_000, 300), msg(8, 1_000, 1_000)];
        assert!(!np_edf_feasible(&set, T).feasible);
        let b = np_edf_breakdown(&set, T);
        assert!(b < 0.1, "breakdown {b}");
        // Without the blocker the tight stream is fine on its own.
        assert!(np_edf_feasible(&set[..1], T).feasible);
    }
}
