//! Off-line admission test and calendar construction for HRT
//! reservations (§3.1).
//!
//! Hard real-time communication is organized in *rounds*; the data
//! structure storing a round's schedule is the *calendar* (the paper's
//! analogue of TTP's Round Descriptor List). Reservations are made
//! off-line: each HRT channel requests one slot per period for a
//! specific publisher node, and the admission test checks that all
//! occurrences can be placed without temporal overlap — including each
//! slot's `ΔT_wait` blocking allowance and `ΔG_min` gap — before any
//! reservation is confirmed.
//!
//! The planner places each occurrence at the earliest free instant
//! inside its period window (first-fit). That keeps the plan
//! deterministic and lets infeasibility surface as a typed error rather
//! than a runtime conflict.

use crate::wctt::{slot_layout, SlotLayout};
use rtec_can::bits::BitTiming;
use rtec_can::NodeId;
use rtec_sim::Duration;
use serde::{Deserialize, Serialize};

/// A request for periodic HRT slots for one (channel, publisher) pair.
///
/// If multiple publishers feed the same channel, each needs its own
/// request — "the slot reservation has to be done according to a
/// specific node" (§3.1).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SlotRequest {
    /// Event tag of the channel.
    pub etag: u16,
    /// The node allowed to publish in these slots.
    pub publisher: NodeId,
    /// Payload length the channel transports.
    pub dlc: u8,
    /// Assumed omission degree `k` (time redundancy budget).
    pub omission_degree: u32,
    /// Period between slot occurrences; must divide the round length.
    pub period: Duration,
}

/// One placed slot occurrence inside a round.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PlannedSlot {
    /// Event tag of the channel.
    pub etag: u16,
    /// Publishing node.
    pub publisher: NodeId,
    /// Offset of the slot's *ready* instant from the round start.
    pub start: Duration,
    /// Internal layout (ready / LST / deadline / gap offsets).
    pub layout: SlotLayout,
    /// Which occurrence within the round (0-based).
    pub occurrence: u32,
}

impl PlannedSlot {
    /// Offset of the Latest Start Time from the round start.
    pub fn lst(&self) -> Duration {
        self.start + self.layout.lst_offset()
    }
    /// Offset of the delivery deadline from the round start.
    pub fn deadline(&self) -> Duration {
        self.start + self.layout.deadline_offset()
    }
    /// Offset of the end of the slot (including gap) from round start.
    pub fn end(&self) -> Duration {
        self.start + self.layout.total()
    }
}

/// Why admission was refused.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmissionError {
    /// A request's period does not divide the round length.
    PeriodNotDividingRound {
        /// The offending etag.
        etag: u16,
        /// The offending period (ns).
        period_ns: u64,
        /// The round length (ns).
        round_ns: u64,
    },
    /// Aggregate demand exceeds the round even before placement.
    Overload {
        /// Total slot time demanded per round (ns).
        demanded_ns: u64,
        /// Round length (ns).
        round_ns: u64,
    },
    /// An occurrence could not be placed inside its period window.
    NoFit {
        /// The etag whose occurrence failed to fit.
        etag: u16,
        /// Occurrence index within the round.
        occurrence: u32,
    },
    /// A request was malformed (zero period, dlc > 8, ...).
    BadRequest {
        /// The offending etag.
        etag: u16,
        /// Human-readable reason.
        reason: String,
    },
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::PeriodNotDividingRound {
                etag,
                period_ns,
                round_ns,
            } => write!(
                f,
                "etag {etag}: period {period_ns}ns does not divide round {round_ns}ns"
            ),
            AdmissionError::Overload {
                demanded_ns,
                round_ns,
            } => write!(
                f,
                "reservation demand {demanded_ns}ns exceeds round {round_ns}ns"
            ),
            AdmissionError::NoFit { etag, occurrence } => write!(
                f,
                "etag {etag}: occurrence {occurrence} does not fit in its period window"
            ),
            AdmissionError::BadRequest { etag, reason } => {
                write!(f, "etag {etag}: {reason}")
            }
        }
    }
}

impl std::error::Error for AdmissionError {}

/// A confirmed calendar: the round schedule for all HRT channels.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CalendarPlan {
    /// Length of the round (schedule repeats with this cycle).
    pub round: Duration,
    /// All placed slots, sorted by `start`.
    pub slots: Vec<PlannedSlot>,
    /// Bit timing the layouts were computed with.
    pub timing: BitTiming,
    /// Inter-slot gap used (`ΔG_min`).
    pub gap: Duration,
}

impl CalendarPlan {
    /// Build a calendar for `requests` over a round of length `round`.
    pub fn plan(
        round: Duration,
        requests: &[SlotRequest],
        timing: BitTiming,
        gap: Duration,
    ) -> Result<CalendarPlan, AdmissionError> {
        // Validate requests.
        for r in requests {
            if r.period.is_zero() {
                return Err(AdmissionError::BadRequest {
                    etag: r.etag,
                    reason: "zero period".into(),
                });
            }
            if r.dlc > 8 {
                return Err(AdmissionError::BadRequest {
                    etag: r.etag,
                    reason: format!("dlc {} > 8", r.dlc),
                });
            }
            if !(round % r.period).is_zero() {
                return Err(AdmissionError::PeriodNotDividingRound {
                    etag: r.etag,
                    period_ns: r.period.as_ns(),
                    round_ns: round.as_ns(),
                });
            }
        }
        // Quick utilization bound.
        let demanded: u64 = requests
            .iter()
            .map(|r| {
                let occurrences = round / r.period;
                slot_layout(r.dlc, r.omission_degree, timing, gap)
                    .total()
                    .as_ns()
                    * occurrences
            })
            .sum();
        if demanded > round.as_ns() {
            return Err(AdmissionError::Overload {
                demanded_ns: demanded,
                round_ns: round.as_ns(),
            });
        }
        // First-fit placement, shortest period (most constrained) first.
        let mut order: Vec<usize> = (0..requests.len()).collect();
        order.sort_by_key(|&i| (requests[i].period, requests[i].etag));
        // Allocated intervals, sorted by start.
        let mut allocated: Vec<(u64, u64)> = Vec::new();
        let mut slots = Vec::new();
        for &i in &order {
            let r = &requests[i];
            let layout = slot_layout(r.dlc, r.omission_degree, timing, gap);
            let len = layout.total().as_ns();
            let occurrences = round / r.period;
            for occ in 0..occurrences {
                let window_start = r.period.as_ns() * occ;
                let window_end = r.period.as_ns() * (occ + 1);
                let placed = find_first_fit(&allocated, window_start, window_end, len).ok_or(
                    AdmissionError::NoFit {
                        etag: r.etag,
                        occurrence: occ as u32,
                    },
                )?;
                insert_interval(&mut allocated, (placed, placed + len));
                slots.push(PlannedSlot {
                    etag: r.etag,
                    publisher: r.publisher,
                    start: Duration::from_ns(placed),
                    layout,
                    occurrence: occ as u32,
                });
            }
        }
        slots.sort_by_key(|s| s.start);
        Ok(CalendarPlan {
            round,
            slots,
            timing,
            gap,
        })
    }

    /// Fraction of the round reserved for HRT slots (incl. ΔT_wait and
    /// gaps) — the *reserved* bandwidth, much of which the protocol
    /// reclaims at run time.
    pub fn reserved_utilization(&self) -> f64 {
        let reserved: u64 = self.slots.iter().map(|s| s.layout.total().as_ns()).sum();
        reserved as f64 / self.round.as_ns() as f64
    }

    /// Check the structural invariants: slots sorted, non-overlapping,
    /// all inside the round. Used by property tests.
    pub fn validate(&self) -> Result<(), String> {
        let mut prev_end = 0u64;
        for s in &self.slots {
            let start = s.start.as_ns();
            let end = s.end().as_ns();
            if start < prev_end {
                return Err(format!(
                    "slot etag={} occ={} starts at {} before previous end {}",
                    s.etag, s.occurrence, start, prev_end
                ));
            }
            if end > self.round.as_ns() {
                return Err(format!(
                    "slot etag={} occ={} ends at {} past round {}",
                    s.etag,
                    s.occurrence,
                    end,
                    self.round.as_ns()
                ));
            }
            prev_end = end;
        }
        Ok(())
    }
}

/// Earliest start `>= window_start` such that `[start, start+len)` fits
/// before `window_end` without intersecting `allocated` (sorted,
/// disjoint).
fn find_first_fit(
    allocated: &[(u64, u64)],
    window_start: u64,
    window_end: u64,
    len: u64,
) -> Option<u64> {
    let mut candidate = window_start;
    for &(a, b) in allocated {
        if b <= candidate {
            continue;
        }
        if a >= candidate + len {
            break; // gap before this interval fits
        }
        candidate = b; // push past this interval
    }
    if candidate + len <= window_end {
        Some(candidate)
    } else {
        None
    }
}

fn insert_interval(allocated: &mut Vec<(u64, u64)>, iv: (u64, u64)) {
    let pos = allocated.partition_point(|&(a, _)| a < iv.0);
    allocated.insert(pos, iv);
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: BitTiming = BitTiming::MBIT_1;
    const GAP: Duration = Duration::from_us(40);

    fn req(etag: u16, node: u8, period_ms: u64, k: u32) -> SlotRequest {
        SlotRequest {
            etag,
            publisher: NodeId(node),
            dlc: 8,
            omission_degree: k,
            period: Duration::from_ms(period_ms),
        }
    }

    #[test]
    fn single_channel_plans_one_slot_per_period() {
        let plan = CalendarPlan::plan(Duration::from_ms(10), &[req(1, 0, 5, 2)], T, GAP).unwrap();
        assert_eq!(plan.slots.len(), 2);
        assert_eq!(plan.slots[0].occurrence, 0);
        assert_eq!(plan.slots[1].occurrence, 1);
        assert_eq!(plan.slots[0].start, Duration::ZERO);
        assert_eq!(plan.slots[1].start, Duration::from_ms(5));
        plan.validate().unwrap();
    }

    #[test]
    fn multiple_channels_do_not_overlap() {
        let requests = [req(1, 0, 5, 1), req(2, 1, 5, 1), req(3, 2, 10, 0)];
        let plan = CalendarPlan::plan(Duration::from_ms(10), &requests, T, GAP).unwrap();
        assert_eq!(plan.slots.len(), 2 + 2 + 1);
        plan.validate().unwrap();
    }

    #[test]
    fn period_must_divide_round() {
        let err =
            CalendarPlan::plan(Duration::from_ms(10), &[req(1, 0, 3, 0)], T, GAP).unwrap_err();
        assert!(matches!(
            err,
            AdmissionError::PeriodNotDividingRound { etag: 1, .. }
        ));
    }

    #[test]
    fn overload_is_rejected() {
        // Each k=2 slot is ~720 µs; 20 channels at 1 ms period demand
        // 14.4 ms per 1 ms round.
        let requests: Vec<SlotRequest> =
            (0..20).map(|i| req(i as u16 + 1, i as u8, 1, 2)).collect();
        let err = CalendarPlan::plan(Duration::from_ms(1), &requests, T, GAP).unwrap_err();
        assert!(matches!(err, AdmissionError::Overload { .. }));
    }

    #[test]
    fn tight_but_feasible_set_is_admitted() {
        // One k=2 slot (~720 µs) per 1 ms period: utilization ~0.72.
        let plan = CalendarPlan::plan(Duration::from_ms(4), &[req(1, 0, 1, 2)], T, GAP).unwrap();
        assert_eq!(plan.slots.len(), 4);
        let u = plan.reserved_utilization();
        assert!(u > 0.7 && u < 0.75, "u = {u}");
        plan.validate().unwrap();
    }

    #[test]
    fn window_constraint_can_fail_even_without_overload() {
        // Two channels with 1 ms periods, each slot ~720 µs: per-window
        // demand 1.44 ms > 1 ms, though a longer-period mix would fit.
        let err = CalendarPlan::plan(
            Duration::from_ms(2),
            &[req(1, 0, 1, 2), req(2, 1, 1, 2)],
            T,
            GAP,
        )
        .unwrap_err();
        assert!(
            matches!(
                err,
                AdmissionError::Overload { .. } | AdmissionError::NoFit { .. }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn bad_requests_rejected() {
        let mut r = req(7, 0, 5, 0);
        r.period = Duration::ZERO;
        let err = CalendarPlan::plan(Duration::from_ms(10), &[r], T, GAP).unwrap_err();
        assert!(matches!(err, AdmissionError::BadRequest { etag: 7, .. }));

        let mut r2 = req(8, 0, 5, 0);
        r2.dlc = 9;
        let err2 = CalendarPlan::plan(Duration::from_ms(10), &[r2], T, GAP).unwrap_err();
        assert!(matches!(err2, AdmissionError::BadRequest { etag: 8, .. }));
    }

    #[test]
    fn same_channel_two_publishers_gets_two_slot_trains() {
        // §3.1: multiple publishers of one subject need one reservation
        // each.
        let requests = [req(5, 0, 10, 1), req(5, 1, 10, 1)];
        let plan = CalendarPlan::plan(Duration::from_ms(10), &requests, T, GAP).unwrap();
        assert_eq!(plan.slots.len(), 2);
        assert_ne!(plan.slots[0].publisher, plan.slots[1].publisher);
        plan.validate().unwrap();
    }

    #[test]
    fn slot_offsets_expose_fig3_structure() {
        let plan = CalendarPlan::plan(Duration::from_ms(10), &[req(1, 0, 10, 1)], T, GAP).unwrap();
        let s = &plan.slots[0];
        assert!(s.start < s.lst());
        assert!(s.lst() < s.deadline());
        assert!(s.deadline() < s.end());
        assert_eq!(s.lst() - s.start, Duration::from_us(154));
    }

    #[test]
    fn first_fit_helper() {
        // Gap between allocations is found.
        let allocated = vec![(0, 100), (300, 400)];
        assert_eq!(find_first_fit(&allocated, 0, 1_000, 150), Some(100));
        assert_eq!(find_first_fit(&allocated, 0, 1_000, 250), Some(400));
        assert_eq!(find_first_fit(&allocated, 0, 450, 250), None);
        assert_eq!(find_first_fit(&[], 50, 200, 150), Some(50));
    }

    #[test]
    fn error_display() {
        let e = AdmissionError::NoFit {
            etag: 3,
            occurrence: 1,
        };
        assert!(format!("{e}").contains("etag 3"));
    }
}
