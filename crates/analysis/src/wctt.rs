//! Worst-case transmission time under omission-fault assumptions and the
//! time-slot layout of Fig. 3.
//!
//! Following Livani & Kaiser [16], a hard real-time message with payload
//! `dlc` and assumed omission degree `k` (up to `k` of its transmissions
//! may be lost) needs wire time for `k + 1` transmissions, each costing
//! the worst-case frame time `C`, plus the error-signalling overhead `E`
//! for each failed attempt:
//!
//! ```text
//!   WCTT(k) = (k + 1)·C + k·E
//! ```
//!
//! The slot (Fig. 3) additionally absorbs the non-preemptible frame that
//! may occupy the bus when the slot begins:
//!
//! ```text
//!   ready          LST                         delivery deadline
//!     |— ΔT_wait —-|———————— WCTT(k) ——————————|— ΔG_min —| next slot
//! ```
//!
//! * at `ready = LST − ΔT_wait` the message must be queued;
//! * at `LST` the middleware raises it to priority 0, guaranteeing it
//!   wins the next arbitration;
//! * the transmission(s) complete somewhere inside `[LST, deadline]`
//!   depending on actual faults — the middleware delivers at `deadline`
//!   regardless, which is what removes the jitter;
//! * `ΔG_min` separates adjacent slots against clock-precision error.

use rtec_can::bits::{
    worst_case_frame_bits, BitTiming, ERROR_FRAME_BITS, PAPER_LONGEST_FRAME_BITS,
};
use rtec_sim::Duration;
use serde::{Deserialize, Serialize};

/// Worst-case wire time of a single transmission of a `dlc`-byte frame.
pub fn wcct_single(dlc: u8, timing: BitTiming) -> Duration {
    timing.duration_of(worst_case_frame_bits(dlc))
}

/// Worst-case transmission time of a message with omission degree `k`:
/// `(k+1)` transmissions plus `k` error-signalling overheads.
pub fn wctt(dlc: u8, k: u32, timing: BitTiming) -> Duration {
    let c = wcct_single(dlc, timing);
    let e = timing.duration_of(ERROR_FRAME_BITS);
    c * u64::from(k + 1) + e * u64::from(k)
}

/// The complete layout of one HRT time slot (Fig. 3), all offsets
/// relative to the slot's *ready* instant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotLayout {
    /// Blocking allowance for one non-preemptible lower-priority frame:
    /// the ready instant precedes the LST by this much.
    pub delta_t_wait: Duration,
    /// Wire time reserved for the message under the fault assumption.
    pub wctt: Duration,
    /// Gap towards the next slot covering clock imprecision.
    pub gap: Duration,
}

impl SlotLayout {
    /// Offset of the Latest Start Time from the ready instant.
    pub fn lst_offset(&self) -> Duration {
        self.delta_t_wait
    }

    /// Offset of the delivery deadline from the ready instant.
    pub fn deadline_offset(&self) -> Duration {
        self.delta_t_wait + self.wctt
    }

    /// Total slot length including the trailing gap — the bandwidth the
    /// calendar must reserve.
    pub fn total(&self) -> Duration {
        self.delta_t_wait + self.wctt + self.gap
    }
}

/// Compute the slot layout for a `dlc`-byte HRT message with omission
/// degree `k`, using the paper's `ΔT_wait` (154 bit times) and a given
/// inter-slot gap (`ΔG_min`, 40 µs in the paper).
pub fn slot_layout(dlc: u8, k: u32, timing: BitTiming, gap: Duration) -> SlotLayout {
    SlotLayout {
        delta_t_wait: timing.duration_of(PAPER_LONGEST_FRAME_BITS),
        wctt: wctt(dlc, k, timing),
        gap,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: BitTiming = BitTiming::MBIT_1;

    #[test]
    fn single_transmission_times() {
        // 8-byte worst case: 160 bits -> 160 µs at 1 Mbit/s.
        assert_eq!(wcct_single(8, T), Duration::from_us(160));
        assert_eq!(wcct_single(0, T), Duration::from_us(80));
    }

    #[test]
    fn wctt_grows_linearly_with_omission_degree() {
        let c = wcct_single(8, T);
        let e = T.duration_of(ERROR_FRAME_BITS);
        assert_eq!(wctt(8, 0, T), c);
        assert_eq!(wctt(8, 1, T), c * 2 + e);
        assert_eq!(wctt(8, 3, T), c * 4 + e * 3);
    }

    #[test]
    fn slot_layout_fig3_ordering() {
        let layout = slot_layout(8, 2, T, Duration::from_us(40));
        // ready < LST < deadline, and the slot covers all three parts.
        assert!(layout.lst_offset() > Duration::ZERO);
        assert!(layout.deadline_offset() > layout.lst_offset());
        assert_eq!(
            layout.total(),
            layout.deadline_offset() + Duration::from_us(40)
        );
        // ΔT_wait is the paper's 154 µs at 1 Mbit/s.
        assert_eq!(layout.delta_t_wait, Duration::from_us(154));
    }

    #[test]
    fn slot_grows_with_k() {
        let l0 = slot_layout(8, 0, T, Duration::from_us(40));
        let l2 = slot_layout(8, 2, T, Duration::from_us(40));
        assert!(l2.total() > l0.total());
        assert_eq!(
            l2.lst_offset(),
            l0.lst_offset(),
            "LST offset is k-independent"
        );
    }

    #[test]
    fn conservative_slot_numbers_match_paper_scale() {
        // With k = 2 and 8-byte payloads, one slot at 1 Mbit/s is
        // roughly 154 + 3*160 + 2*23 + 40 ≈ 720 µs — the "large share
        // of bandwidth" the paper argues is reclaimed when no faults
        // occur.
        let layout = slot_layout(8, 2, T, Duration::from_us(40));
        assert_eq!(layout.total(), Duration::from_us(154 + 480 + 46 + 40));
    }
}
