//! The deadline → priority-slot mapping of §3.4 and its trade-offs.
//!
//! CAN offers only static priorities per frame, so EDF is approximated
//! by quantizing the *remaining time to deadline* into priority slots of
//! length `Δt_p`: a message whose transmission deadline is `d` gets, at
//! time `t`, the priority
//!
//! ```text
//!   P(t) = P_min + ⌊(d − t) / Δt_p⌋        (clamped to [P_min, P_max])
//! ```
//!
//! As `t` advances, `P(t)` decreases (numerically) — the middleware
//! *promotes* the pending frame by rewriting its identifier, reaching
//! the most urgent SRT priority `P_min` at (or just before) the
//! deadline. Two effects trade off against each other (§3.4):
//!
//! * **ties** — deadlines closer together than `Δt_p` map to the same
//!   slot and their order is resolved arbitrarily by the remaining
//!   identifier bits (a bounded priority inversion);
//! * **horizon** — deadlines further away than
//!   `ΔH = (P_max − P_min + 1)·Δt_p` saturate at `P_max` and are not
//!   distinguished at all.
//!
//! With 250 SRT levels and `Δt_p` of about one frame time, the horizon
//! holds 250 outstanding transmissions — comfortably more than the
//! 32–64 nodes of a typical CAN segment, which is the paper's argument
//! that the trade-off is benign.

use rtec_can::{PRIO_SRT_MAX, PRIO_SRT_MIN};
use rtec_sim::{Duration, Time};
use serde::{Deserialize, Serialize};

/// Configuration of the deadline → priority mapping.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrioritySlotConfig {
    /// Length of one priority slot (`Δt_p`).
    pub slot: Duration,
    /// Most urgent SRT priority (numerically smallest).
    pub p_min: u8,
    /// Least urgent SRT priority (numerically largest).
    pub p_max: u8,
}

impl PrioritySlotConfig {
    /// The paper's running example: 250 levels (1..=250) and a slot of
    /// roughly one CAN frame time (154 µs ≈ 160 µs; we use 160 µs so a
    /// slot holds exactly one worst-case frame).
    pub fn paper_default() -> Self {
        PrioritySlotConfig {
            slot: Duration::from_us(160),
            p_min: PRIO_SRT_MIN,
            p_max: PRIO_SRT_MAX,
        }
    }

    /// Number of distinct priority levels.
    pub fn levels(&self) -> u32 {
        u32::from(self.p_max) - u32::from(self.p_min) + 1
    }
}

/// The scheduling horizon `ΔH`: deadlines further out than this are
/// indistinguishable (all map to `p_max`).
pub fn time_horizon(config: &PrioritySlotConfig) -> Duration {
    config.slot * u64::from(config.levels())
}

/// Map a transmission deadline to a CAN priority at time `now`
/// (equation of §3.4): priority level `p` is held while the remaining
/// time lies in `((p−p_min)·Δt_p, (p−p_min+1)·Δt_p]`, so the message
/// reaches the most urgent level `p_min` during its final slot and
/// holds it at (and past) the deadline.
pub fn priority_for_deadline(deadline: Time, now: Time, config: &PrioritySlotConfig) -> u8 {
    let remaining = deadline.saturating_since(now);
    if remaining.is_zero() {
        return config.p_min;
    }
    let slots = remaining.as_ns().div_ceil(config.slot.as_ns()); // >= 1
    let p = u64::from(config.p_min) + slots - 1;
    p.min(u64::from(config.p_max)) as u8
}

/// The true instant at which the priority of a message with deadline
/// `deadline` next decreases (crosses into the next-more-urgent slot),
/// or `None` if it is already at `p_min`. Drives the middleware's
/// promotion timers.
pub fn next_promotion_time(deadline: Time, now: Time, config: &PrioritySlotConfig) -> Option<Time> {
    let remaining = deadline.saturating_since(now);
    if remaining <= config.slot {
        return None; // already (or about to be) most urgent
    }
    // Priority changes when the remaining time reaches the next lower
    // multiple of the slot length.
    let k = remaining.as_ns().div_ceil(config.slot.as_ns()); // >= 2
    Some(deadline.saturating_sub(config.slot * (k - 1)))
}

/// Expected fraction of message pairs that collide into the same
/// priority slot when `n` deadlines are drawn uniformly over a window
/// `w` — the analytical companion of experiment E4's measured ties.
pub fn expected_tie_fraction(n: u64, window: Duration, config: &PrioritySlotConfig) -> f64 {
    if n < 2 || window.is_zero() {
        return 0.0;
    }
    // Probability two independent uniform deadlines fall in the same
    // slot of length s over window w is ~ s/w (for s << w).
    let s = config.slot.as_ns() as f64;
    let w = window.as_ns() as f64;
    (s / w).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(slot_us: u64) -> PrioritySlotConfig {
        PrioritySlotConfig {
            slot: Duration::from_us(slot_us),
            p_min: 1,
            p_max: 250,
        }
    }

    #[test]
    fn paper_horizon_is_250_slots() {
        let c = PrioritySlotConfig::paper_default();
        assert_eq!(c.levels(), 250);
        assert_eq!(time_horizon(&c), Duration::from_us(160 * 250));
        // = 40 ms: room for 250 message transfers, as §3.4 argues.
        assert_eq!(time_horizon(&c), Duration::from_ms(40));
    }

    #[test]
    fn closer_deadline_means_more_urgent_priority() {
        let c = cfg(100);
        let now = Time::from_ms(10);
        let p_near = priority_for_deadline(now + Duration::from_us(150), now, &c);
        let p_far = priority_for_deadline(now + Duration::from_us(950), now, &c);
        assert!(p_near < p_far, "{p_near} !< {p_far}");
        assert_eq!(p_near, 2);
        assert_eq!(p_far, 10);
    }

    #[test]
    fn priority_reaches_most_urgent_at_deadline() {
        let c = cfg(100);
        let d = Time::from_ms(5);
        assert_eq!(priority_for_deadline(d, d, &c), 1);
        // And stays clamped when the deadline is past.
        assert_eq!(priority_for_deadline(d, d + Duration::from_ms(1), &c), 1);
    }

    #[test]
    fn priority_saturates_beyond_horizon() {
        let c = cfg(100);
        let now = Time::ZERO;
        let far = now + time_horizon(&c) + Duration::from_secs(1);
        assert_eq!(priority_for_deadline(far, now, &c), 250);
    }

    #[test]
    fn priority_decreases_monotonically_over_time() {
        let c = cfg(100);
        let deadline = Time::from_ms(30);
        let mut last = u8::MAX;
        let mut t = Time::ZERO;
        while t < deadline {
            let p = priority_for_deadline(deadline, t, &c);
            assert!(p <= last, "priority must never regress");
            last = p;
            t += Duration::from_us(37); // awkward stride on purpose
        }
        assert_eq!(priority_for_deadline(deadline, deadline, &c), 1);
    }

    #[test]
    fn promotion_times_walk_slot_boundaries() {
        let c = cfg(100);
        let deadline = Time::from_us(1_000);
        let now = Time::from_us(250);
        // remaining = 750 -> slots = 7 -> boundary at deadline - 700 = 300.
        let next = next_promotion_time(deadline, now, &c).unwrap();
        assert_eq!(next, Time::from_us(300));
        // At the boundary itself, the next promotion is one slot later.
        let next2 = next_promotion_time(deadline, next, &c).unwrap();
        assert_eq!(next2, Time::from_us(400));
        // Promotions applied at each returned instant drive the priority
        // down one level at a time.
        let p_before = priority_for_deadline(deadline, now, &c);
        let p_after = priority_for_deadline(deadline, next, &c);
        assert_eq!(p_before, 8);
        assert_eq!(p_after, 7);
    }

    #[test]
    fn no_promotion_when_already_most_urgent() {
        let c = cfg(100);
        let deadline = Time::from_us(500);
        assert!(next_promotion_time(deadline, Time::from_us(450), &c).is_none());
        assert!(next_promotion_time(deadline, deadline, &c).is_none());
    }

    #[test]
    fn tie_fraction_shrinks_with_smaller_slots() {
        let wide = cfg(1_000);
        let narrow = cfg(10);
        let w = Duration::from_ms(10);
        assert!(expected_tie_fraction(50, w, &narrow) < expected_tie_fraction(50, w, &wide));
        assert_eq!(expected_tie_fraction(1, w, &wide), 0.0);
    }
}
